"""Seeded fault injectors over the simulated transports.

Two layers of the reproduction carry the platform's traffic and can
fail in the field:

* the reliable byte-stream :class:`~repro.bgp.transport.Channel` pairs
  that BGP sessions run over (standing in for TCP connections), and
* the :class:`~repro.netsim.link.Link` objects carrying Ethernet frames
  (IXP fabric, tunnels, backbone circuits).

:class:`ChannelFaultInjector` wraps both ends of a channel with seeded
message drop, byte corruption, and latency inflation; a ``drop`` rate
of 1.0 is a partition.  Drops remove an entire ``send()`` call — the
channel models a reliable stream, so partial loss would model TCP
payload corruption, which TCP's checksum converts into whole-segment
loss anyway.  Corruption flips a single byte, modelling the rarer
failure that *survives* checksums; the BGP decoder turns it into a
NOTIFICATION and a session reset (the paper's §7.3 failure mode).
Latency inflation preserves FIFO ordering via monotone release times.

:class:`LinkFaultInjector` raises the Bernoulli frame-loss rate of a
netsim link, exercising data-plane loss beneath an otherwise healthy
control plane.

Injectors are idempotent (``inject``/``heal`` pairs) and keep counters
so scenarios can report exactly what they did.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict

from repro.bgp.transport import Channel
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.link import Link

__all__ = [
    "ChannelFaultInjector",
    "IngressFloodInjector",
    "LinkFaultInjector",
    "QueueExhaustionInjector",
    "SlowConsumerInjector",
]


class ChannelFaultInjector:
    """Seeded faults on both ends of one BGP transport channel pair."""

    def __init__(
        self,
        scheduler: Scheduler,
        channel: Channel,
        seed: int = 0,
        drop: float = 0.0,
        corrupt: float = 0.0,
        extra_latency: float = 0.0,
        label: str = "",
    ) -> None:
        self.scheduler = scheduler
        ends = [channel]
        if channel.peer is not None:
            ends.append(channel.peer)
        self.ends: tuple[Channel, ...] = tuple(ends)
        self.drop = drop
        self.corrupt = corrupt
        self.extra_latency = extra_latency
        self.label = label
        self._rng = random.Random(f"chaos:{seed}:{label}")
        self.active = False
        self.dropped = 0
        self.corrupted = 0
        self.delayed = 0
        self.forwarded = 0
        self._saved: Dict[int, Callable[[bytes], None]] = {}
        self._release: Dict[int, float] = {}

    # ------------------------------------------------------------------

    def inject(self) -> None:
        """Start faulting: replace ``send`` on both channel ends."""
        if self.active:
            return
        self.active = True
        for end in self.ends:
            self._saved[id(end)] = end.send
            self._release[id(end)] = 0.0
            end.send = self._wrap(end)  # type: ignore[method-assign]

    def heal(self) -> None:
        """Stop faulting: restore the original ``send`` methods."""
        if not self.active:
            return
        self.active = False
        for end in self.ends:
            saved = self._saved.pop(id(end), None)
            if saved is not None:
                end.send = saved  # type: ignore[method-assign]
        self._release.clear()

    # ------------------------------------------------------------------

    def _wrap(self, end: Channel) -> Callable[[bytes], None]:
        def send(data: bytes) -> None:
            if end.closed or end.peer is None or not data:
                return
            if self.drop and self._rng.random() < self.drop:
                self.dropped += 1
                return
            if self.corrupt and self._rng.random() < self.corrupt:
                index = self._rng.randrange(len(data))
                data = (
                    data[:index]
                    + bytes([data[index] ^ 0xFF])
                    + data[index + 1:]
                )
                self.corrupted += 1
            end.tx_bytes += len(data)
            peer = end.peer
            delay = end.latency + self.extra_latency
            if self.extra_latency:
                self.delayed += 1
            # Monotone release times keep the stream in order even while
            # the latency knob moves.
            release = max(
                self.scheduler.now + delay, self._release.get(id(end), 0.0)
            )
            self._release[id(end)] = release
            self.forwarded += 1
            self.scheduler.call_at(release, lambda: peer._deliver(data))

        return send


class IngressFloodInjector:
    """Sustained announcement flood from one external speaker (§6i).

    ``inject()`` schedules one origination per flood prefix at
    ``rate`` announcements per second — each at a distinct simulated
    instant, so an MRAI-0 speaker emits one UPDATE per route and the
    PoP's bounded ingress queue sees genuinely sustained pressure.
    ``heal()`` cancels any not-yet-fired originations and withdraws
    every prefix actually announced; the withdrawals travel the
    never-shed class, so post-heal state converges to exactly the
    pre-flood baseline even while queues are saturated or the
    neighbor's circuit breaker is open.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        speaker,
        next_hop,
        prefixes,
        rate: float = 200.0,
        label: str = "",
    ) -> None:
        self.scheduler = scheduler
        self.speaker = speaker
        self.next_hop = next_hop
        self.prefixes = list(prefixes)
        self.rate = rate
        self.label = label
        self.active = False
        self.announced: list = []
        self.withdrawn = 0
        self._events: list = []

    def inject(self) -> None:
        if self.active:
            return
        self.active = True
        interval = 1.0 / self.rate
        for index, prefix in enumerate(self.prefixes):
            self._events.append(self.scheduler.call_later(
                interval * (index + 1),
                lambda p=prefix: self._originate(p),
            ))

    def _originate(self, prefix) -> None:
        from repro.bgp.attributes import local_route

        self.speaker.originate(local_route(prefix, next_hop=self.next_hop))
        self.announced.append(prefix)

    def heal(self) -> None:
        if not self.active:
            return
        self.active = False
        for event in self._events:
            event.cancel()
        self._events.clear()
        for prefix in self.announced:
            self.speaker.withdraw(prefix)
            self.withdrawn += 1
        self.announced.clear()


class SlowConsumerInjector:
    """Multiply one ingress queue's drain interval (a slow consumer)."""

    def __init__(self, queue, factor: float = 16.0) -> None:
        self.queue = queue
        self.factor = factor
        self.active = False

    def inject(self) -> None:
        if self.active:
            return
        self.active = True
        self.queue.slowdown(self.factor)

    def heal(self) -> None:
        if not self.active:
            return
        self.active = False
        self.queue.restore()


class QueueExhaustionInjector:
    """Shrink one ingress queue's announce-class capacity."""

    def __init__(self, queue, capacity: int = 8) -> None:
        self.queue = queue
        self.capacity = capacity
        self.active = False
        self.shed_on_shrink = 0

    def inject(self) -> None:
        if self.active:
            return
        self.active = True
        self.shed_on_shrink = self.queue.resize(self.capacity)

    def heal(self) -> None:
        if not self.active:
            return
        self.active = False
        self.queue.restore()


class LinkFaultInjector:
    """Raise the Bernoulli frame-loss rate of one netsim link."""

    def __init__(self, link: "Link", loss: float = 1.0) -> None:
        self.link = link
        self.loss = loss
        self.active = False
        self._saved: float = 0.0

    def inject(self) -> None:
        if self.active:
            return
        self.active = True
        self._saved = self.link.loss
        self.link.loss = self.loss

    def heal(self) -> None:
        if not self.active:
            return
        self.active = False
        self.link.loss = self._saved

    @property
    def frames_lost(self) -> int:
        return self.link.drops
