"""Seeded fault injectors over the simulated transports.

Two layers of the reproduction carry the platform's traffic and can
fail in the field:

* the reliable byte-stream :class:`~repro.bgp.transport.Channel` pairs
  that BGP sessions run over (standing in for TCP connections), and
* the :class:`~repro.netsim.link.Link` objects carrying Ethernet frames
  (IXP fabric, tunnels, backbone circuits).

:class:`ChannelFaultInjector` wraps both ends of a channel with seeded
message drop, byte corruption, and latency inflation; a ``drop`` rate
of 1.0 is a partition.  Drops remove an entire ``send()`` call — the
channel models a reliable stream, so partial loss would model TCP
payload corruption, which TCP's checksum converts into whole-segment
loss anyway.  Corruption flips a single byte, modelling the rarer
failure that *survives* checksums; the BGP decoder turns it into a
NOTIFICATION and a session reset (the paper's §7.3 failure mode).
Latency inflation preserves FIFO ordering via monotone release times.

:class:`LinkFaultInjector` raises the Bernoulli frame-loss rate of a
netsim link, exercising data-plane loss beneath an otherwise healthy
control plane.

Injectors are idempotent (``inject``/``heal`` pairs) and keep counters
so scenarios can report exactly what they did.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict

from repro.bgp.transport import Channel
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.link import Link

__all__ = ["ChannelFaultInjector", "LinkFaultInjector"]


class ChannelFaultInjector:
    """Seeded faults on both ends of one BGP transport channel pair."""

    def __init__(
        self,
        scheduler: Scheduler,
        channel: Channel,
        seed: int = 0,
        drop: float = 0.0,
        corrupt: float = 0.0,
        extra_latency: float = 0.0,
        label: str = "",
    ) -> None:
        self.scheduler = scheduler
        ends = [channel]
        if channel.peer is not None:
            ends.append(channel.peer)
        self.ends: tuple[Channel, ...] = tuple(ends)
        self.drop = drop
        self.corrupt = corrupt
        self.extra_latency = extra_latency
        self.label = label
        self._rng = random.Random(f"chaos:{seed}:{label}")
        self.active = False
        self.dropped = 0
        self.corrupted = 0
        self.delayed = 0
        self.forwarded = 0
        self._saved: Dict[int, Callable[[bytes], None]] = {}
        self._release: Dict[int, float] = {}

    # ------------------------------------------------------------------

    def inject(self) -> None:
        """Start faulting: replace ``send`` on both channel ends."""
        if self.active:
            return
        self.active = True
        for end in self.ends:
            self._saved[id(end)] = end.send
            self._release[id(end)] = 0.0
            end.send = self._wrap(end)  # type: ignore[method-assign]

    def heal(self) -> None:
        """Stop faulting: restore the original ``send`` methods."""
        if not self.active:
            return
        self.active = False
        for end in self.ends:
            saved = self._saved.pop(id(end), None)
            if saved is not None:
                end.send = saved  # type: ignore[method-assign]
        self._release.clear()

    # ------------------------------------------------------------------

    def _wrap(self, end: Channel) -> Callable[[bytes], None]:
        def send(data: bytes) -> None:
            if end.closed or end.peer is None or not data:
                return
            if self.drop and self._rng.random() < self.drop:
                self.dropped += 1
                return
            if self.corrupt and self._rng.random() < self.corrupt:
                index = self._rng.randrange(len(data))
                data = (
                    data[:index]
                    + bytes([data[index] ^ 0xFF])
                    + data[index + 1:]
                )
                self.corrupted += 1
            end.tx_bytes += len(data)
            peer = end.peer
            delay = end.latency + self.extra_latency
            if self.extra_latency:
                self.delayed += 1
            # Monotone release times keep the stream in order even while
            # the latency knob moves.
            release = max(
                self.scheduler.now + delay, self._release.get(id(end), 0.0)
            )
            self._release[id(end)] = release
            self.forwarded += 1
            self.scheduler.call_at(release, lambda: peer._deliver(data))

        return send


class LinkFaultInjector:
    """Raise the Bernoulli frame-loss rate of one netsim link."""

    def __init__(self, link: "Link", loss: float = 1.0) -> None:
        self.link = link
        self.loss = loss
        self.active = False
        self._saved: float = 0.0

    def inject(self) -> None:
        if self.active:
            return
        self.active = True
        self._saved = self.link.loss
        self.link.loss = self.loss

    def heal(self) -> None:
        if not self.active:
            return
        self.active = False
        self.link.loss = self._saved

    @property
    def frames_lost(self) -> int:
        return self.link.drops
