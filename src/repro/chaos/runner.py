"""The chaos harness: named fault scenarios against a running platform.

:func:`build_chaos_world` constructs a small but complete deployment —
two backbone PoPs, one resilient GR-negotiated transit neighbor per
PoP (supervised re-dial through :class:`~repro.bgp.supervisor.
SessionSupervisor`), and two experiments with live toolkit clients —
converged and ready to be broken.

:class:`ChaosRunner` then runs named scenarios against that world (or
any world shaped like it): inject a seeded fault, let it do damage,
heal it, and step the simulator until the platform re-converges to the
pre-fault routing state or a bound expires.  Each scenario returns a
:class:`ScenarioResult` carrying the convergence verdict plus the
standing resilience invariants:

``reconverged``
    every client's received-route set and every upstream speaker's
    Loc-RIB returned to the pre-fault snapshot within the bound;
``kernel_tables_consistent``
    every upstream neighbor's Adj-RIB-In matches its per-neighbor
    kernel routing table (the §5 table-per-neighbor design);
``no_cross_experiment_leakage``
    no client holds a route for a prefix allocated to a different
    experiment (§5 isolation);
``sessions_settled``
    every session is established, suppressed by flap damping, or given
    up — nothing is stuck mid-re-dial.

Determinism: all fault randomness is seeded, the simulator is a
deterministic event queue, and supervisor jitter derives from the
platform seed — the same ``(scenario, seed)`` pair always reproduces
the same run, which the CI soak job exploits to sweep seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import perf
from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.supervisor import SupervisorConfig
from repro.chaos.faults import ChannelFaultInjector
from repro.netsim.addr import IPv4Prefix
from repro.platform.experiment import ExperimentProposal
from repro.platform.peering import PeeringPlatform
from repro.platform.pop import NeighborPort, PopConfig
from repro.sim.scheduler import Scheduler
from repro.telemetry import TelemetryHub
from repro.telemetry.station import ResilienceEvent
from repro.toolkit.client import ExperimentClient

__all__ = [
    "ChaosRunner",
    "ChaosWorld",
    "NeighborHandle",
    "ScenarioResult",
    "build_chaos_world",
]


@dataclass
class NeighborHandle:
    """One synthetic upstream AS attached to a PoP, with its plug."""

    pop: str
    name: str
    speaker: BgpSpeaker
    port: NeighborPort
    dest: IPv4Prefix


@dataclass
class ChaosWorld:
    """A converged deployment the runner knows how to break."""

    scheduler: Scheduler
    platform: PeeringPlatform
    telemetry: Optional[TelemetryHub]
    neighbors: Dict[str, NeighborHandle]
    clients: Dict[str, ExperimentClient]
    seed: int = 0


@dataclass
class ScenarioResult:
    """Outcome of one chaos scenario run."""

    name: str
    seed: int
    converged: bool
    convergence_time: float
    invariants: Dict[str, bool] = field(default_factory=dict)
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.converged and all(self.invariants.values())

    def format(self) -> str:
        verdict = (
            f"CONVERGED in {self.convergence_time:.1f}s"
            if self.converged else "DID NOT CONVERGE"
        )
        lines = [f"scenario {self.name} seed={self.seed}: {verdict}"]
        lines.append("  invariants: " + " ".join(
            f"{key}={'ok' if value else 'VIOLATED'}"
            for key, value in sorted(self.invariants.items())
        ))
        if self.details:
            lines.append("  details: " + " ".join(
                f"{key}={value:g}" for key, value in sorted(self.details.items())
            ))
        return "\n".join(lines)


def build_chaos_world(
    seed: int = 0, with_telemetry: bool = True
) -> ChaosWorld:
    """Two backbone PoPs, two resilient transits, two experiments."""
    scheduler = Scheduler()
    telemetry = TelemetryHub(scheduler) if with_telemetry else None
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[
            PopConfig(name="west", pop_id=0, kind="ixp", backbone=True),
            PopConfig(name="east", pop_id=1, kind="university",
                      backbone=True),
        ],
        telemetry=telemetry,
    )
    supervisor_config = SupervisorConfig(
        min_backoff=0.5,
        max_backoff=8.0,
        jitter=0.25,
        idle_hold_floor=0.5,
        flap_threshold=4,
        flap_window=60.0,
        suppress_time=30.0,
        max_attempts=12,
        seed=seed,
    )
    neighbors: Dict[str, NeighborHandle] = {}
    for pop_name, nname, asn, dest in (
        ("west", "transit-west", 65010, IPv4Prefix.parse("10.10.0.0/16")),
        ("east", "transit-east", 65020, IPv4Prefix.parse("10.20.0.0/16")),
    ):
        pop = platform.pops[pop_name]
        port = pop.provision_neighbor(
            nname,
            asn,
            kind="transit",
            resilient=True,
            graceful_restart=True,
            restart_time=180,
            supervisor_config=supervisor_config,
        )
        speaker = BgpSpeaker(
            scheduler, SpeakerConfig(asn=asn, router_id=port.address)
        )
        speaker.attach_neighbor(
            NeighborConfig(
                name="to-pop",
                peer_asn=None,
                local_address=port.address,
                graceful_restart=True,
                restart_time=180,
            ),
            port.channel,
        )
        # When the PoP's supervisor re-dials, re-attach our side of the
        # session over the fresh transport.
        port.on_redial = (
            lambda channel, s=speaker: s.reattach_neighbor(
                "to-pop", channel
            )
        )
        speaker.originate(local_route(dest, next_hop=port.address))
        neighbors[nname] = NeighborHandle(
            pop=pop_name, name=nname, speaker=speaker, port=port, dest=dest
        )

    clients: Dict[str, ExperimentClient] = {}
    for name, pops, prefix_count in (
        ("alpha", ("west", "east"), 2),
        ("beta", ("west",), 1),
    ):
        platform.submit_proposal(ExperimentProposal(
            name=name,
            contact="chaos@example.edu",
            goals="resilience drill",
            execution_plan="inject faults, heal, verify re-convergence",
            prefix_count=prefix_count,
        ))
        client = ExperimentClient(scheduler, name, platform)
        for pop_name in pops:
            client.openvpn_up(pop_name)
            client.bird_start(pop_name)
        clients[name] = client
    scheduler.run_for(30)
    # Alpha announces its first prefix so the baseline includes an
    # experiment route at the upstream speakers.
    clients["alpha"].announce(clients["alpha"].profile.prefixes[0])
    scheduler.run_for(30)
    return ChaosWorld(
        scheduler=scheduler,
        platform=platform,
        telemetry=telemetry,
        neighbors=neighbors,
        clients=clients,
        seed=seed,
    )


class ChaosRunner:
    """Schedules, heals, and judges fault scenarios against a world."""

    SCENARIOS = (
        "drop",
        "corruption",
        "latency",
        "partition",
        "flap",
        "tunnel-bounce",
        "enforcer-overload",
        "shard-kill",
        "intent-revert-under-fault",
        "ingress-flood",
        "slow-consumer",
    )

    def __init__(
        self,
        world: ChaosWorld,
        seed: Optional[int] = None,
        step: float = 1.0,
        bound: float = 600.0,
    ) -> None:
        self.world = world
        self.seed = world.seed if seed is None else seed
        self.step = step
        self.bound = bound
        self.scheduler = world.scheduler
        self.platform = world.platform
        self.telemetry = world.telemetry
        self._baseline: Dict[str, tuple] = {}

    # -- public API --------------------------------------------------------

    def run(self, name: str) -> ScenarioResult:
        method = getattr(
            self, "_scenario_" + name.replace("-", "_"), None
        )
        if method is None:
            raise KeyError(
                f"unknown scenario {name!r}; choose from "
                f"{', '.join(self.SCENARIOS)}"
            )
        self._settle()
        self._baseline = self._snapshot()
        self._event("chaos", "fault-inject", name)
        result: ScenarioResult = method()
        self._event(
            "chaos", "scenario-done",
            f"{name}: {'ok' if result.ok else 'FAILED'}",
        )
        return result

    def run_all(self) -> List[ScenarioResult]:
        return [self.run(name) for name in self.SCENARIOS]

    # -- scenarios ---------------------------------------------------------

    def _scenario_drop(self) -> ScenarioResult:
        """30% message loss on a transit transport for two minutes."""
        return self._channel_scenario(
            "drop", self.world.neighbors["transit-west"],
            duration=120.0, drop=0.30,
        )

    def _scenario_corruption(self) -> ScenarioResult:
        """Byte corruption: decoder NOTIFICATIONs and session resets."""
        return self._channel_scenario(
            "corruption", self.world.neighbors["transit-west"],
            duration=45.0, corrupt=0.30,
        )

    def _scenario_latency(self) -> ScenarioResult:
        """A 70 s latency spike: the first delayed keepalive gap exceeds
        the 90 s hold time onset budget only transiently."""
        return self._channel_scenario(
            "latency", self.world.neighbors["transit-west"],
            duration=100.0, extra_latency=70.0,
        )

    def _scenario_partition(self) -> ScenarioResult:
        """Full partition outlasting the hold timer: GR retains routes,
        the supervisor keeps re-dialing into the partition, and the
        session heals once it lifts."""
        return self._channel_scenario(
            "partition", self.world.neighbors["transit-west"],
            duration=150.0, drop=1.0,
        )

    def _scenario_flap(self) -> ScenarioResult:
        """Six quick transport losses: flap damping must engage."""
        handle = self.world.neighbors["transit-west"]
        closes = 6
        for index in range(closes):
            self.scheduler.call_later(
                4.0 * index,
                lambda h=handle: self._close_port_channel(h),
            )
        self._event(handle.name, "fault-inject",
                    f"flap: {closes} transport losses 4s apart")
        self.scheduler.run_for(4.0 * closes + 1.0)
        self._event(handle.name, "fault-heal", "flap: storm over")
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        supervisor = self._supervisor(handle)
        invariants = self._invariants(converged)
        invariants["flap_damping_engaged"] = (
            supervisor is not None and supervisor.suppressions >= 1
        )
        details: Dict[str, float] = {"closes": float(closes)}
        if supervisor is not None:
            details["reconnects"] = float(supervisor.reconnects)
            details["suppressions"] = float(supervisor.suppressions)
        return self._result("flap", converged, elapsed, invariants,
                            details, heal_time)

    def _scenario_tunnel_bounce(self) -> ScenarioResult:
        """An experiment's VPN tunnel bounces; BIRD restarts over it."""
        client = self.world.clients["alpha"]
        pop_name = "west"
        view = client.pops[pop_name]
        tunnel = view.connection.tunnel
        announced = list(view.announced)
        tunnel.set_up(False)
        view.connection.channel.close()
        self._event(f"client:{client.name}:{pop_name}", "fault-inject",
                    "tunnel-bounce: tunnel down, transport lost")
        self.scheduler.run_for(10.0)
        tunnel.set_up(True)
        client.bird_stop(pop_name)
        client.bird_start(pop_name)
        self.scheduler.run_for(2.0)
        for prefix in announced:
            client.announce(prefix, pops=[pop_name])
        self._event(f"client:{client.name}:{pop_name}", "fault-heal",
                    "tunnel-bounce: tunnel up, BIRD restarted")
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        return self._result(
            "tunnel-bounce", converged, elapsed,
            self._invariants(converged),
            {"reannounced": float(len(announced))}, heal_time,
        )

    def _scenario_enforcer_overload(self) -> ScenarioResult:
        """Enforcement engine overload must fail closed, then recover."""
        pop = self.platform.pops["west"]
        client = self.world.clients["alpha"]
        spare = client.profile.prefixes[1]
        speaker = self.world.neighbors["transit-west"].speaker
        pop.control_enforcer.overloaded = True
        self._event("west", "fault-inject", "enforcer-overload")
        client.announce(spare, pops=["west"])
        self.scheduler.run_for(5.0)
        fail_closed = speaker.best_route(spare) is None
        pop.control_enforcer.overloaded = False
        client.announce(spare, pops=["west"])
        self.scheduler.run_for(5.0)
        recovered = speaker.best_route(spare) is not None
        client.withdraw(spare, pops=["west"])
        self._event("west", "fault-heal", "enforcer-overload: recovered")
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        # Post-heal hygiene: the violation log must be clearable and the
        # overload flag must be down, so back-to-back scenario runs on
        # one world start from clean counters.
        cleared = pop.control_enforcer.reset_violations()
        invariants = self._invariants(converged)
        invariants["fail_closed"] = fail_closed
        invariants["recovered_after_overload"] = recovered
        invariants["counters_reset"] = (
            not pop.control_enforcer.violations
            and not pop.control_enforcer.overloaded
        )
        return self._result("enforcer-overload", converged, elapsed,
                            invariants,
                            {"violations_cleared": float(cleared)},
                            heal_time)

    def _scenario_shard_kill(self) -> ScenarioResult:
        """Kill one fan-out shard worker mid-churn (§6f crash recovery).

        The west PoP's fan-out runs sharded (``shards=4``) for the
        scenario.  The worker owning transit-west is killed; a churn
        burst (announce then withdraw) arrives while it is down and
        backlogs on the dead worker's inbox — none of it touches RIBs,
        kernel tables, or experiment sessions.  Resurrecting the worker
        replays the backlog in ingress (``seq``) order through the
        merge layer, after which the platform must hold the exact
        pre-fault prefix state under the **full** five-invariant
        conformance catalog.
        """
        handle = self.world.neighbors["transit-west"]
        node = self.platform.pops[handle.pop].node
        burst = [
            IPv4Prefix.parse(f"10.10.{200 + index}.0/24")
            for index in range(24)
        ]
        saved = perf.FLAGS
        backlog = 0
        replayed = 0
        victim = -1
        try:
            perf.set_flags(shards=4)
            engine = node._shard_engine_if_enabled()
            assert engine is not None
            gid = node.upstreams[handle.name].virtual.global_id
            victim = engine.shard_for_neighbor(gid)
            engine.kill(victim)
            self._event(handle.name, "fault-inject",
                        f"shard-kill: fan-out worker {victim}/4 down")
            for prefix in burst:
                handle.speaker.originate(
                    local_route(prefix, next_hop=handle.port.address)
                )
            self.scheduler.run_for(5.0)
            for prefix in burst:
                handle.speaker.withdraw(prefix)
            self.scheduler.run_for(5.0)
            backlog = engine.pending
            replayed = engine.resurrect(victim)
            self.scheduler.run_for(1.0)
            self._event(
                handle.name, "fault-heal",
                f"shard-kill: worker {victim} resurrected, "
                f"{replayed} backlog items replayed",
            )
        finally:
            perf.FLAGS = saved
            perf.clear_caches()
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        invariants = self._full_invariants(converged)
        invariants["backlog_accumulated"] = backlog > 0
        invariants["backlog_replayed"] = replayed == backlog
        return self._result(
            "shard-kill", converged, elapsed, invariants,
            {
                "victim_shard": float(victim),
                "backlog": float(backlog),
                "replayed": float(replayed),
                "burst": float(len(burst)),
            },
            heal_time,
        )

    def _scenario_intent_revert_under_fault(self) -> ScenarioResult:
        """A link fault lands mid-apply; the intent layer must revert.

        A *clean* plan (alpha announces its spare prefix at west) is
        applied while the transit-west transport silently drops every
        message.  The staged announcement never reaches the upstream
        speaker, so re-verification catches both a live
        ``community_propagation`` violation and a predicted-vs-observed
        export mismatch — and the controller must auto-revert.  After
        the fault heals, the platform must hold the exact pre-plan
        prefix state under the **full** five-invariant catalog.
        """
        from repro.intent import ChangeSet, IntentController, announce_op

        handle = self.world.neighbors["transit-west"]
        client = self.world.clients["alpha"]
        spare = client.profile.prefixes[1]
        controller = IntentController(
            self.scheduler,
            self.platform,
            self.world.clients,
            neighbor_speakers={
                name: h.speaker
                for name, h in self.world.neighbors.items()
            },
            neighbor_pops={
                name: h.pop for name, h in self.world.neighbors.items()
            },
            telemetry=self.telemetry,
        )
        plan = controller.plan(ChangeSet(
            name="chaos-intent",
            ops=(announce_op("alpha", str(spare), pops=("west",)),),
        ))
        injector = ChannelFaultInjector(
            self.scheduler,
            handle.port.channel,
            seed=self.seed,
            drop=1.0,
            label=f"intent-revert:{handle.name}",
        )
        injector.inject()
        self._event(handle.name, "fault-inject",
                    "intent-revert-under-fault: full loss during apply")
        record = controller.apply(plan)
        injector.heal()
        self._event(handle.name, "fault-heal", "intent-revert-under-fault")
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        invariants = self._full_invariants(converged)
        invariants["plan_was_clean"] = plan.report.ok
        invariants["auto_reverted"] = record.phase == "reverted"
        invariants["revert_clean"] = bool(record.revert_clean)
        return self._result(
            "intent-revert-under-fault", converged, elapsed, invariants,
            {
                "breaches": float(len(record.breaches)),
                "dropped": float(injector.dropped),
            },
            heal_time,
        )

    def _scenario_ingress_flood(self) -> ScenarioResult:
        """A 5× sustained announcement flood against bounded ingress.

        The west PoP gets the §6i overload layer (lazily; the earlier
        scenarios in a ``run_all`` sweep see the pre-§6i unbounded
        path).  transit-west then floods 1200 unique announcements at
        five times the queue's drain capacity: the queue must shed
        announcements oldest-first within its fixed bound, the
        neighbor's circuit breaker must trip OPEN and turn the tail of
        the flood into cheap admission rejections, and the watchdog
        must flag the PoP.  Healing withdraws every flood prefix — the
        never-shed class — after which the platform must reconverge to
        the exact pre-fault snapshot under the **full** conformance
        catalog, including ``no_withdrawal_loss_under_shed``, with the
        breaker recovered to CLOSED through its half-open trials.
        """
        from repro.chaos.faults import IngressFloodInjector

        handle = self.world.neighbors["transit-west"]
        pop = self.platform.pops[handle.pop]
        governor = self._enable_overload(handle.pop)
        breaker = governor.breaker_for(handle.name)
        capacity = governor.policy.queue.depth
        drain_per_s = (
            governor.policy.queue.drain_batch
            / governor.policy.queue.drain_interval
        )
        rate = 5.0 * drain_per_s
        flood = [
            IPv4Prefix.parse(f"10.{77 + index // 250}.{index % 250}.0/24")
            for index in range(1200)
        ]
        injector = IngressFloodInjector(
            self.scheduler,
            handle.speaker,
            handle.port.address,
            flood,
            rate=rate,
            label=f"ingress-flood:{handle.name}",
        )
        injector.inject()
        self._event(
            handle.name, "fault-inject",
            f"ingress-flood: {len(flood)} announcements at {rate:g}/s "
            f"({5.0:g}x drain capacity)",
        )
        self.scheduler.run_for(len(flood) / rate + 2.0)
        flagged = (
            pop.watchdog.state if pop.watchdog is not None else "healthy"
        )
        trips = breaker.trips
        injector.heal()
        self._event(
            handle.name, "fault-heal",
            f"ingress-flood: {injector.withdrawn} withdrawals sent",
        )
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        totals = governor.totals()
        shed = (
            totals["shed_announcements"] + totals["rejected_announcements"]
        )
        invariants = self._full_invariants(converged)
        invariants["announcements_shed"] = shed > 0
        invariants["shed_only_announcements"] = (
            totals["shed_withdrawals"] == 0
            and totals["shed_control"] == 0
        )
        invariants["bounded_queue_memory"] = (
            totals["peak_announce_depth"] <= capacity
        )
        invariants["breaker_tripped"] = trips >= 1
        invariants["breaker_recovered"] = breaker.state == "closed"
        invariants["watchdog_flagged"] = flagged != "healthy"
        details = {
            "flood_routes": float(len(flood)),
            "offered_rate_per_s": rate,
            "announcements_shed": float(totals["shed_announcements"]),
            "announcements_rejected": float(
                totals["rejected_announcements"]
            ),
            "peak_announce_depth": float(totals["peak_announce_depth"]),
            "breaker_trips": float(trips),
            "window_sheds_cleared": float(
                governor.reset_window_counters()
            ),
        }
        return self._result("ingress-flood", converged, elapsed,
                            invariants, details, heal_time)

    def _scenario_slow_consumer(self) -> ScenarioResult:
        """A slowed drain plus a shrunken queue under moderate churn.

        The drain interval is inflated 16× and the announce-class bound
        shrunk to 12 while transit-west announces 60 prefixes at
        10/s — enough pressure to shed steadily but (unlike
        ``ingress-flood``) *below* the breaker's trip threshold.  The
        platform must shed only announcements, keep the breaker CLOSED
        throughout, and reconverge exactly once the injectors heal and
        the flood prefixes are withdrawn.
        """
        from repro.chaos.faults import (
            IngressFloodInjector,
            QueueExhaustionInjector,
            SlowConsumerInjector,
        )

        handle = self.world.neighbors["transit-west"]
        governor = self._enable_overload(handle.pop)
        queue = governor.queue_for(handle.name)
        breaker = governor.breaker_for(handle.name)
        trips_before = breaker.trips
        shed_before = governor.totals()["shed_announcements"]
        slow = SlowConsumerInjector(queue, factor=16.0)
        shrink = QueueExhaustionInjector(queue, capacity=12)
        churn = [
            IPv4Prefix.parse(f"10.88.{index}.0/24") for index in range(60)
        ]
        feeder = IngressFloodInjector(
            self.scheduler,
            handle.speaker,
            handle.port.address,
            churn,
            rate=10.0,
            label=f"slow-consumer:{handle.name}",
        )
        slow.inject()
        shrink.inject()
        feeder.inject()
        self._event(
            handle.name, "fault-inject",
            f"slow-consumer: drain x{slow.factor:g}, capacity "
            f"{shrink.capacity}, {len(churn)} announcements at 10/s",
        )
        self.scheduler.run_for(len(churn) / 10.0 + 2.0)
        feeder.heal()
        slow.heal()
        shrink.heal()
        self._event(
            handle.name, "fault-heal",
            f"slow-consumer: injectors healed, {feeder.withdrawn} "
            "withdrawals sent",
        )
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        totals = governor.totals()
        shed = totals["shed_announcements"] - shed_before
        invariants = self._full_invariants(converged)
        invariants["announcements_shed"] = shed > 0
        invariants["shed_only_announcements"] = (
            totals["shed_withdrawals"] == 0
            and totals["shed_control"] == 0
        )
        invariants["breaker_not_tripped"] = breaker.trips == trips_before
        details = {
            "churn_routes": float(len(churn)),
            "announcements_shed": float(shed),
            "shed_on_shrink": float(shrink.shed_on_shrink),
            "slow_factor": float(slow.factor),
            "shrunk_capacity": float(shrink.capacity),
            "window_sheds_cleared": float(
                governor.reset_window_counters()
            ),
        }
        return self._result("slow-consumer", converged, elapsed,
                            invariants, details, heal_time)

    # -- scenario machinery ------------------------------------------------

    def _enable_overload(self, pop_name: str):
        """The scenario-grade §6i overload layer, installed lazily.

        Deliberately small knobs (queue depth 48 draining 40 updates/s,
        breaker tripping at 64 failures in 5 s) so a modest synthetic
        flood exercises every state transition within a short sim run.
        Idempotent: once enabled, the governor persists for the rest of
        the world's life (later scenarios simply run with bounded
        ingress too — at these bounds, baseline churn never sheds).
        """
        pop = self.platform.pops[pop_name]
        if pop.overload is None:
            from repro.overload import (
                BreakerConfig,
                OverloadPolicy,
                QueuePolicy,
            )

            pop.enable_overload(OverloadPolicy(
                queue=QueuePolicy(
                    depth=48, drain_batch=8, drain_interval=0.2
                ),
                breaker=BreakerConfig(
                    failure_threshold=64,
                    failure_window=5.0,
                    open_time=20.0,
                    half_open_trials=2,
                ),
            ))
        return pop.overload

    def _channel_scenario(
        self,
        name: str,
        handle: NeighborHandle,
        duration: float,
        **fault: float,
    ) -> ScenarioResult:
        injectors: List[ChannelFaultInjector] = []

        def cover(channel) -> None:
            injector = ChannelFaultInjector(
                self.scheduler,
                channel,
                seed=self.seed,
                label=f"{name}:{handle.name}:{len(injectors)}",
                **fault,
            )
            injector.inject()
            injectors.append(injector)

        cover(handle.port.channel)
        # Re-dials during the fault window land inside the blast radius:
        # fresh transports inherit the same fault profile until heal.
        original_redial = handle.port.on_redial

        def on_redial(channel) -> None:
            cover(channel)
            if original_redial is not None:
                original_redial(channel)

        handle.port.on_redial = on_redial
        detail = ", ".join(f"{k}={v:g}" for k, v in sorted(fault.items()))
        self._event(handle.name, "fault-inject",
                    f"{name}: {detail} for {duration:g}s")
        self.scheduler.run_for(duration)
        handle.port.on_redial = original_redial
        for injector in injectors:
            injector.heal()
        self._event(handle.name, "fault-heal", name)
        heal_time = self.scheduler.now
        converged, elapsed = self._converge()
        details: Dict[str, float] = {
            "dropped": float(sum(i.dropped for i in injectors)),
            "corrupted": float(sum(i.corrupted for i in injectors)),
            "delayed": float(sum(i.delayed for i in injectors)),
            "transports_faulted": float(len(injectors)),
        }
        supervisor = self._supervisor(handle)
        if supervisor is not None:
            details["reconnects"] = float(supervisor.reconnects)
            details["suppressions"] = float(supervisor.suppressions)
        return self._result(name, converged, elapsed,
                            self._invariants(converged), details, heal_time)

    def _close_port_channel(self, handle: NeighborHandle) -> None:
        channel = handle.port.channel
        if not channel.closed:
            channel.close()

    def _supervisor(self, handle: NeighborHandle):
        neighbor = self.platform.pops[handle.pop].node.upstreams.get(
            handle.name
        )
        return neighbor.supervisor if neighbor is not None else None

    def _result(
        self,
        name: str,
        converged: bool,
        elapsed: float,
        invariants: Dict[str, bool],
        details: Dict[str, float],
        heal_time: float,
    ) -> ScenarioResult:
        details = dict(details)
        details["heal_time"] = heal_time
        return ScenarioResult(
            name=name,
            seed=self.seed,
            converged=converged,
            convergence_time=elapsed,
            invariants=invariants,
            details=details,
        )

    # -- convergence and invariants ---------------------------------------

    def _converge(self) -> tuple[bool, float]:
        """Step until the snapshot matches baseline or the bound expires."""
        start = self.scheduler.now
        while self.scheduler.now - start < self.bound:
            self.scheduler.run_for(self.step)
            if self._settled() and self._snapshot() == self._baseline:
                return True, self.scheduler.now - start
        return False, self.scheduler.now - start

    def _settle(self) -> None:
        """Best-effort settle before taking a baseline."""
        for _ in range(60):
            if self._settled():
                return
            self.scheduler.run_for(self.step)

    def _snapshot(self):
        """Routing state as multisets of paths per prefix.

        ADD-PATH ids are deliberately excluded: they are client-local
        handles that may be reallocated when a fault outlasts the GR
        retention window (flush + re-announce).  The convergence
        invariant is that every client sees the same *paths* — the
        zero-withdrawal property of in-window GR recovery is asserted
        separately by the graceful-restart tests via the telemetry
        station feed.
        """
        state: Dict[str, tuple] = {}
        for name, client in self.world.clients.items():
            for pop_name, view in client.pops.items():
                state[f"client:{name}:{pop_name}"] = tuple(sorted(
                    str(route.prefix) for route in view.routes.values()
                ))
        for name, handle in self.world.neighbors.items():
            state[f"neighbor:{name}"] = tuple(sorted(
                str(entry.route.prefix)
                for entry in handle.speaker.loc_rib.best_routes()
            ))
        return state

    def _settled(self) -> bool:
        for pop in self.platform.pops.values():
            governor = getattr(pop, "overload", None)
            if governor is not None and governor.pending():
                return False  # bounded ingress queues still draining
            if pop.node.shard_pending():
                return False  # fan-out work still queued on a shard
            for neighbor in pop.node.upstreams.values():
                supervisor = neighbor.supervisor
                if supervisor is not None and supervisor.pending:
                    return False
                if neighbor.stale_keys:
                    return False
                session = neighbor.session
                if session is None or not session.established:
                    if supervisor is not None and (
                        supervisor.suppressed or supervisor.gave_up
                    ):
                        continue
                    return False
        for client in self.world.clients.values():
            for view in client.pops.values():
                if view.session is None or not view.session.established:
                    return False
        return True

    def _invariants(self, converged: bool) -> Dict[str, bool]:
        """Post-scenario verdicts, via the shared conformance catalog.

        The structural invariants (RIB↔kernel consistency, identity
        bijectivity, cross-experiment isolation) come from
        :mod:`repro.conformance.invariants` — the same checkers the
        test-suite fixtures and ``peering verify`` run — so chaos
        results cannot drift from the platform's one definition of
        correct.  ``community_propagation`` and ``addpath_completeness``
        are deliberately not asserted here: mid-recovery both are
        transiently (and legitimately) violated while sessions re-sync.
        """
        from repro.conformance.invariants import (
            ConformanceContext,
            run_invariants,
        )

        context = ConformanceContext.from_platform(
            self.platform, clients=self.world.clients
        )
        reports = run_invariants(context, names=(
            "kernel_consistency",
            "no_cross_experiment_leakage",
            "vmac_bijectivity",
        ))
        return {
            "reconverged": converged,
            "kernel_tables_consistent": reports["kernel_consistency"].ok,
            "no_cross_experiment_leakage": reports[
                "no_cross_experiment_leakage"
            ].ok,
            "vmac_bijectivity": reports["vmac_bijectivity"].ok,
            "sessions_settled": self._settled(),
        }

    def _full_invariants(self, converged: bool) -> Dict[str, bool]:
        """All five catalog invariants (the shard-kill bar: nothing may
        be transiently excused — recovery must be *complete*)."""
        from repro.conformance.invariants import (
            ConformanceContext,
            run_invariants,
        )

        context = ConformanceContext.from_platform(
            self.platform,
            clients=self.world.clients,
            neighbor_speakers={
                name: handle.speaker
                for name, handle in self.world.neighbors.items()
            },
            neighbor_pops={
                name: handle.pop
                for name, handle in self.world.neighbors.items()
            },
        )
        reports = run_invariants(context)
        verdicts = {name: report.ok for name, report in reports.items()}
        verdicts["reconverged"] = converged
        verdicts["sessions_settled"] = self._settled()
        return verdicts

    # -- telemetry ---------------------------------------------------------

    def _event(self, peer: str, event: str, detail: str) -> None:
        if self.telemetry is not None:
            self.telemetry.station.publish(ResilienceEvent(
                peer=peer,
                time=self.scheduler.now,
                event=event,
                detail=detail,
            ))
