"""Seeded chaos engineering for the PEERING reproduction (§4.7, §7.3).

The paper's operational sections catalogue the failures a production
edge platform must absorb: lossy or partitioned transports to upstream
neighbors, corrupted BGP streams, flapping sessions, VPN tunnels that
bounce, and enforcement engines that overload (and must fail *closed* —
"a platform outage is better than letting an experiment harm the
Internet").  This package reproduces those failures deterministically
against the simulated platform:

* :mod:`repro.chaos.faults` — seeded fault injectors over the BGP
  transport channels and netsim links (message drop, byte corruption,
  partition, latency spikes).
* :mod:`repro.chaos.runner` — :class:`ChaosRunner` schedules named
  fault scenarios against a running :class:`~repro.platform.peering.
  PeeringPlatform`, heals them, and asserts the resilience invariants:
  re-convergence within a bound, per-neighbor kernel table consistency,
  no cross-experiment leakage, and fail-closed enforcement.

All randomness is drawn from ``random.Random`` instances seeded from an
explicit scenario seed, so every run is reproducible and the CI soak
job can sweep seeds.  Every injection and heal is published to the PR 2
telemetry hub as a :class:`~repro.telemetry.station.ResilienceEvent`.
"""

from repro.chaos.faults import ChannelFaultInjector, LinkFaultInjector
from repro.chaos.runner import (
    ChaosRunner,
    ChaosWorld,
    NeighborHandle,
    ScenarioResult,
    build_chaos_world,
)

__all__ = [
    "ChannelFaultInjector",
    "ChaosRunner",
    "ChaosWorld",
    "LinkFaultInjector",
    "NeighborHandle",
    "ScenarioResult",
    "build_chaos_world",
]
