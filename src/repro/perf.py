"""Central fast-path feature flags (the ablation control surface).

The vBGP pipeline has four independent optimizations, each gated behind a
module-level toggle so ``benchmarks/bench_ablation_fastpath.py`` can
measure them on/off without code changes:

* ``stride_lpm``   — multi-bit (8-bit stride) trie walk in
  :class:`repro.netsim.lpm.LpmTable` instead of the 1-bit-per-level
  binary trie reference,
* ``lpm_cache``    — bounded per-table LRU lookup cache keyed by
  destination address, invalidated on insert/remove of any covering
  prefix (negative results are cached too),
* ``encode_memo``  — memoized ``_encode_attributes`` on the frozen
  ``PathAttributes`` value plus per-``UpdateMessage`` wire caching, so
  ADD-PATH fan-out to E experiments encodes each attribute set once,
* ``intern_attrs`` — interning pool for decoded ``PathAttributes`` /
  ``AsPath`` so RIBs holding equal attributes share one object
  (Fig. 6a memory),
* ``fanout_batch`` — coalesce routes sharing identical post-rewrite
  attributes into single multi-NLRI UPDATEs in the vBGP fan-out and
  backbone export paths.

The full-table RIB engine (DESIGN.md §6g) adds three more toggles that
make a ~900k-prefix Loc-RIB tractable:

* ``rib_columnar``         — flyweight/columnar Loc-RIB storage: interned
  attribute handles + packed per-prefix candidate tuples instead of a
  dict-of-dicts holding one ``RibEntry``/``Route`` object pair per
  candidate (chosen at Loc-RIB construction time, like ``stride_lpm``),
* ``incremental_bestpath`` — on single-candidate upserts/withdrawals the
  Loc-RIB compares against the incumbent best instead of re-running the
  decision fold over every candidate,
* ``encode_zero_copy``     — UPDATE encoding writes NLRI runs into one
  reusable ``bytearray`` instead of joining per-prefix ``bytes`` objects.

Scale-out knobs (see :mod:`repro.shard` and DESIGN.md §6f) ride the
same flag surface so the differential harness can sweep them exactly
like the fast-path toggles:

* ``shards``          — number of fan-out worker shards
  (1 = the unsharded reference pipeline),
* ``shard_partition`` — partition strategy, ``"neighbor"`` (default;
  byte-identical output for any shard count) or ``"prefix"``
  (may split one UPDATE across shards, like ``fanout_batch`` changes
  packing),
* ``shard_seed``      — seed mixed into the deterministic partition
  hash (``repro.shard.partition.stable_mix64``),
* ``shard_backend``   — how shard workers execute (DESIGN.md §6j):
  ``"model"`` (serial execution with wall-clock *attributed* to
  shards — the PR 5 reference), ``"async"`` (one asyncio task per
  shard worker on a private event loop), or ``"mp"`` (a
  ``multiprocessing`` worker pool; one OS process per shard encodes
  its UPDATE batches in real parallel).  Every backend is proven
  byte-identical to the sync reference by the differential harness.

Flags are read at call time (and, for the LPM backend choice, at table
construction time).  Toggling flags clears all registered caches so
on/off comparisons are honest.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterator

__all__ = ["FLAGS", "PerfFlags", "set_flags", "flags", "clear_caches",
           "register_cache_clearer"]


@dataclass(frozen=True)
class PerfFlags:
    """The fast-path toggles (all on by default)."""

    stride_lpm: bool = True
    lpm_cache: bool = True
    lpm_cache_size: int = 1024
    encode_memo: bool = True
    intern_attrs: bool = True
    fanout_batch: bool = True
    # Full-table RIB engine (DESIGN.md §6g).
    rib_columnar: bool = True
    incremental_bestpath: bool = True
    encode_zero_copy: bool = True
    # Scale-out knobs (repro.shard; DESIGN.md §6f/§6j).
    shards: int = 1
    shard_partition: str = "neighbor"
    shard_seed: int = 0
    shard_backend: str = "model"


FLAGS = PerfFlags()

_cache_clearers: list[Callable[[], None]] = []


def register_cache_clearer(clearer: Callable[[], None]) -> None:
    """Modules owning a flag-gated cache register a clearer here."""
    _cache_clearers.append(clearer)


def clear_caches() -> None:
    """Drop every registered flag-gated cache (used when flags change)."""
    for clearer in _cache_clearers:
        clearer()


def set_flags(**changes: object) -> PerfFlags:
    """Update the global flags; returns the new flag set.

    Unknown flag names raise ``TypeError`` (via ``dataclasses.replace``).
    All registered caches are cleared so stale entries from the previous
    configuration cannot leak across an ablation boundary.
    """
    global FLAGS
    FLAGS = replace(FLAGS, **changes)
    clear_caches()
    return FLAGS


@contextmanager
def flags(**changes: object) -> Iterator[PerfFlags]:
    """Temporarily override flags (tests and ablation benchmarks)."""
    global FLAGS
    saved = FLAGS
    try:
        yield set_flags(**changes)
    finally:
        FLAGS = saved
        clear_caches()
