"""Synthetic PeeringDB: network records and peer classification (§4.2).

The paper characterizes PEERING's 923 peers via PeeringDB: 33% transit
providers, 28% cable/DSL/ISP, 23% content, 8% unclassifiable, and the
remainder education/research, enterprise, non-profit, and route servers.
The generator reproduces that mix deterministically so the footprint
benchmark can regenerate the §4.2 breakdown.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable


class NetworkType(enum.Enum):
    TRANSIT = "Network Service Provider (transit)"
    CABLE_DSL_ISP = "Cable/DSL/ISP"
    CONTENT = "Content"
    EDUCATION_RESEARCH = "Educational/Research"
    ENTERPRISE = "Enterprise"
    NON_PROFIT = "Non-Profit"
    ROUTE_SERVER = "Route Server"
    UNCLASSIFIED = "Not Disclosed"


# Target distribution from §4.2.
TYPE_DISTRIBUTION = (
    (NetworkType.TRANSIT, 0.33),
    (NetworkType.CABLE_DSL_ISP, 0.28),
    (NetworkType.CONTENT, 0.23),
    (NetworkType.UNCLASSIFIED, 0.08),
    (NetworkType.EDUCATION_RESEARCH, 0.04),
    (NetworkType.ENTERPRISE, 0.03),
    (NetworkType.NON_PROFIT, 0.005),
    (NetworkType.ROUTE_SERVER, 0.005),
)


@dataclass(frozen=True)
class PeeringDbRecord:
    asn: int
    name: str
    network_type: NetworkType
    open_policy: bool  # most IXP members have open peering policies


def synthesize_records(asns: Iterable[int],
                       seed: int = 2019) -> dict[int, PeeringDbRecord]:
    """Assign PeeringDB records matching the §4.2 distribution."""
    rng = random.Random(seed)
    records: dict[int, PeeringDbRecord] = {}
    types, weights = zip(*TYPE_DISTRIBUTION)
    for asn in asns:
        network_type = rng.choices(types, weights=weights)[0]
        records[asn] = PeeringDbRecord(
            asn=asn,
            name=f"AS{asn}",
            network_type=network_type,
            open_policy=rng.random() < 0.8,
        )
    return records


def classify_peers(
    records: dict[int, PeeringDbRecord], peer_asns: Iterable[int]
) -> dict[NetworkType, float]:
    """Fraction of peers per network type (the §4.2 pie)."""
    peers = list(peer_asns)
    if not peers:
        return {}
    counts: dict[NetworkType, int] = {}
    for asn in peers:
        record = records.get(asn)
        network_type = (
            record.network_type if record is not None
            else NetworkType.UNCLASSIFIED
        )
        counts[network_type] = counts.get(network_type, 0) + 1
    return {
        network_type: count / len(peers)
        for network_type, count in counts.items()
    }
