"""Synthetic Internet topology generation and PEERING attachment.

Builds a valley-free AS hierarchy (tier-1 clique → regional transits →
stubs), connects it to a :class:`~repro.platform.peering.PeeringPlatform`
the way the real platform connects (§4.2): transit interconnections at
university PoPs, bilateral + route-server peering at IXP PoPs, and
PeeringDB records for everyone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.internet.asnode import InternetAS, Relationship
from repro.internet.ixp import (
    RouteServer,
    attach_route_server,
    join_ixp_via_route_server,
)
from repro.internet.looking_glass import LookingGlass
from repro.internet.overlay import AsOverlay
from repro.internet.peeringdb import PeeringDbRecord, synthesize_records
from repro.netsim.addr import IPv4Prefix
from repro.platform.peering import PeeringPlatform
from repro.sim.scheduler import Scheduler


@dataclass
class InternetConfig:
    """Knobs for topology size (defaults keep test runs fast)."""

    n_tier1: int = 3
    n_transit: int = 5
    n_stub: int = 10
    ixp_members_per_ixp: int = 6
    bilateral_fraction: float = 0.4
    with_looking_glass: bool = True
    seed: int = 42


@dataclass
class Internet:
    """The built synthetic Internet, attached to a platform."""

    overlay: AsOverlay
    tier1s: list[InternetAS] = field(default_factory=list)
    transits: list[InternetAS] = field(default_factory=list)
    stubs: list[InternetAS] = field(default_factory=list)
    route_servers: dict[str, RouteServer] = field(default_factory=dict)
    records: dict[int, PeeringDbRecord] = field(default_factory=dict)
    looking_glass: Optional[LookingGlass] = None
    # Global ids of bilateral vs route-server-only platform peers.
    bilateral_peers: list[int] = field(default_factory=list)
    rs_only_peers: list[int] = field(default_factory=list)
    transit_gids: list[int] = field(default_factory=list)

    @property
    def all_ases(self) -> list[InternetAS]:
        return self.tier1s + self.transits + self.stubs

    def as_by_asn(self, asn: int) -> Optional[InternetAS]:
        return self.overlay.get(asn)


def _prefix_feed() -> Iterator[IPv4Prefix]:
    """An endless supply of /16s for synthetic ASes."""
    for supernet in ("32.0.0.0/6", "36.0.0.0/6", "40.0.0.0/6"):
        yield from IPv4Prefix.parse(supernet).subnets(16)


def build_internet(
    scheduler: Scheduler,
    platform: PeeringPlatform,
    config: Optional[InternetConfig] = None,
) -> Internet:
    """Create the synthetic Internet and wire it to the platform."""
    config = config or InternetConfig()
    rng = random.Random(config.seed)
    overlay = AsOverlay(scheduler)
    internet = Internet(overlay=overlay)
    prefixes = _prefix_feed()

    def make_as(asn: int, name: str, kind: str,
                prefix_count: int = 1) -> InternetAS:
        node = InternetAS(
            scheduler, overlay, asn=asn, name=name,
            prefixes=tuple(next(prefixes) for _ in range(prefix_count)),
            kind=kind,
        )
        node.originate_all()
        return node

    # Tier-1 clique.
    for index in range(config.n_tier1):
        node = make_as(100 * (index + 1), f"tier1-{index}", "transit",
                       prefix_count=2)
        for other in internet.tier1s:
            node.peer_with(other, Relationship.PEER)
        internet.tier1s.append(node)

    # Regional transits: customers of two tier-1s, peers of each other
    # with some probability.
    for index in range(config.n_transit):
        node = make_as(1000 + index, f"transit-{index}", "transit")
        providers = rng.sample(
            internet.tier1s, k=min(2, len(internet.tier1s))
        )
        for provider in providers:
            node.peer_with(provider, Relationship.PROVIDER)
        for other in internet.transits:
            if rng.random() < 0.5:
                node.peer_with(other, Relationship.PEER)
        internet.transits.append(node)

    # Stubs: customers of one or two transits.
    for index in range(config.n_stub):
        kind = rng.choice(("content", "eyeball", "enterprise"))
        node = make_as(20000 + index, f"stub-{index}", kind)
        providers = rng.sample(
            internet.transits, k=min(rng.randint(1, 2),
                                     len(internet.transits))
        )
        for provider in providers:
            node.peer_with(provider, Relationship.PROVIDER)
        internet.stubs.append(node)

    # --- attach to the platform ---------------------------------------

    transit_pool = list(internet.transits) or list(internet.tier1s)
    ixp_pool = internet.stubs + internet.transits

    for pop in platform.pops.values():
        if pop.config.kind == "university":
            # One transit interconnection with the host university's
            # upstream (§4.2).
            provider = transit_pool[pop.config.pop_id % len(transit_pool)]
            port = pop.provision_neighbor(
                name=f"as{provider.asn}", asn=provider.asn, kind="transit"
            )
            provider.connect_to_pop(port)
            internet.transit_gids.append(port.global_id)
        else:
            # IXP: route server + members, some bilateral.
            server = attach_route_server(pop)
            internet.route_servers[pop.name] = server
            members = rng.sample(
                ixp_pool, k=min(config.ixp_members_per_ixp, len(ixp_pool))
            )
            for member_index, member in enumerate(members):
                # The first member always uses the route server so every
                # IXP exercises multilateral peering; the rest follow the
                # configured bilateral fraction (§4.2's mix).
                bilateral = (
                    member_index > 0
                    and rng.random() < config.bilateral_fraction
                )
                if bilateral:
                    port = pop.provision_neighbor(
                        name=f"as{member.asn}", asn=member.asn, kind="peer"
                    )
                    member.connect_to_pop(port)
                    internet.bilateral_peers.append(port.global_id)
                else:
                    join_ixp_via_route_server(member, pop, server)
                    internet.rs_only_peers.append(member.asn)

    internet.records = synthesize_records(
        [node.asn for node in internet.all_ases], seed=config.seed
    )
    if config.with_looking_glass and internet.tier1s:
        internet.looking_glass = LookingGlass(scheduler)
        for node in internet.tier1s:
            internet.looking_glass.peer_with(node)
    return internet
