"""A synthetic Internet AS: full BGP speaker + Gao–Rexford policies +
AS-level forwarding + optional physical presence at PEERING PoPs.

Policies follow the standard valley-free model: routes are tagged on
import with the relationship they were learned over (community tags in
the reserved 65535:* space, stripped on export) and local preference
customer > peer > provider; customer routes are exported to everyone,
peer/provider routes only to customers. PEERING itself attaches either as
a *customer* (transit interconnections at universities) or as a *peer*
(bilateral/route-server sessions at IXPs) — which is exactly what gives
experiment announcements the propagation behaviour the paper describes
(§4.2 "customer cones", reachability via transits vs peers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.bgp.attributes import Community, Route, local_route
from repro.bgp.policy import (
    Match,
    PolicyAction,
    PolicyResult,
    PolicyRule,
    RouteMap,
)
from repro.bgp.rib import RibEntry
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.internet.overlay import AsOverlay
from repro.netsim.addr import IPv4Address, IPv4Prefix, Prefix
from repro.netsim.frames import (
    EtherType,
    IcmpMessage,
    IcmpType,
    IpProto,
    IPv4Packet,
)
from repro.netsim.lpm import LpmTable
from repro.netsim.stack import NetworkStack
from repro.platform.pop import NeighborPort
from repro.sim.scheduler import Scheduler


class Relationship(enum.Enum):
    """The neighbor's role from this AS's perspective."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


TAG_CUSTOMER = Community(65535, 64001)
TAG_PEER = Community(65535, 64002)
TAG_PROVIDER = Community(65535, 64003)
ALL_TAGS = (TAG_CUSTOMER, TAG_PEER, TAG_PROVIDER)

_PREF = {
    Relationship.CUSTOMER: 200,
    Relationship.PEER: 100,
    Relationship.PROVIDER: 50,
}
_TAG = {
    Relationship.CUSTOMER: TAG_CUSTOMER,
    Relationship.PEER: TAG_PEER,
    Relationship.PROVIDER: TAG_PROVIDER,
}


def import_policy(relationship: Relationship) -> RouteMap:
    """Tag + prefer according to the relationship (Gao–Rexford)."""
    return RouteMap(
        rules=[
            PolicyRule(
                match=Match(),
                action=PolicyAction(
                    add_communities=(_TAG[relationship],),
                    set_local_pref=_PREF[relationship],
                ),
                result=PolicyResult.ACCEPT,
            )
        ],
        name=f"gr-import-{relationship.value}",
    )


def export_policy(relationship: Relationship) -> RouteMap:
    """Valley-free export: only customer routes go to peers/providers."""
    rules = []
    if relationship in (Relationship.PEER, Relationship.PROVIDER):
        rules.append(
            PolicyRule(
                match=Match(any_community_of=(TAG_PEER, TAG_PROVIDER)),
                result=PolicyResult.REJECT,
                name="no-valley",
            )
        )
    rules.append(
        PolicyRule(
            match=Match(),
            action=PolicyAction(remove_communities=ALL_TAGS),
            result=PolicyResult.ACCEPT,
            name="strip-tags",
        )
    )
    return RouteMap(rules=rules, name=f"gr-export-{relationship.value}")


@dataclass
class PopAttachment:
    """Physical presence of this AS at a PEERING PoP."""

    pop: str
    iface: str
    address: IPv4Address
    pop_server_ip: IPv4Address
    peer_name: str  # speaker neighbor name for the PEERING session


class InternetAS:
    """One synthetic AS."""

    def __init__(
        self,
        scheduler: Scheduler,
        overlay: AsOverlay,
        asn: int,
        name: str,
        prefixes: tuple[IPv4Prefix, ...],
        kind: str = "transit",  # PeeringDB-ish class, see peeringdb.py
    ) -> None:
        self.scheduler = scheduler
        self.overlay = overlay
        self.asn = asn
        self.name = name
        self.prefixes = prefixes
        self.kind = kind
        router_id = (
            prefixes[0].address_at(1) if prefixes else IPv4Address(asn & 0xFFFFFFFF)
        )
        self.speaker = BgpSpeaker(
            scheduler, SpeakerConfig(asn=asn, router_id=router_id)
        )
        # AS-level FIB mirror for overlay forwarding: prefix -> peer name.
        self.fib: LpmTable[str] = LpmTable()
        self.speaker.on_best_change.append(self._best_changed)
        self.neighbor_asns: dict[str, int] = {}
        self.relationships: dict[str, Relationship] = {}
        self.attachments: dict[str, PopAttachment] = {}
        self.stack: Optional[NetworkStack] = None
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        overlay.register(self)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def originate_all(self) -> None:
        """Originate this AS's address space."""
        for prefix in self.prefixes:
            self.speaker.originate(
                local_route(prefix, next_hop=self.speaker.config.router_id)
            )

    def peer_with(self, other: "InternetAS",
                  relationship: Relationship, rtt: float = 0.01) -> None:
        """Create a bilateral session; ``relationship`` is *our* view of
        ``other`` (their view is reciprocal)."""
        reciprocal = {
            Relationship.CUSTOMER: Relationship.PROVIDER,
            Relationship.PROVIDER: Relationship.CUSTOMER,
            Relationship.PEER: Relationship.PEER,
        }[relationship]
        ours, theirs = connect_pair(self.scheduler, rtt=rtt)
        our_name = f"as{other.asn}"
        their_name = f"as{self.asn}"
        self.speaker.attach_neighbor(
            NeighborConfig(
                name=our_name,
                peer_asn=other.asn,
                local_address=self.speaker.config.router_id,
                import_policy=import_policy(relationship),
                export_policy=export_policy(relationship),
            ),
            ours,
        )
        self.neighbor_asns[our_name] = other.asn
        self.relationships[our_name] = relationship
        other.speaker.attach_neighbor(
            NeighborConfig(
                name=their_name,
                peer_asn=self.asn,
                local_address=other.speaker.config.router_id,
                import_policy=import_policy(reciprocal),
                export_policy=export_policy(reciprocal),
            ),
            theirs,
        )
        other.neighbor_asns[their_name] = self.asn
        other.relationships[their_name] = reciprocal

    def connect_to_pop(self, port: NeighborPort,
                       lan_latency: float = 0.0005) -> PopAttachment:
        """Plug this AS into a PEERING PoP (LAN presence + BGP session).

        ``port.kind`` decides the relationship: a "transit" port means
        PEERING is our *customer*; "peer" (or "route-server") means
        PEERING is a *peer*.
        """
        relationship = (
            Relationship.CUSTOMER if port.kind == "transit"
            else Relationship.PEER
        )
        peer_name = f"peering-{port.pop}"
        self.speaker.attach_neighbor(
            NeighborConfig(
                name=peer_name,
                peer_asn=None,  # PEERING uses several ASNs
                local_address=port.address,
                import_policy=import_policy(relationship),
                export_policy=export_policy(relationship),
            ),
            port.channel,
        )
        self.relationships[peer_name] = relationship
        if self.stack is None:
            self.stack = NetworkStack(self.scheduler,
                                      name=f"as{self.asn}")
            self.stack.ingress_hooks.append(self._from_fabric)
        iface = f"pop-{port.pop}"
        from repro.netsim.link import Link, Port as NetPort

        our_port = NetPort(f"{iface}@as{self.asn}")
        Link(self.scheduler, our_port, port.lan_port, latency=lan_latency)
        self.stack.add_interface(iface, port.mac, our_port)
        self.stack.add_address(iface, port.address, port.subnet_length)
        attachment = PopAttachment(
            pop=port.pop,
            iface=iface,
            address=port.address,
            pop_server_ip=IPv4Prefix.from_address(
                port.address, port.subnet_length
            ).address_at(1),
            peer_name=peer_name,
        )
        self.attachments[peer_name] = attachment
        return attachment

    def _best_changed(self, prefix: Prefix, best: Optional[RibEntry]) -> None:
        if best is None:
            self.fib.remove(prefix)
        else:
            self.fib.insert(prefix, best.peer)

    # ------------------------------------------------------------------
    # Data plane (AS-level)
    # ------------------------------------------------------------------

    def receive_packet(self, packet: IPv4Packet) -> None:
        """Entry point from the overlay or from the PoP fabric."""
        self.packets_received += 1
        if any(p.contains_address(packet.dst) for p in self.prefixes):
            self._deliver_local(packet)
            return
        if packet.ttl <= 1:
            self._send_ttl_exceeded(packet)
            return
        self.forward(packet.decrement_ttl())

    def forward(self, packet: IPv4Packet) -> None:
        entry = self.fib.lookup(packet.dst)
        if entry is None:
            self.packets_dropped += 1
            return
        peer = entry.value
        attachment = self.attachments.get(peer)
        self.packets_forwarded += 1
        if attachment is not None:
            self._inject_into_fabric(packet, attachment)
            return
        next_asn = self.neighbor_asns.get(peer)
        if next_asn is None:
            self.packets_dropped += 1
            return
        self.overlay.deliver(packet, next_asn)

    def _deliver_local(self, packet: IPv4Packet) -> None:
        """The packet reached this AS's address space; answer probes."""
        if packet.proto == IpProto.ICMP and isinstance(
            packet.payload, IcmpMessage
        ) and packet.payload.icmp_type == IcmpType.ECHO_REQUEST:
            reply = IPv4Packet(
                src=packet.dst,
                dst=packet.src,
                proto=IpProto.ICMP,
                payload=IcmpMessage(
                    icmp_type=IcmpType.ECHO_REPLY,
                    identifier=packet.payload.identifier,
                    sequence=packet.payload.sequence,
                    payload=packet.payload.payload,
                ),
            )
            self.forward(reply)
            return
        if packet.proto == IpProto.UDP:
            error = IPv4Packet(
                src=packet.dst,
                dst=packet.src,
                proto=IpProto.ICMP,
                payload=IcmpMessage(
                    icmp_type=IcmpType.DEST_UNREACHABLE, code=3,
                    payload=packet.encode()[:28],
                ),
            )
            self.forward(error)

    def _send_ttl_exceeded(self, packet: IPv4Packet) -> None:
        source = (
            self.prefixes[0].address_at(1) if self.prefixes
            else self.speaker.config.router_id
        )
        error = IPv4Packet(
            src=source,
            dst=packet.src,
            proto=IpProto.ICMP,
            payload=IcmpMessage(
                icmp_type=IcmpType.TIME_EXCEEDED,
                payload=packet.encode()[:28],
            ),
        )
        self.forward(error)

    # -- bridging between the overlay and the PoP fabric -----------------

    def _inject_into_fabric(self, packet: IPv4Packet,
                            attachment: PopAttachment) -> None:
        assert self.stack is not None
        self.stack.send_ip_via(
            packet, attachment.pop_server_ip, attachment.iface
        )

    def _from_fabric(self, frame, iface):
        """Stack ingress hook: lift fabric packets into the AS overlay."""
        if frame.ethertype != EtherType.IPV4 or not isinstance(
            frame.payload, IPv4Packet
        ):
            return frame
        packet = frame.payload
        if self.stack is not None and packet.dst in self.stack.local_ips():
            return frame  # LAN-level traffic (e.g. ping to the IXP port)
        self.receive_packet(packet)
        return None
