"""BGP update churn generation, calibrated to the paper's §6 numbers.

PEERING's AMS-IX router observed an average of 21.8 updates/second with a
99th percentile of ≈400 updates/second over an 18-hour window. The
generator reproduces that long-tailed behaviour with a two-state
(quiet/burst) modulated Poisson process, and feeds real UPDATE messages
through whatever processing function the caller supplies (a vBGP node's
pipeline, a bare decoder, a filter chain, …).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.bgp.attributes import (
    AsPath,
    Community,
    Origin,
    PathAttributes,
)
from repro.bgp.messages import UpdateMessage
from repro.netsim.addr import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class ChurnProfile:
    """Parameters of the two-state modulated Poisson update process."""

    name: str
    quiet_rate: float  # updates/second in the quiet state
    burst_rate: float  # updates/second in the burst state
    burst_probability: float  # chance a 1s interval is a burst
    withdraw_fraction: float = 0.2

    def mean_rate(self) -> float:
        return (
            self.quiet_rate * (1 - self.burst_probability)
            + self.burst_rate * self.burst_probability
        )


# Calibrated so mean ≈ 21.8/s and p99 of 1-second bins ≈ 400/s (§6).
AMSIX_PROFILE = ChurnProfile(
    name="ams-ix",
    quiet_rate=17.2,
    burst_rate=400.0,
    burst_probability=0.012,
)


class ChurnGenerator:
    """Synthesizes realistic UPDATE traffic over a prefix pool."""

    def __init__(
        self,
        profile: ChurnProfile,
        prefix_count: int = 5000,
        seed: int = 7,
        base_prefix: str = "60.0.0.0/8",
        attribute_combinations: int = 512,
    ) -> None:
        self.profile = profile
        self._rng = random.Random(seed)
        base = IPv4Prefix.parse(base_prefix)
        all_prefixes = base.subnets(24)
        self.prefixes = []
        for _ in range(prefix_count):
            try:
                self.prefixes.append(next(all_prefixes))
            except StopIteration:
                break
        self._announced: set[IPv4Prefix] = set()
        # Real-world churn concentrates on a small set of attribute
        # combinations (Krenc et al.): most updates are path flaps that
        # re-announce a prefix with attributes seen before, not brand-new
        # paths. The generator mirrors that by drawing announcements from a
        # bounded pool of combinations, filled lazily with fresh random
        # attributes until it reaches ``attribute_combinations``.
        self.attribute_combinations = attribute_combinations
        self._attribute_pool: list[PathAttributes] = []

    def _draw_attributes(self) -> PathAttributes:
        """A random attribute combination from the (lazily filled) pool."""
        pool = self._attribute_pool
        if len(pool) < self.attribute_combinations:
            path_length = self._rng.randint(2, 6)
            asns = tuple(
                self._rng.randint(1000, 60000) for _ in range(path_length)
            )
            communities = frozenset(
                Community(asns[0] & 0xFFFF or 1, self._rng.randint(1, 999))
                for _ in range(self._rng.randint(0, 3))
            )
            attributes = PathAttributes(
                origin=Origin.IGP,
                as_path=AsPath.from_asns(*asns),
                next_hop=IPv4Address(
                    self._rng.randint(1 << 24, (1 << 32) - 2)
                ),
                communities=communities,
                med=self._rng.choice((None, 0, 10, 100)),
            )
            pool.append(attributes)
            return attributes
        return self._rng.choice(pool)

    def make_update(self) -> UpdateMessage:
        """One synthetic UPDATE (announce or withdraw)."""
        prefix = self._rng.choice(self.prefixes)
        withdraw = (
            prefix in self._announced
            and self._rng.random() < self.profile.withdraw_fraction
        )
        if withdraw:
            self._announced.discard(prefix)
            return UpdateMessage(
                withdrawn=((prefix, None),)
            )
        self._announced.add(prefix)
        return UpdateMessage(
            attributes=self._draw_attributes(), nlri=((prefix, None),)
        )

    def make_updates(self, count: int) -> list[UpdateMessage]:
        return [self.make_update() for _ in range(count)]

    def second_rates(self, seconds: int) -> list[int]:
        """Per-second update counts drawn from the modulated process."""
        rates = []
        for _ in range(seconds):
            burst = self._rng.random() < self.profile.burst_probability
            lam = self.profile.burst_rate if burst else self.profile.quiet_rate
            # Poisson draw via Knuth (rates here are modest).
            rates.append(self._poisson(lam))
        return rates

    def _poisson(self, lam: float) -> int:
        if lam > 100:
            # Normal approximation for large λ.
            value = int(self._rng.gauss(lam, lam ** 0.5))
            return max(value, 0)
        import math

        threshold = math.exp(-lam)
        count, product = 0, self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def replay(
        self,
        seconds: int,
        process: Callable[[UpdateMessage], object],
    ) -> list[int]:
        """Feed ``seconds`` of churn through ``process``; returns the
        per-second rates that were generated."""
        rates = self.second_rates(seconds)
        for rate in rates:
            for update in self.make_updates(rate):
                process(update)
        return rates
