"""The synthetic Internet substrate.

PEERING's neighbors are real networks; offline, we substitute a synthetic
AS-level Internet that exercises the same code paths: full BGP speakers
per AS with Gao–Rexford routing policies, IXP route servers (RFC 7947),
an AS-level forwarding overlay so experiment traffic traverses real
(simulated) inter-AS paths and generates echo replies / TTL-exceeded
messages, a calibrated BGP churn generator, PeeringDB-style records, and
looking glasses.
"""

from repro.internet.asnode import InternetAS, Relationship
from repro.internet.overlay import AsOverlay
from repro.internet.ixp import RouteServer
from repro.internet.topology import Internet, InternetConfig, build_internet
from repro.internet.churn import ChurnGenerator, ChurnProfile, AMSIX_PROFILE
from repro.internet.fulltable import (
    DFZ_PROFILE,
    FullTableGenerator,
    FullTableProfile,
)
from repro.internet.peeringdb import (
    NetworkType,
    PeeringDbRecord,
    classify_peers,
    synthesize_records,
)
from repro.internet.looking_glass import LookingGlass

__all__ = [
    "AMSIX_PROFILE",
    "AsOverlay",
    "ChurnGenerator",
    "ChurnProfile",
    "DFZ_PROFILE",
    "FullTableGenerator",
    "FullTableProfile",
    "Internet",
    "InternetAS",
    "InternetConfig",
    "LookingGlass",
    "NetworkType",
    "PeeringDbRecord",
    "Relationship",
    "RouteServer",
    "build_internet",
    "classify_peers",
    "synthesize_records",
]
