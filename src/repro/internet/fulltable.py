"""Seeded full-table workload: a realistic ~900k-prefix DFZ snapshot.

The paper's platform carries full Internet routing tables at every mux
(§4; Fig. 6 reports the resulting CPU/memory envelope).  This module
synthesizes a default-free-zone-shaped table so benchmarks and the
differential harness can run at that scale deterministically:

* the CIDR-length distribution follows the well-known DFZ shape
  (majority /24, a long tail of shorter prefixes),
* origin ASes follow a Zipf-ish popularity curve, and all prefixes of
  one origin share one ``PathAttributes`` value — mirroring how real
  tables concentrate on a small fraction of distinct attribute
  combinations (the property the columnar Loc-RIB and the batched
  fan-out both exploit),
* a churn tail of flaps/withdrawals over the loaded table models
  steady-state operation after convergence.

Everything is derived from one ``random.Random(seed)`` stream, so two
generators with the same parameters produce byte-identical workloads —
the differential harness depends on that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.bgp.attributes import (
    AsPath,
    Community,
    Origin,
    PathAttributes,
    Route,
)
from repro.bgp.messages import UpdateMessage
from repro.netsim.addr import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class FullTableProfile:
    """Shape parameters of the synthetic DFZ table."""

    name: str
    # (prefix length, relative weight) — normalized at draw time.
    cidr_weights: tuple[tuple[int, float], ...]
    prefixes_per_origin: int = 30  # mean table share of one origin AS
    max_origins: int = 30000
    transit_pool: int = 2000  # distinct transit ASNs on paths
    withdraw_fraction: float = 0.2  # of churn-tail events


# CIDR-length shares approximating the IPv4 DFZ (RouteViews-style):
# /24 dominates, /22–/23 carry ~20%, aggregates thin out toward /8.
DFZ_PROFILE = FullTableProfile(
    name="dfz",
    cidr_weights=(
        (24, 0.567), (23, 0.085), (22, 0.110), (21, 0.045), (20, 0.045),
        (19, 0.030), (18, 0.025), (17, 0.015), (16, 0.055), (15, 0.008),
        (14, 0.006), (13, 0.004), (12, 0.003), (11, 0.001), (10, 0.0005),
        (9, 0.0003), (8, 0.0002),
    ),
)

# First octets never drawn for table prefixes: reserved/special ranges
# plus the pools other generators use (60/8 churn background, 184.164
# experiment space), so full-table and churn workloads never collide.
_EXCLUDED_FIRST_OCTETS = frozenset({0, 10, 60, 127, 184}) | frozenset(
    range(224, 256)
)


class FullTableGenerator:
    """Deterministic full-table + churn-tail workload over ~900k prefixes."""

    def __init__(
        self,
        profile: FullTableProfile = DFZ_PROFILE,
        prefix_count: int = 900_000,
        seed: int = 20260807,
    ) -> None:
        self.profile = profile
        self.prefix_count = prefix_count
        self.seed = seed
        self._rng = random.Random(seed)
        self._prefixes: Optional[list[IPv4Prefix]] = None
        self._origin_of: Optional[list[int]] = None
        self._origin_attrs: Optional[list[PathAttributes]] = None
        self._churn_rng: Optional[random.Random] = None
        self._announced: set[IPv4Prefix] = set()

    # -- table synthesis ---------------------------------------------------

    def _build(self) -> None:
        if self._prefixes is not None:
            return
        rng = self._rng
        lengths = [length for length, _ in self.profile.cidr_weights]
        weights = [weight for _, weight in self.profile.cidr_weights]
        drawn_lengths = rng.choices(lengths, weights, k=self.prefix_count)
        seen: set[tuple[int, int]] = set()
        prefixes: list[IPv4Prefix] = []
        for length in drawn_lengths:
            mask = ((1 << length) - 1) << (32 - length)
            while True:
                value = rng.getrandbits(32) & mask
                if (value >> 24) in _EXCLUDED_FIRST_OCTETS:
                    continue
                key = (value, length)
                if key in seen:
                    continue
                seen.add(key)
                prefixes.append(IPv4Prefix(IPv4Address(value), length))
                break
        self._prefixes = prefixes
        self._origin_attrs = self._make_origin_attrs()
        # Zipf-ish origin popularity: weight 1/rank, so a few origins
        # announce large swaths while the tail announces a handful each.
        origin_count = len(self._origin_attrs)
        origin_weights = [1.0 / rank for rank in range(1, origin_count + 1)]
        self._origin_of = rng.choices(
            range(origin_count), origin_weights, k=self.prefix_count
        )

    def _make_origin_attrs(self) -> list[PathAttributes]:
        rng = self._rng
        origin_count = max(
            1,
            min(self.prefix_count // self.profile.prefixes_per_origin,
                self.profile.max_origins),
        )
        transits = [
            rng.randint(1000, 46000) for _ in range(self.profile.transit_pool)
        ]
        attrs = []
        for _ in range(origin_count):
            origin_asn = rng.randint(1000, 46000)
            path = tuple(
                rng.choice(transits)
                for _ in range(rng.randint(1, 4))
            ) + (origin_asn,)
            communities = frozenset(
                Community(path[0] & 0xFFFF or 1, rng.randint(1, 999))
                for _ in range(rng.randint(0, 2))
            )
            attrs.append(PathAttributes(
                origin=Origin.IGP,
                as_path=AsPath.from_asns(*path),
                next_hop=IPv4Address(rng.randint(1 << 24, (1 << 32) - 2)),
                communities=communities,
                med=rng.choice((None, 0, 10, 100)),
            ))
        return attrs

    # -- public workload surface -------------------------------------------

    @property
    def prefixes(self) -> list[IPv4Prefix]:
        self._build()
        return self._prefixes

    @property
    def origin_attributes(self) -> list[PathAttributes]:
        self._build()
        return self._origin_attrs

    def attributes_for(self, index: int) -> PathAttributes:
        """The attribute set of the ``index``-th table prefix."""
        self._build()
        return self._origin_attrs[self._origin_of[index]]

    def routes(self) -> Iterator[Route]:
        """The full table as Route objects (attrs shared per origin)."""
        self._build()
        for index, prefix in enumerate(self._prefixes):
            yield Route(
                prefix=prefix,
                attributes=self._origin_attrs[self._origin_of[index]],
            )

    def table_updates(self, max_nlri: int = 200) -> Iterator[UpdateMessage]:
        """The initial table load as multi-NLRI UPDATEs.

        Prefixes sharing one origin's attributes are packed together,
        chunked so every message stays well under the 4096-byte ceiling
        even when re-encoded with ADD-PATH path ids.  Messages are built
        fresh on every call so per-message wire caches never leak between
        benchmark legs.
        """
        self._build()
        by_origin: dict[int, list[IPv4Prefix]] = {}
        for index, prefix in enumerate(self._prefixes):
            by_origin.setdefault(self._origin_of[index], []).append(prefix)
        for origin_index in sorted(by_origin):
            attrs = self._origin_attrs[origin_index]
            members = by_origin[origin_index]
            for start in range(0, len(members), max_nlri):
                yield UpdateMessage(
                    attributes=attrs,
                    nlri=tuple(
                        (prefix, None)
                        for prefix in members[start:start + max_nlri]
                    ),
                )

    def churn(self, count: int) -> Iterator[UpdateMessage]:
        """A churn tail over the loaded table: flaps and withdrawals.

        Assumes the table was loaded first (every prefix announced).
        Withdrawn prefixes may be re-announced by later events; most
        events are path flaps that re-announce with a *different*
        origin's attributes, forcing real best-path work downstream.
        """
        self._build()
        if self._churn_rng is None:
            self._churn_rng = random.Random(self.seed ^ 0x5DEECE66D)
            self._announced = set(self._prefixes)
        rng = self._churn_rng
        origin_count = len(self._origin_attrs)
        for _ in range(count):
            index = rng.randrange(self.prefix_count)
            prefix = self._prefixes[index]
            if (
                prefix in self._announced
                and rng.random() < self.profile.withdraw_fraction
            ):
                self._announced.discard(prefix)
                yield UpdateMessage(withdrawn=((prefix, None),))
                continue
            self._announced.add(prefix)
            attrs = self._origin_attrs[rng.randrange(origin_count)]
            yield UpdateMessage(attributes=attrs, nlri=((prefix, None),))
