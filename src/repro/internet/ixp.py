"""IXP route servers (RFC 7947) and IXP membership wiring.

At IXP PoPs, PEERING peers bilaterally with some members and reaches the
rest via route servers (§4.2: 923 peers, 129 bilateral, the rest via
route servers). A :class:`RouteServer` is a transparent BGP speaker: it
does not prepend its ASN and preserves members' next hops, so traffic
flows member↔PEERING directly across the shared fabric.
"""

from __future__ import annotations


from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.internet.asnode import (
    InternetAS,
    PopAttachment,
    Relationship,
    export_policy,
    import_policy,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.netsim.link import Link, Port as NetPort
from repro.netsim.stack import NetworkStack
from repro.platform.pop import PointOfPresence
from repro.sim.scheduler import Scheduler


class RouteServer:
    """A transparent multilateral-peering route server at one IXP."""

    def __init__(self, scheduler: Scheduler, name: str, asn: int,
                 router_id: IPv4Address) -> None:
        self.scheduler = scheduler
        self.name = name
        self.asn = asn
        self.speaker = BgpSpeaker(
            scheduler, SpeakerConfig(asn=asn, router_id=router_id)
        )
        self.members: list[str] = []

    def add_session(self, name: str, peer_asn: int, channel) -> None:
        """One transparent session (member or PEERING side)."""
        self.speaker.attach_neighbor(
            NeighborConfig(
                name=name,
                peer_asn=peer_asn,
                transparent=True,
                next_hop_self=False,
                local_address=self.speaker.config.router_id,
            ),
            channel,
        )
        self.members.append(name)


def attach_route_server(pop: PointOfPresence, asn: int = 6777) -> RouteServer:
    """Create the PoP's route server and vBGP's session to it."""
    port = pop.provision_neighbor(
        name=f"rs-{pop.name}", asn=asn, kind="route-server"
    )
    server = RouteServer(
        pop.scheduler, name=f"rs-{pop.name}", asn=asn, router_id=port.address
    )
    server.add_session(
        f"peering-{pop.name}", peer_asn=pop.platform_asn, channel=port.channel
    )
    return server


def join_ixp_via_route_server(
    member: InternetAS,
    pop: PointOfPresence,
    server: RouteServer,
    lan_latency: float = 0.0005,
) -> PopAttachment:
    """Give an AS route-server-only presence at an IXP PoP.

    The member gets a port on the IXP fabric (address + MAC), a transparent
    session with the route server, and an AS-overlay attachment so traffic
    to/from PEERING crosses the shared switch directly.
    """
    address, mac, lan_port = pop.provision_lan_host(f"as{member.asn}")
    ours, theirs = connect_pair(pop.scheduler, rtt=4 * lan_latency)
    peer_name = f"rs-{pop.name}"
    member.speaker.attach_neighbor(
        NeighborConfig(
            name=peer_name,
            peer_asn=server.asn,
            local_address=address,  # transparent RS: next hop = member port
            import_policy=import_policy(Relationship.PEER),
            export_policy=export_policy(Relationship.PEER),
        ),
        ours,
    )
    member.relationships[peer_name] = Relationship.PEER
    server.add_session(f"as{member.asn}", peer_asn=member.asn,
                       channel=theirs)
    if member.stack is None:
        member.stack = NetworkStack(pop.scheduler, name=f"as{member.asn}")
        member.stack.ingress_hooks.append(member._from_fabric)
    iface = f"ixp-{pop.name}"
    our_port = NetPort(f"{iface}@as{member.asn}")
    Link(pop.scheduler, our_port, lan_port, latency=lan_latency)
    member.stack.add_interface(iface, mac, our_port)
    member.stack.add_address(iface, address, 24)
    attachment = PopAttachment(
        pop=pop.name,
        iface=iface,
        address=address,
        pop_server_ip=IPv4Prefix.from_address(address, 24).address_at(1),
        peer_name=peer_name,
    )
    member.attachments[peer_name] = attachment
    return attachment
