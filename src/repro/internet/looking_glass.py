"""Looking glasses and route collectors.

Existing measurement tools "provide visibility into the current state of
BGP … [but] cannot interact with the routing ecosystem" (§1, §8) — we
model them anyway because experiments *use* them: the backup-routes study
observes which routes become visible, and Appendix A's debugging workflow
relies on looking glasses' restricted command interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bgp.attributes import Route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.internet.asnode import InternetAS
from repro.netsim.addr import IPv4Address, Prefix
from repro.sim.scheduler import Scheduler
from repro.telemetry import BmpMessage, RouteMonitoring, TelemetryHub


@dataclass
class CollectedRoute:
    peer_asn: int
    route: Route
    first_seen: float
    last_updated: float


class LookingGlass:
    """A route collector with a restricted query interface.

    Peers with ASes (like RouteViews / RIPE RIS collectors) and records
    every route each peer advertises. The query surface is deliberately
    narrow — ``show route for <prefix>`` — matching the paper's complaint
    that looking glasses "only provide a restricted command line
    interface" (Appendix A).
    """

    COLLECTOR_ASN = 6447  # RouteViews' ASN, as a nod

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "collector",
        telemetry: Optional[TelemetryHub] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        # The collector *is* a BMP monitoring station: its sessions stream
        # PeerUp/RouteMonitoring/PeerDown to the station, which maintains
        # the per-peer RIB-in mirrors the query surface reads.
        self.telemetry = (
            telemetry if telemetry is not None
            else TelemetryHub(scheduler, name=f"lg-{name}")
        )
        self.station = self.telemetry.station
        self.speaker = BgpSpeaker(
            scheduler,
            SpeakerConfig(
                asn=self.COLLECTOR_ASN,
                router_id=IPv4Address.parse("198.32.4.1"),
            ),
            telemetry=self.telemetry,
        )
        # (peer asn, prefix) -> collected route (announce history).
        self.table: dict[tuple[int, tuple], CollectedRoute] = {}
        self.station.subscribe(self._on_bmp)
        self._peer_asns: dict[str, int] = {}

    def peer_with(self, node: InternetAS, rtt: float = 0.02) -> None:
        """Establish a collection session with an AS."""
        ours, theirs = connect_pair(self.scheduler, rtt=rtt)
        name = f"as{node.asn}"
        self.speaker.attach_neighbor(
            NeighborConfig(name=name, peer_asn=node.asn), ours
        )
        self._peer_asns[name] = node.asn
        # The AS exports to the collector as it would to a peer.
        from repro.internet.asnode import Relationship, export_policy

        node.speaker.attach_neighbor(
            NeighborConfig(
                name=f"collector-{self.name}",
                peer_asn=self.COLLECTOR_ASN,
                local_address=node.speaker.config.router_id,
                export_policy=export_policy(Relationship.PEER),
            ),
            theirs,
        )

    def _on_bmp(self, message: BmpMessage) -> None:
        """Station subscriber: fold RouteMonitoring into the history table."""
        if not isinstance(message, RouteMonitoring):
            return
        asn = self._peer_asns.get(message.peer)
        if asn is None:
            return
        now = self.scheduler.now
        for route in message.announced:
            key = (asn, route.prefix.key())
            existing = self.table.get(key)
            if existing is None:
                self.table[key] = CollectedRoute(
                    peer_asn=asn, route=route,
                    first_seen=now, last_updated=now,
                )
            else:
                existing.route = route
                existing.last_updated = now

    # -- the restricted CLI ------------------------------------------------

    def show_route_for(self, prefix: Prefix) -> str:
        lines = []
        for (asn, prefix_key), collected in sorted(self.table.items()):
            if prefix_key == prefix.key():
                lines.append(
                    f"from AS{asn}: {collected.route}"
                )
        return "\n".join(lines) or "% Network not in table"

    def routes_for(self, prefix: Prefix) -> list[CollectedRoute]:
        return [
            collected
            for (asn, prefix_key), collected in self.table.items()
            if prefix_key == prefix.key()
        ]

    def visible_paths(self, prefix: Prefix) -> set[tuple[int, ...]]:
        """Distinct AS paths *currently* visible for a prefix.

        Reads the station's per-peer RIB-in mirrors (withdrawn routes
        disappear), which is what hidden-routes studies compare across
        announcement configurations. ``self.table`` keeps the announce
        history with first-seen timestamps.
        """
        return {
            route.as_path.asns
            for _peer, route in self.station.routes_for(prefix)
        }
