"""Automated route-propagation debugging (Appendix A's future work).

The paper describes the pain of debugging improperly configured filters
in other networks: looking glasses "cannot accurately pinpoint filters
because they only provide a restricted command line interface. Even in
the optimistic scenario where two directly-connected networks A and B
have looking glasses, if network A has the route and network B does not,
the looking glasses do not allow us to disambiguate between (1) network
A not exporting the route to B or (2) network B filtering the route
received from A" — and closes with: "We plan to evaluate methods for
automated filter troubleshooting."

This module implements that evaluation on the synthetic Internet:

* :func:`propagation_snapshot` — which ASes currently carry the prefix,
* :func:`expected_edges` — where valley-free policy *predicts* the route
  should flow (using inferred relationships, as a measurement system
  would),
* :func:`diagnose` — the boundary edges where propagation stops; with
  looking-glass-level access the verdict is ``ambiguous`` (the paper's
  complaint, reproduced faithfully); with router-level access
  (Adj-RIB-Out visibility, as inside a cooperating network) the verdict
  pinpoints the side of the broken filter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.internet.asnode import (
    InternetAS,
    Relationship,
    TAG_CUSTOMER,
    TAG_PEER,
    TAG_PROVIDER,
)
from repro.netsim.addr import Prefix


class Verdict(enum.Enum):
    EXPORT_SIDE = "A is not exporting the route to B"
    IMPORT_SIDE = "B is filtering the route received from A"
    AMBIGUOUS = "cannot disambiguate with looking glasses alone"


@dataclass(frozen=True)
class SuspectEdge:
    """One boundary where a route should propagate but does not."""

    from_asn: int
    to_asn: int
    verdict: Verdict


@dataclass
class PropagationReport:
    prefix: Prefix
    carrying: set[int] = field(default_factory=set)
    missing: set[int] = field(default_factory=set)
    suspects: list[SuspectEdge] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"prefix {self.prefix}: {len(self.carrying)} ASes carry it, "
            f"{len(self.missing)} do not",
        ]
        for suspect in self.suspects:
            lines.append(
                f"  AS{suspect.from_asn} -> AS{suspect.to_asn}: "
                f"{suspect.verdict.value}"
            )
        return "\n".join(lines)


def propagation_snapshot(
    ases: Iterable[InternetAS], prefix: Prefix
) -> tuple[set[int], set[int]]:
    """Partition ASes into carrying / missing for the prefix."""
    carrying, missing = set(), set()
    for node in ases:
        if node.speaker.best_route(prefix) is not None:
            carrying.add(node.asn)
        else:
            missing.add(node.asn)
    return carrying, missing


def _would_export(node: InternetAS, neighbor_name: str,
                  prefix: Prefix) -> Optional[bool]:
    """Does valley-free policy predict ``node`` exports to the neighbor?

    Uses the route's import tag (how the node learned it) and the
    neighbor relationship — exactly the inference a measurement system
    makes from public relationship data.
    """
    best = node.speaker.loc_rib.best(prefix)
    if best is None:
        return None
    relationship = node.relationships.get(neighbor_name)
    if relationship is None:
        return None
    if relationship == Relationship.CUSTOMER:
        return True  # customers get everything
    communities = best.route.communities
    learned_from_customer = TAG_CUSTOMER in communities or not (
        {TAG_PEER, TAG_PROVIDER} & communities
    )  # no tag: locally originated
    return learned_from_customer


def diagnose(
    ases: Iterable[InternetAS],
    prefix: Prefix,
    router_access: bool = False,
) -> PropagationReport:
    """Find the filters blocking a prefix's propagation.

    ``router_access=False`` models the Appendix A reality: looking
    glasses only — every suspect edge is AMBIGUOUS. With
    ``router_access=True`` (the cooperative/automated setting the paper
    wants to evaluate) the Adj-RIB-Out of the exporting side settles
    which filter is at fault.
    """
    nodes = list(ases)
    carrying, missing = propagation_snapshot(nodes, prefix)
    report = PropagationReport(prefix=prefix, carrying=carrying,
                               missing=missing)
    for node in nodes:
        if node.asn not in carrying:
            continue
        for neighbor_name, neighbor_asn in node.neighbor_asns.items():
            if neighbor_asn not in missing:
                continue
            expected = _would_export(node, neighbor_name, prefix)
            if not expected:
                continue  # policy predicts no propagation: not a fault
            if not router_access:
                verdict = Verdict.AMBIGUOUS
            else:
                exported = any(
                    route.prefix == prefix
                    for route in node.speaker.neighbors[
                        neighbor_name
                    ].adj_rib_out.routes()
                )
                verdict = (
                    Verdict.IMPORT_SIDE if exported
                    else Verdict.EXPORT_SIDE
                )
            report.suspects.append(SuspectEdge(
                from_asn=node.asn, to_asn=neighbor_asn, verdict=verdict,
            ))
    return report
