"""AS-level forwarding overlay.

Packets that leave the PEERING fabric travel the synthetic Internet hop by
hop *between ASes*: each hop consults the AS's own BGP best route (from
its live speaker), decrements TTL, and hands the packet to the next AS
after a per-hop latency. This keeps end-to-end ping/traceroute semantics
(echo replies, TTL-exceeded from intermediate ASes) without simulating
every internal router of every AS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.frames import IPv4Packet
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:
    from repro.internet.asnode import InternetAS

DEFAULT_HOP_LATENCY = 0.005


class AsOverlay:
    """Registry + packet mover for the synthetic Internet."""

    def __init__(self, scheduler: Scheduler,
                 hop_latency: float = DEFAULT_HOP_LATENCY) -> None:
        self.scheduler = scheduler
        self.hop_latency = hop_latency
        self.ases: dict[int, "InternetAS"] = {}
        self.packets_moved = 0
        self.packets_dropped = 0

    def register(self, node: "InternetAS") -> None:
        self.ases[node.asn] = node

    def get(self, asn: int) -> Optional["InternetAS"]:
        return self.ases.get(asn)

    def deliver(self, packet: IPv4Packet, to_asn: int,
                latency: Optional[float] = None) -> None:
        """Hand a packet to an AS after the hop latency."""
        node = self.ases.get(to_asn)
        if node is None:
            self.packets_dropped += 1
            return
        self.packets_moved += 1
        self.scheduler.call_later(
            latency if latency is not None else self.hop_latency,
            lambda: node.receive_packet(packet),
        )
