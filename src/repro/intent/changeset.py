"""Declarative configuration changes for the intent layer (§5).

A :class:`ChangeSet` is the unit the transactional controller plans,
diffs, and applies: an ordered tuple of :class:`ChangeOp` records
covering the toolkit's configuration surface — announce / withdraw,
community (policy) edits, and experiment mux attach/detach at a PoP.

Serialization is *stable*: :meth:`ChangeSet.to_json` emits canonical
JSON (sorted keys, fixed separators, no floats), so the same logical
ChangeSet always has the same bytes and the same :meth:`digest`.  The
digest names the transaction in telemetry events and intent history.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "ChangeOp",
    "ChangeSet",
    "announce_op",
    "connect_op",
    "disconnect_op",
    "set_communities_op",
    "withdraw_op",
]

#: Operation kinds and the fields each requires beyond ``experiment``.
OP_KINDS = {
    "announce": ("prefix",),
    "withdraw": ("prefix",),
    "set-communities": ("prefix",),
    "connect": ("pop",),
    "disconnect": ("pop",),
}


@dataclass(frozen=True)
class ChangeOp:
    """One declarative operation.

    ``kind`` selects the semantics; unused fields stay at their empty
    defaults so every op serializes with the same shape:

    ``announce``
        Announce ``prefix`` from ``experiment`` at ``pops`` (empty =
        every connected PoP), with ``communities`` (``"asn:value"``
        strings), ``prepend`` copies of the experiment ASN, and
        ``poison`` ASNs sandwiched into the path.
    ``withdraw``
        Withdraw ``prefix`` at ``pops`` (empty = every connected PoP).
    ``set-communities``
        Policy edit: re-announce an already-announced ``prefix`` with
        ``communities`` replacing the previous set.
    ``connect`` / ``disconnect``
        Experiment mux change: bring the tunnel + BGP session to
        ``pop`` up, or tear the attachment down.
    """

    kind: str
    experiment: str
    prefix: str = ""
    pops: tuple[str, ...] = ()
    communities: tuple[str, ...] = ()
    prepend: int = 0
    poison: tuple[int, ...] = ()
    pop: str = ""

    def validate(self) -> None:
        required = OP_KINDS.get(self.kind)
        if required is None:
            raise ValueError(
                f"unknown op kind {self.kind!r}; choose from "
                f"{', '.join(sorted(OP_KINDS))}"
            )
        if not self.experiment:
            raise ValueError(f"{self.kind} op needs an experiment")
        for name in required:
            if not getattr(self, name):
                raise ValueError(f"{self.kind} op needs a {name}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "experiment": self.experiment,
            "prefix": self.prefix,
            "pops": list(self.pops),
            "communities": list(self.communities),
            "prepend": self.prepend,
            "poison": list(self.poison),
            "pop": self.pop,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChangeOp":
        return cls(
            kind=str(data.get("kind", "")),
            experiment=str(data.get("experiment", "")),
            prefix=str(data.get("prefix", "")),
            pops=tuple(data.get("pops", ())),
            communities=tuple(data.get("communities", ())),
            prepend=int(data.get("prepend", 0)),
            poison=tuple(int(asn) for asn in data.get("poison", ())),
            pop=str(data.get("pop", "")),
        )

    def describe(self) -> str:
        where = ",".join(self.pops) if self.pops else "all"
        if self.kind in ("connect", "disconnect"):
            return f"{self.kind} {self.experiment}@{self.pop}"
        extra = ""
        if self.communities:
            extra += f" communities={','.join(self.communities)}"
        if self.prepend:
            extra += f" prepend={self.prepend}"
        if self.poison:
            extra += f" poison={','.join(map(str, self.poison))}"
        return (
            f"{self.kind} {self.prefix} [{self.experiment}@{where}]{extra}"
        )


@dataclass(frozen=True)
class ChangeSet:
    """An ordered, named collection of :class:`ChangeOp` records."""

    name: str = "changeset"
    ops: tuple[ChangeOp, ...] = field(default_factory=tuple)

    def validate(self) -> None:
        for op in self.ops:
            op.validate()

    def is_empty(self) -> bool:
        return not self.ops

    def with_op(self, op: ChangeOp) -> "ChangeSet":
        return ChangeSet(name=self.name, ops=self.ops + (op,))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChangeSet":
        return cls(
            name=str(data.get("name", "changeset")),
            ops=tuple(
                ChangeOp.from_dict(op) for op in data.get("ops", ())
            ),
        )

    def to_json(self) -> str:
        """Canonical serialization: same ChangeSet, same bytes."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "ChangeSet":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """A short stable id derived from the canonical serialization."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:12]

    def describe(self) -> str:
        if self.is_empty():
            return f"{self.name} ({self.digest()}): empty"
        lines = [f"{self.name} ({self.digest()}): {len(self.ops)} op(s)"]
        lines.extend(f"  {index}. {op.describe()}"
                     for index, op in enumerate(self.ops, start=1))
        return "\n".join(lines)


# -- convenience constructors (the evaluator-facing vocabulary) ------------


def announce_op(
    experiment: str,
    prefix: str,
    pops: Sequence[str] = (),
    communities: Iterable[str] = (),
    prepend: int = 0,
    poison: Sequence[int] = (),
) -> ChangeOp:
    return ChangeOp(
        kind="announce", experiment=experiment, prefix=prefix,
        pops=tuple(pops), communities=tuple(communities),
        prepend=prepend, poison=tuple(poison),
    )


def withdraw_op(experiment: str, prefix: str,
                pops: Sequence[str] = ()) -> ChangeOp:
    return ChangeOp(
        kind="withdraw", experiment=experiment, prefix=prefix,
        pops=tuple(pops),
    )


def set_communities_op(
    experiment: str,
    prefix: str,
    communities: Iterable[str],
    pops: Sequence[str] = (),
) -> ChangeOp:
    return ChangeOp(
        kind="set-communities", experiment=experiment, prefix=prefix,
        pops=tuple(pops), communities=tuple(communities),
    )


def connect_op(experiment: str, pop: str) -> ChangeOp:
    return ChangeOp(kind="connect", experiment=experiment, pop=pop)


def disconnect_op(experiment: str, pop: str) -> ChangeOp:
    return ChangeOp(kind="disconnect", experiment=experiment, pop=pop)


def parse_community(text: str) -> Optional[tuple[int, int]]:
    """``"asn:value"`` → ``(asn, value)``; None if malformed."""
    parts = text.split(":")
    if len(parts) != 2:
        return None
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        return None
