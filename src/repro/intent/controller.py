"""The transactional intent controller: plan → apply → verify → commit.

Configuration changes on a shared research platform are dangerous: a
bad announcement can leak, hijack, or blow the update budget for every
tenant of the mux.  The intent layer makes them transactional:

``plan``
    Dry-run the ChangeSet (:class:`~repro.intent.dryrun.DryRunEvaluator`)
    — predicted per-neighbor export diffs plus the full five-invariant
    catalog over the simulated post-change state, live platform
    untouched.
``apply``
    Record a snapshot of the restorable platform state (client
    announcements, attachments) together with a structural fingerprint
    (Loc-RIBs, Adj-RIB-Ins, kernel tables, announced wire bytes — the
    same canonicalization the differential harness uses), stage the
    ChangeSet through the ordinary toolkit primitives, let the platform
    settle, then **re-verify**: the live invariant catalog, the
    control-plane enforcer's violation level, and the predicted export
    diff against what external neighbor speakers actually hold.
``commit`` / ``auto-revert``
    Clean re-verification commits.  Any breach rolls the platform back
    to the recorded snapshot and re-fingerprints it; ``revert_clean``
    reports whether the restored state is byte-identical.

Every transition emits an :class:`~repro.telemetry.IntentEvent` through
the monitoring station, so the BMP feed shows configuration changes
next to the session churn they cause.  The state machine::

    PLANNED ──apply──▶ APPLYING ──verify ok──▶ COMMITTED ──revert──▶ REVERTED
       │                   │
       │                   └──verify breach──▶ REVERTED (automatic)
       └──apply, plan not clean, no force──▶ REJECTED

``apply`` also consults the overload layer (§6i): when a touched PoP's
health watchdog reports *critical*, the plan is rejected outright —
``force`` does not override the health gate, because staging more
configuration into an overloaded PoP can only deepen the overload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.bgp.attributes import Community
from repro.bgp.messages import UpdateMessage
from repro.conformance.differential import (
    attr_fingerprint,
    loc_rib_snapshot,
    route_fingerprint,
)
from repro.conformance.invariants import ConformanceContext, run_invariants
from repro.intent.changeset import ChangeOp, ChangeSet, parse_community
from repro.intent.dryrun import DryRunEvaluator, DryRunReport, _parse_prefix
from repro.telemetry.station import IntentEvent

__all__ = [
    "IntentController",
    "IntentPlan",
    "IntentRecord",
]


@dataclass
class IntentPlan:
    """A planned (not yet applied) transaction."""

    intent_id: str
    changeset: ChangeSet
    report: DryRunReport
    created: float

    @property
    def digest(self) -> str:
        return self.report.digest


@dataclass(frozen=True)
class IntentRecord:
    """One entry in the intent history."""

    intent_id: str
    digest: str
    phase: str
    detail: str
    time: float
    breaches: tuple[str, ...] = ()
    revert_clean: Optional[bool] = None

    def format(self) -> str:
        line = (f"{self.time:10.2f}  {self.intent_id}  {self.digest}  "
                f"{self.phase:<9}  {self.detail}")
        for breach in self.breaches:
            line += f"\n{'':12}breach: {breach}"
        if self.revert_clean is not None:
            verdict = "clean" if self.revert_clean else "DIRTY"
            line += f"\n{'':12}revert: {verdict}"
        return line


@dataclass
class _Snapshot:
    """Restorable pre-apply state plus its structural fingerprint."""

    fingerprint: bytes
    # client -> pop -> {prefix: localized route} (the exact announced
    # routes, replayed verbatim on revert).
    announced: dict[str, dict[str, dict]] = field(default_factory=dict)
    # client -> the PoPs its tunnel was up at.
    connected: dict[str, tuple[str, ...]] = field(default_factory=dict)


class IntentController:
    """Drives ChangeSets through the transaction state machine."""

    def __init__(
        self,
        scheduler,
        platform,
        clients: Mapping[str, object],
        neighbor_speakers: Optional[Mapping[str, object]] = None,
        neighbor_pops: Optional[Mapping[str, str]] = None,
        telemetry=None,
        settle_time: float = 15.0,
    ) -> None:
        self.scheduler = scheduler
        self.platform = platform
        self.clients = dict(clients)
        self.neighbor_speakers = dict(neighbor_speakers or {})
        self.neighbor_pops = dict(neighbor_pops or {})
        self.telemetry = telemetry
        self.settle_time = settle_time
        self.evaluator = DryRunEvaluator(platform, self.clients)
        self.plans: dict[str, IntentPlan] = {}
        self.history: list[IntentRecord] = []
        self._phases: dict[str, str] = {}
        self._snapshots: dict[str, _Snapshot] = {}
        self._ids = itertools.count(1)

    # -- planning ----------------------------------------------------------

    def plan(self, changeset: ChangeSet) -> IntentPlan:
        """Dry-run ``changeset``; never touches the live platform."""
        changeset.validate()
        report = self.evaluator.evaluate(changeset)
        intent_id = f"intent-{next(self._ids):04d}"
        plan = IntentPlan(
            intent_id=intent_id,
            changeset=changeset,
            report=report,
            created=self.scheduler.now,
        )
        self.plans[intent_id] = plan
        self._phases[intent_id] = "planned"
        detail = (
            f"{len(changeset.ops)} op(s), "
            f"{'clean' if report.ok else 'not clean'}, "
            f"{len(report.changed_neighbors())} neighbor(s) affected"
        )
        self._record(plan, "planned", detail)
        return plan

    def phase(self, intent_id: str) -> Optional[str]:
        return self._phases.get(intent_id)

    # -- applying ----------------------------------------------------------

    def apply(self, plan, force: bool = False) -> IntentRecord:
        """Stage the plan, re-verify live, commit or auto-revert.

        ``force`` applies even when the dry run predicted trouble — the
        re-verification and auto-revert still guard the platform, which
        is exactly how the revert path is exercised end to end.
        """
        plan = self._resolve(plan)
        phase = self._phases.get(plan.intent_id)
        if phase != "planned":
            raise ValueError(
                f"{plan.intent_id} is {phase}; only a planned intent "
                "can be applied"
            )
        if plan.changeset.is_empty():
            self._phases[plan.intent_id] = "committed"
            return self._record(
                plan, "committed", "empty ChangeSet: no-op commit"
            )
        critical = self._critical_pops(plan.changeset)
        if critical:
            # The health gate is not forceable: a critical PoP is
            # already shedding or has a source quarantined, and staging
            # more configuration into it can only deepen the overload
            # (§6i).  Heal first, then re-apply.
            self._phases[plan.intent_id] = "rejected"
            return self._record(
                plan, "rejected",
                f"PoP(s) in critical health: {', '.join(critical)} "
                "(heal before applying; the gate ignores force)",
            )
        if not plan.report.ok and not force:
            self._phases[plan.intent_id] = "rejected"
            return self._record(
                plan, "rejected",
                "dry run predicted breaches (use force to apply anyway)",
            )
        snapshot = self._snapshot()
        self._snapshots[plan.intent_id] = snapshot
        baseline_violations = self._violation_level()
        breaches: list[str] = []
        try:
            self._stage(plan.changeset)
        except Exception as exc:  # staging must never crash the platform
            breaches.append(f"staging failed: {exc}")
        self._settle()
        self._record(plan, "applied", "staged; re-verifying", update=False)
        breaches.extend(self._verify(plan, baseline_violations))
        if not breaches:
            self._phases[plan.intent_id] = "committed"
            return self._record(
                plan, "committed",
                "re-verification clean: invariants hold, exports match "
                "prediction",
            )
        self._phases[plan.intent_id] = "reverted"
        revert_clean = self._revert_to(snapshot)
        return self._record(
            plan, "reverted",
            f"auto-revert after {len(breaches)} breach(es)",
            breaches=tuple(breaches), revert_clean=revert_clean,
        )

    def revert(self, plan) -> IntentRecord:
        """Roll a committed intent back to its pre-apply snapshot.

        Idempotent: reverting an already-reverted (or never-applied)
        intent is a no-op that reports the current phase.
        """
        plan = self._resolve(plan)
        phase = self._phases.get(plan.intent_id)
        if phase != "committed":
            return self._record(
                plan, phase or "unknown",
                f"nothing to revert (intent is {phase})", update=False,
            )
        snapshot = self._snapshots[plan.intent_id]
        self._phases[plan.intent_id] = "reverted"
        revert_clean = self._revert_to(snapshot)
        return self._record(
            plan, "reverted", "operator revert",
            revert_clean=revert_clean,
        )

    def _critical_pops(self, changeset: ChangeSet) -> list[str]:
        """PoPs the changeset touches whose health watchdog is CRITICAL.

        An op with an empty ``pops`` tuple targets every connected PoP,
        so it is gated by every critical PoP on the platform.
        """
        from repro.overload.watchdog import CRITICAL

        touched: set[str] = set()
        touches_all = False
        for op in changeset.ops:
            if op.kind in ("connect", "disconnect"):
                touched.add(op.pop)
            elif op.pops:
                touched.update(op.pops)
            else:
                touches_all = True
        critical = []
        for name in sorted(self.platform.pops):
            watchdog = getattr(self.platform.pops[name], "watchdog", None)
            if watchdog is None or watchdog.state != CRITICAL:
                continue
            if touches_all or name in touched:
                critical.append(name)
        return critical

    # -- staging (ordinary toolkit primitives) -----------------------------

    def _stage(self, changeset: ChangeSet) -> None:
        for op in changeset.ops:
            client = self.clients[op.experiment]
            self._stage_op(client, op)

    def _stage_op(self, client, op: ChangeOp) -> None:
        if op.kind == "connect":
            client.openvpn_up(op.pop)
            client.bird_start(op.pop)
            return
        if op.kind == "disconnect":
            client.openvpn_down(op.pop)
            return
        prefix = _parse_prefix(op.prefix)
        if prefix is None:
            raise ValueError(f"malformed prefix {op.prefix!r}")
        pops = list(op.pops) if op.pops else None
        if op.kind == "withdraw":
            client.withdraw(prefix, pops=pops)
            return
        communities = []
        for text in op.communities:
            parsed = parse_community(text)
            if parsed is None:
                raise ValueError(f"malformed community {text!r}")
            communities.append(Community(parsed[0], parsed[1]))
        # "announce" and "set-communities" stage identically: the client
        # re-announce replaces the previous attributes on the wire.
        client.announce(
            prefix, pops=pops, communities=communities,
            prepend=op.prepend, poison=list(op.poison),
        )

    # -- re-verification ---------------------------------------------------

    def _verify(self, plan: IntentPlan,
                baseline_violations: int) -> list[str]:
        breaches: list[str] = []
        delta = self._violation_level() - baseline_violations
        if delta > 0:
            breaches.append(
                f"control-plane enforcer flagged {delta} new "
                "violation(s) during apply"
            )
        ctx = ConformanceContext.from_platform(
            self.platform, clients=self.clients,
            neighbor_speakers=self.neighbor_speakers,
            neighbor_pops=self.neighbor_pops,
        )
        for name, report in run_invariants(ctx).items():
            if not report.ok:
                detail = report.violations[0] if report.violations else ""
                breaches.append(f"invariant {name} violated: {detail}")
        breaches.extend(self._prediction_breaches(plan))
        return breaches

    def _prediction_breaches(self, plan: IntentPlan) -> list[str]:
        """Did the live platform do what the dry run predicted?"""
        breaches: list[str] = []
        for neighbor_name in sorted(self.neighbor_speakers):
            speaker = self.neighbor_speakers[neighbor_name]
            pop_name = self.neighbor_pops.get(neighbor_name)
            if pop_name is None:
                continue
            diff = plan.report.diffs.get(f"{pop_name}/{neighbor_name}")
            if diff is None or diff.is_empty():
                continue
            for change in diff.added + diff.changed:
                prefix = _parse_prefix(change.prefix)
                best = speaker.best_route(prefix)
                if best is None:
                    breaches.append(
                        f"{neighbor_name}: predicted export of "
                        f"{change.prefix} was not observed"
                    )
                elif attr_fingerprint(best.attributes) != change.fingerprint:
                    breaches.append(
                        f"{neighbor_name}: observed export of "
                        f"{change.prefix} differs from the prediction"
                    )
            for change in diff.removed:
                prefix = _parse_prefix(change.prefix)
                if speaker.best_route(prefix) is not None:
                    breaches.append(
                        f"{neighbor_name}: predicted removal of "
                        f"{change.prefix} was not observed"
                    )
        return breaches

    def _violation_level(self) -> int:
        level = 0
        for pop in self.platform.pops.values():
            enforcer = getattr(pop, "control_enforcer", None)
            if enforcer is not None:
                level += len(enforcer.violations)
            level += pop.node.counters.get("announcements_blocked", 0)
            level += pop.node.counters.get("enforcer_failures", 0)
        return level

    # -- snapshot / revert -------------------------------------------------

    def _snapshot(self) -> _Snapshot:
        announced: dict[str, dict[str, dict]] = {}
        connected: dict[str, tuple[str, ...]] = {}
        for name in sorted(self.clients):
            client = self.clients[name]
            connected[name] = tuple(sorted(client.pops))
            announced[name] = {
                pop_name: dict(view.announced)
                for pop_name, view in client.pops.items()
            }
        return _Snapshot(
            fingerprint=self._fingerprint(),
            announced=announced,
            connected=connected,
        )

    def _fingerprint(self) -> bytes:
        """DifferentialHarness-style structural canonicalization.

        Covers client Loc-RIBs and announcements, every PoP's
        per-neighbor Adj-RIB-In and kernel tables, the experiment
        attachment state, and the announced wire bytes toward every
        established neighbor.  Monotonic counters and violation logs
        are deliberately excluded — they record history, not state.
        """
        clients_part = []
        for name in sorted(self.clients):
            client = self.clients[name]
            views = []
            for pop_name in sorted(client.pops):
                view = client.pops[pop_name]
                established = (
                    view.session is not None and view.session.established
                )
                loc_rib = sorted(
                    (str(r.prefix), attr_fingerprint(r.attributes))
                    for r in view.routes.values()
                )
                announcements = sorted(
                    (str(prefix), route_fingerprint(route))
                    for prefix, route in view.announced.items()
                )
                views.append(
                    (pop_name, established, tuple(loc_rib),
                     tuple(announcements))
                )
            clients_part.append((name, tuple(views)))
        pops_part = []
        for pop_name in sorted(self.platform.pops):
            pop = self.platform.pops[pop_name]
            node = pop.node
            neighbors = []
            for label, neighbor in sorted(
                list(node.upstreams.items())
                + [(f"remote-gid{gid}", remote)
                   for gid, remote in node.remote_neighbors.items()]
            ):
                rib = sorted(
                    (str(prefix), repr(path_id),
                     attr_fingerprint(route.attributes))
                    for (prefix, path_id), route in neighbor.rib.items()
                )
                neighbors.append((label, tuple(rib)))
            experiments = []
            for exp_name in sorted(node.experiments):
                exp = node.experiments[exp_name]
                experiments.append((exp_name, tuple(sorted(
                    (str(prefix), repr(path_id), route_fingerprint(route))
                    for (prefix, path_id), route in exp.announced.items()
                ))))
            remote_exp = sorted(
                (str(prefix), route_fingerprint(route))
                for prefix, route in node.remote_exp_routes.items()
            )
            kernel = []
            for table_id in sorted(pop.stack.tables):
                table = pop.stack.tables[table_id]
                kernel.append((table_id, sorted(
                    (str(entry.prefix), str(entry.value.next_hop),
                     entry.value.out_iface)
                    for entry in table.entries()
                )))
            pops_part.append((
                pop_name, tuple(neighbors), tuple(experiments),
                tuple(remote_exp), tuple(kernel),
            ))
        wire_part = []
        for key, entries in sorted(self.evaluator.export_state().items()):
            frames = b"".join(
                UpdateMessage.announce([entries[prefix].route]).encode()
                for prefix in sorted(entries)
            )
            wire_part.append((key, frames))
        speakers_part = []
        for name in sorted(self.neighbor_speakers):
            speakers_part.append(
                (name, loc_rib_snapshot(self.neighbor_speakers[name]))
            )
        structure = (
            ("clients", tuple(clients_part)),
            ("pops", tuple(pops_part)),
            ("announced_wire", tuple(wire_part)),
            ("speakers", tuple(speakers_part)),
        )
        return repr(structure).encode()

    def _revert_to(self, snapshot: _Snapshot) -> bool:
        """Restore the snapshot; True if byte-identical afterwards."""
        newly_connected = False
        for name in sorted(self.clients):
            client = self.clients[name]
            saved = set(snapshot.connected.get(name, ()))
            current = set(client.pops)
            for pop_name in sorted(current - saved):
                self._guard(lambda: client.openvpn_down(pop_name))
            for pop_name in sorted(saved - current):
                if self._guard(lambda: client.openvpn_up(pop_name)):
                    self._guard(lambda: client.bird_start(pop_name))
                    newly_connected = True
        if newly_connected:
            self._settle()
        for name in sorted(self.clients):
            client = self.clients[name]
            for pop_name in sorted(snapshot.connected.get(name, ())):
                view = client.pops.get(pop_name)
                if view is None:
                    continue
                desired = snapshot.announced.get(name, {}).get(pop_name, {})
                current = dict(view.announced)
                for prefix in sorted(current, key=str):
                    if prefix not in desired:
                        self._guard(
                            lambda: client.withdraw(prefix, pops=[pop_name])
                        )
                for prefix in sorted(desired, key=str):
                    if current.get(prefix) != desired[prefix]:
                        self._guard(
                            lambda: client.replay_route(
                                pop_name, desired[prefix]
                            )
                        )
        self._settle()
        return self._fingerprint() == snapshot.fingerprint

    @staticmethod
    def _guard(action) -> bool:
        """Best-effort restore step: a dead session must not stop the
        rest of the rollback."""
        try:
            action()
            return True
        except Exception:
            return False

    # -- plumbing ----------------------------------------------------------

    def _settle(self) -> None:
        self.scheduler.run_for(self.settle_time)
        for _ in range(32):
            if not any(
                pop.node.shard_pending()
                for pop in self.platform.pops.values()
            ):
                break
            self.scheduler.run_for(1.0)

    def _resolve(self, plan) -> IntentPlan:
        if isinstance(plan, IntentPlan):
            return plan
        resolved = self.plans.get(plan)
        if resolved is None:
            raise KeyError(f"unknown intent {plan!r}")
        return resolved

    def _record(self, plan: IntentPlan, phase: str, detail: str,
                breaches: tuple[str, ...] = (),
                revert_clean: Optional[bool] = None,
                update: bool = True) -> IntentRecord:
        record = IntentRecord(
            intent_id=plan.intent_id,
            digest=plan.digest,
            phase=phase,
            detail=detail,
            time=self.scheduler.now,
            breaches=breaches,
            revert_clean=revert_clean,
        )
        if update:
            self.history.append(record)
        self._publish(plan, phase, detail)
        return record

    def _publish(self, plan: IntentPlan, phase: str, detail: str) -> None:
        if self.telemetry is None:
            return
        self.telemetry.station.publish(IntentEvent(
            peer=f"intent:{plan.intent_id}",
            time=self.scheduler.now,
            phase=phase,
            digest=plan.digest,
            detail=detail,
        ))

    def history_text(self) -> str:
        if not self.history:
            return "no intents recorded"
        return "\n".join(record.format() for record in self.history)
