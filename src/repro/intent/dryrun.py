"""Dry-run evaluation of a ChangeSet: predicted export diffs, offline.

The §3.2 design makes this possible: because control communities plus
the control-plane enforcer fully determine which experiment routes exit
through which neighbors, the complete per-neighbor export set is a
*function* of platform state — no live announcement is needed to know
what the wire would carry.  :class:`DryRunEvaluator` exploits that:

1. snapshot the announcement state (every experiment's accepted
   announcements at every PoP),
2. recompute the per-neighbor export sets functionally, sharing
   :meth:`VbgpNode.export_transform` and
   :func:`~repro.toolkit.client.build_announcement` with the live path,
3. simulate the ChangeSet against a *copy* of that state, probing the
   enforcer in its non-recording mode
   (:meth:`ControlPlaneEnforcer.check_routes` with ``record=False``),
4. recompute the export sets from the simulated state and diff, and
5. run the full five-invariant catalog over a simulated conformance
   context whose attachments and predicted neighbor speakers reflect
   the post-change state.

Nothing in the live platform moves: no session sends an UPDATE, no
enforcer counter increments, no rate-limit budget is consumed.  Two
consecutive evaluations of the same ChangeSet against the same platform
state produce byte-identical reports (:meth:`DryRunReport.to_bytes`),
which the determinism leg of the ``intent`` CI job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.bgp.attributes import Community, Route
from repro.bgp.messages import UpdateMessage
from repro.conformance.differential import attr_fingerprint
from repro.conformance.invariants import (
    ConformanceContext,
    InvariantReport,
    run_invariants,
)
from repro.intent.changeset import ChangeOp, ChangeSet, parse_community
from repro.netsim.addr import IPv4Prefix, IPv6Prefix
from repro.toolkit.client import ExperimentClient, build_announcement
from repro.vbgp.communities import ANNOUNCE_ASN, select_targets

__all__ = [
    "DryRunEvaluator",
    "DryRunReport",
    "ExportEntry",
    "NeighborDiff",
    "RouteChange",
]


def _parse_prefix(text: str):
    try:
        if ":" in text:
            return IPv6Prefix.parse(text)
        return IPv4Prefix.parse(text)
    except (ValueError, IndexError):
        return None


@dataclass(frozen=True)
class ExportEntry:
    """One route a neighbor would hold, with its wire footprint."""

    prefix: str
    route: Route
    fingerprint: tuple
    communities: tuple[str, ...]
    wire_bytes: int


@dataclass(frozen=True)
class RouteChange:
    """One per-prefix difference at a neighbor."""

    prefix: str
    change: str  # "added" | "removed" | "changed"
    communities: tuple[str, ...] = ()
    communities_added: tuple[str, ...] = ()
    communities_removed: tuple[str, ...] = ()
    wire_delta: int = 0
    fingerprint: tuple = ()

    def describe(self) -> str:
        line = f"{self.change[0]} {self.prefix}"
        if self.change == "changed":
            if self.communities_added:
                line += f" +[{','.join(self.communities_added)}]"
            if self.communities_removed:
                line += f" -[{','.join(self.communities_removed)}]"
        elif self.communities:
            line += f" [{','.join(self.communities)}]"
        line += f" ({self.wire_delta:+d}B)"
        return line


@dataclass(frozen=True)
class NeighborDiff:
    """Predicted export changes at one neighbor (``pop/name``)."""

    neighbor: str
    added: tuple[RouteChange, ...] = ()
    removed: tuple[RouteChange, ...] = ()
    changed: tuple[RouteChange, ...] = ()
    wire_before: int = 0
    wire_after: int = 0

    @property
    def wire_delta(self) -> int:
        return self.wire_after - self.wire_before

    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def changes(self) -> tuple[RouteChange, ...]:
        return self.added + self.removed + self.changed

    def canonical(self) -> tuple:
        return (
            self.neighbor,
            tuple(
                (c.prefix, c.change, c.communities, c.communities_added,
                 c.communities_removed, c.wire_delta, c.fingerprint)
                for c in self.changes()
            ),
            self.wire_before,
            self.wire_after,
        )

    def describe(self) -> str:
        lines = [
            f"{self.neighbor}: +{len(self.added)} -{len(self.removed)} "
            f"~{len(self.changed)} (wire {self.wire_delta:+d}B, "
            f"{self.wire_before} -> {self.wire_after})"
        ]
        lines.extend(f"    {c.describe()}" for c in self.changes())
        return "\n".join(lines)


@dataclass
class DryRunReport:
    """Everything a plan predicts about one ChangeSet."""

    digest: str
    diffs: dict[str, NeighborDiff] = field(default_factory=dict)
    invariants: dict[str, InvariantReport] = field(default_factory=dict)
    rejections: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.rejections and all(
            report.ok for report in self.invariants.values()
        )

    def changed_neighbors(self) -> list[str]:
        return sorted(
            name for name, diff in self.diffs.items() if not diff.is_empty()
        )

    def to_bytes(self) -> bytes:
        """Canonical serialization: same prediction, same bytes."""
        structure = (
            ("changeset", self.digest),
            ("rejections", tuple(self.rejections)),
            ("diffs", tuple(
                self.diffs[name].canonical()
                for name in sorted(self.diffs)
            )),
            ("invariants", tuple(
                (name, report.ok, report.checked, report.violation_count,
                 tuple(report.violations))
                for name, report in sorted(self.invariants.items())
            )),
        )
        return repr(structure).encode()

    def format(self) -> str:
        lines = [f"plan {self.digest}: "
                 f"{'clean' if self.ok else 'NOT CLEAN'}"]
        for reason in self.rejections:
            lines.append(f"  rejected: {reason}")
        changed = self.changed_neighbors()
        if not changed:
            lines.append("  no export changes at any neighbor")
        for name in changed:
            lines.append("  " + self.diffs[name].describe())
        for name in sorted(self.invariants):
            report = self.invariants[name]
            status = "ok" if report.ok else "VIOLATED"
            lines.append(f"  invariant {name}: {status} "
                         f"(checked={report.checked})")
            lines.extend(f"    - {v}" for v in report.violations)
        return "\n".join(lines)


# -- simulated conformance views -------------------------------------------


class _Proxy:
    """Read-only view of a live object with a few attributes overridden."""

    def __init__(self, target, **overrides) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_overrides", overrides)

    def __getattr__(self, name):
        overrides = object.__getattribute__(self, "_overrides")
        if name in overrides:
            return overrides[name]
        return getattr(object.__getattribute__(self, "_target"), name)


class _PredictedSpeaker:
    """Duck-types ``BgpSpeaker.best_route`` over a predicted export set."""

    def __init__(self, exports: Mapping[str, ExportEntry]) -> None:
        self._exports = dict(exports)

    def best_route(self, prefix) -> Optional[Route]:
        entry = self._exports.get(str(prefix))
        return None if entry is None else entry.route


class DryRunEvaluator:
    """Predict what a ChangeSet would do, without touching the platform.

    ``clients`` maps experiment name → :class:`ExperimentClient`.  The
    optional ``extra_context`` callbacks let the controller reuse one
    evaluator for both planning and live re-verification.
    """

    def __init__(
        self,
        platform,
        clients: Mapping[str, ExperimentClient],
    ) -> None:
        self.platform = platform
        self.clients = dict(clients)

    # -- state extraction --------------------------------------------------

    def announcement_state(self) -> dict:
        """``{pop: {experiment: {(prefix_str, path_id): route}}}``.

        Copied from the live attachments' accepted announcements; the
        simulation mutates the copy, never the live dicts.
        """
        state: dict = {}
        for pop_name in sorted(self.platform.pops):
            node = self.platform.pops[pop_name].node
            per_exp: dict = {}
            for exp_name in sorted(node.experiments):
                exp = node.experiments[exp_name]
                per_exp[exp_name] = {
                    (str(prefix), path_id): route
                    for (prefix, path_id), route in exp.announced.items()
                }
            state[pop_name] = per_exp
        return state

    def export_state(
        self, state: Optional[dict] = None,
        detached: Iterable[tuple[str, str]] = (),
    ) -> dict[str, dict[str, ExportEntry]]:
        """Per-neighbor export sets, keyed ``pop/neighbor`` then prefix.

        Functional recomputation of the live export rules: a local
        announcement exits through the neighbors its communities select
        (§3.2.1); an announcement made at another PoP additionally needs
        an explicit whitelist community *and* backbone connectivity to
        exit here (§4.4).  Local announcements win prefix collisions,
        mirroring arrival order on the live path.
        """
        if state is None:
            state = self.announcement_state()
        detached = set(detached)
        exports: dict[str, dict[str, ExportEntry]] = {}
        for pop_name in sorted(state):
            pop = self.platform.pops.get(pop_name)
            if pop is None:
                continue
            node = pop.node
            candidates = [
                (n.virtual.global_id, node.pop_id)
                for n in node.upstreams.values()
            ]
            live_neighbors = [
                (name, node.upstreams[name])
                for name in sorted(node.upstreams)
                if node.upstreams[name].session is not None
                and node.upstreams[name].session.established
            ]
            for name, _neighbor in live_neighbors:
                exports.setdefault(f"{pop_name}/{name}", {})
            # Local experiment announcements.
            for exp_name in sorted(state[pop_name]):
                if (pop_name, exp_name) in detached:
                    continue
                announced = state[pop_name][exp_name]
                for key in sorted(announced, key=lambda k: (k[0], repr(k[1]))):
                    route = announced[key]
                    targets = select_targets(route, candidates)
                    for name, neighbor in live_neighbors:
                        if neighbor.virtual.global_id not in targets:
                            continue
                        entry = self._entry(node, route)
                        exports[f"{pop_name}/{name}"][entry.prefix] = entry
            # Remote experiment announcements, carried over the backbone.
            for origin_name in sorted(state):
                if origin_name == pop_name:
                    continue
                origin = self.platform.pops.get(origin_name)
                if origin is None:
                    continue
                carried = self._carried_routes(
                    origin.node, node, state[origin_name], detached,
                    origin_name,
                )
                for route in carried:
                    if not any(
                        c.asn == ANNOUNCE_ASN for c in route.communities
                    ):
                        continue
                    targets = select_targets(route, candidates)
                    for name, neighbor in live_neighbors:
                        if neighbor.virtual.global_id not in targets:
                            continue
                        entry = self._entry(node, route)
                        exports[f"{pop_name}/{name}"].setdefault(
                            entry.prefix, entry
                        )
        return exports

    def _carried_routes(self, origin_node, target_node, per_exp: dict,
                        detached, origin_name: str) -> list[Route]:
        """Routes ``origin_node`` would carry to ``target_node`` (§4.4)."""
        if origin_node.backbone_address is None:
            return []
        session = origin_node.backbone_peers.get(target_node.name)
        if session is None or not session.established:
            return []
        carried = []
        for exp_name in sorted(per_exp):
            if (origin_name, exp_name) in detached:
                continue
            announced = per_exp[exp_name]
            for key in sorted(announced, key=lambda k: (k[0], repr(k[1]))):
                carried.append(
                    origin_node._backbone_experiment_route(announced[key])
                )
        return carried

    def _entry(self, node, route: Route) -> ExportEntry:
        export = node.export_transform(route)
        wire = len(UpdateMessage.announce([export]).encode())
        return ExportEntry(
            prefix=str(export.prefix),
            route=export,
            fingerprint=attr_fingerprint(export.attributes),
            communities=tuple(
                sorted(str(c) for c in export.communities)
            ),
            wire_bytes=wire,
        )

    # -- ChangeSet simulation ----------------------------------------------

    def evaluate(self, changeset: ChangeSet) -> DryRunReport:
        changeset.validate()
        report = DryRunReport(digest=changeset.digest())
        state = self.announcement_state()
        before = self.export_state(state)
        detached: set[tuple[str, str]] = set()
        attached: set[tuple[str, str]] = set()
        pending: dict[tuple[str, str, str], int] = {}
        for op in changeset.ops:
            self._simulate_op(op, state, detached, attached, pending,
                              report.rejections)
        after = self.export_state(state, detached=detached)
        report.diffs = self._diff(before, after)
        report.invariants = self._simulated_invariants(
            state, detached, after
        )
        return report

    def _simulate_op(self, op: ChangeOp, state: dict, detached: set,
                     attached: set, pending: dict,
                     rejections: list[str]) -> None:
        client = self.clients.get(op.experiment)
        if client is None:
            rejections.append(
                f"{op.describe()}: no connected client for experiment "
                f"{op.experiment!r}"
            )
            return
        if op.kind in ("connect", "disconnect"):
            self._simulate_mux(op, client, state, detached, attached,
                               rejections)
            return
        prefix = _parse_prefix(op.prefix)
        if prefix is None:
            rejections.append(f"{op.describe()}: malformed prefix")
            return
        pops = list(op.pops) if op.pops else sorted(client.pops)
        if not pops:
            rejections.append(
                f"{op.describe()}: experiment is connected nowhere"
            )
            return
        for pop_name in pops:
            self._simulate_at_pop(op, client, prefix, pop_name, state,
                                  detached, attached, pending, rejections)

    def _simulate_mux(self, op: ChangeOp, client, state: dict,
                      detached: set, attached: set,
                      rejections: list[str]) -> None:
        key = (op.pop, op.experiment)
        if op.pop not in self.platform.pops:
            rejections.append(f"{op.describe()}: unknown PoP")
            return
        connected = (
            op.pop in client.pops and key not in detached
        ) or key in attached
        if op.kind == "connect":
            if connected:
                rejections.append(f"{op.describe()}: tunnel already up")
                return
            attached.add(key)
            detached.discard(key)
            state.setdefault(op.pop, {}).setdefault(op.experiment, {})
        else:
            # openvpn_down on a down tunnel is a silent no-op live, and
            # so is the simulated disconnect.
            if connected:
                detached.add(key)
                attached.discard(key)
                state.get(op.pop, {}).get(op.experiment, {}).clear()

    def _simulate_at_pop(self, op: ChangeOp, client, prefix, pop_name: str,
                         state: dict, detached: set, attached: set,
                         pending: dict, rejections: list[str]) -> None:
        key = (pop_name, op.experiment)
        if key in detached:
            rejections.append(
                f"{op.describe()} @ {pop_name}: attachment is being "
                "disconnected by this ChangeSet"
            )
            return
        view = client.pops.get(pop_name)
        if key in attached:
            # A session brought up by this very ChangeSet will be
            # freshly established once applied; announcing over it in
            # the same transaction stays unpredictable (the session
            # handshake races the announcement), so reject it.
            rejections.append(
                f"{op.describe()} @ {pop_name}: session is being "
                "connected by this ChangeSet; split into two ChangeSets"
            )
            return
        if view is None:
            rejections.append(
                f"{op.describe()} @ {pop_name}: experiment is not "
                "connected at this PoP"
            )
            return
        if view.session is None or not view.session.established:
            rejections.append(
                f"{op.describe()} @ {pop_name}: BGP session is not up"
            )
            return
        announced = state.setdefault(pop_name, {}).setdefault(
            op.experiment, {}
        )
        # Client announcements travel over an ADD-PATH session whose
        # wire format encodes an unset path id as 0, so the attachment
        # keys them as ``(prefix, 0)``.
        sim_key = (str(prefix), 0)
        if op.kind == "withdraw":
            # Mirrors the live path: withdrawals are not enforced and
            # consume no update budget (the client only sends the one
            # withdraw for the un-pathed announcement).
            announced.pop(sim_key, None)
            return
        if op.kind == "set-communities" and sim_key not in announced:
            rejections.append(
                f"{op.describe()} @ {pop_name}: prefix is not announced "
                "here (set-communities edits an existing announcement)"
            )
            return
        communities = []
        for text in op.communities:
            parsed = parse_community(text)
            if parsed is None:
                rejections.append(
                    f"{op.describe()}: malformed community {text!r}"
                )
                return
            communities.append(Community(parsed[0], parsed[1]))
        route = build_announcement(
            prefix,
            origin=client.asn,
            platform_asn=self.platform.platform_asn,
            communities=communities,
            prepend=op.prepend,
            poison=op.poison,
        ).with_next_hop(view.connection.tunnel.client_ip)
        accepted = self._probe_enforcer(
            op, pop_name, route, pending, rejections
        )
        if accepted is not None:
            announced[sim_key] = accepted.with_path_id(0)

    def _probe_enforcer(self, op: ChangeOp, pop_name: str, route: Route,
                        pending: dict,
                        rejections: list[str]) -> Optional[Route]:
        """Run the real enforcer in non-recording mode; None = rejected."""
        pop = self.platform.pops[pop_name]
        enforcer = pop.control_enforcer
        if enforcer is None:
            return route
        budget_key = (op.experiment, str(route.prefix), pop_name)
        offset = pending.get(budget_key, 0)
        if offset and not enforcer.state.would_accept(
            op.experiment, route.prefix, pop_name,
            enforcer.scheduler.now, pending=offset,
        ):
            rejections.append(
                f"{op.describe()} @ {pop_name}: update rate limit would "
                "be exceeded by earlier ops in this ChangeSet"
            )
            return None
        outcome = enforcer.check_routes(
            op.experiment, [route], pop_name, record=False
        )
        if not outcome.accepted:
            reasons = "; ".join(
                v.reason for v in outcome.violations
            ) or "rejected by enforcer"
            rejections.append(f"{op.describe()} @ {pop_name}: {reasons}")
            return None
        pending[budget_key] = offset + 1
        return outcome.accepted[0]

    # -- simulated invariant evaluation ------------------------------------

    def _simulated_invariants(
        self, state: dict, detached: set,
        after: dict[str, dict[str, ExportEntry]],
    ) -> dict[str, InvariantReport]:
        sim_pops = {}
        for pop_name, pop in self.platform.pops.items():
            node = pop.node
            experiments = {}
            for exp_name, exp in node.experiments.items():
                if (pop_name, exp_name) in detached:
                    continue
                announced = dict(
                    state.get(pop_name, {}).get(exp_name, {})
                )
                experiments[exp_name] = _Proxy(exp, announced=announced)
            remote = self._simulated_remote(pop_name, node, state, detached)
            sim_node = _Proxy(
                node, experiments=experiments, remote_exp_routes=remote
            )
            sim_pops[pop_name] = _Proxy(pop, node=sim_node)
        speakers, speaker_pops = self._predicted_speakers(after)
        allocated = {}
        for name in self.clients:
            lease = self.platform.resources.lease_for(name)
            allocated[name] = (
                frozenset(lease.prefixes) if lease else frozenset()
            )
        ctx = ConformanceContext(
            pops=sim_pops,
            clients=self.clients,
            allocated=allocated,
            neighbor_speakers=speakers,
            neighbor_pops=speaker_pops,
        )
        return run_invariants(ctx)

    def _simulated_remote(self, pop_name: str, node, state: dict,
                          detached: set) -> dict:
        remote: dict = {}
        for origin_name in sorted(state):
            if origin_name == pop_name:
                continue
            origin = self.platform.pops.get(origin_name)
            if origin is None:
                continue
            for route in self._carried_routes(
                origin.node, node, state[origin_name], detached,
                origin_name,
            ):
                remote[route.prefix] = route
        return remote

    def _predicted_speakers(
        self, after: dict[str, dict[str, ExportEntry]],
    ) -> tuple[dict, dict]:
        """One predicted speaker per *uniquely named* upstream neighbor.

        ``community_propagation`` resolves neighbors by bare name, so a
        name used at two PoPs cannot be modeled; such neighbors are
        skipped (none of the platform builders produce duplicates).
        """
        names: dict[str, list[str]] = {}
        for key in after:
            pop_name, _, neighbor = key.partition("/")
            names.setdefault(neighbor, []).append(pop_name)
        speakers: dict = {}
        speaker_pops: dict = {}
        for neighbor, pops in names.items():
            if len(pops) != 1:
                continue
            speakers[neighbor] = _PredictedSpeaker(
                after[f"{pops[0]}/{neighbor}"]
            )
            speaker_pops[neighbor] = pops[0]
        return speakers, speaker_pops

    # -- diffing -----------------------------------------------------------

    def _diff(
        self,
        before: dict[str, dict[str, ExportEntry]],
        after: dict[str, dict[str, ExportEntry]],
    ) -> dict[str, NeighborDiff]:
        diffs: dict[str, NeighborDiff] = {}
        for name in sorted(set(before) | set(after)):
            old = before.get(name, {})
            new = after.get(name, {})
            added, removed, changed = [], [], []
            for prefix in sorted(set(old) | set(new)):
                old_entry = old.get(prefix)
                new_entry = new.get(prefix)
                if old_entry is None and new_entry is not None:
                    added.append(RouteChange(
                        prefix=prefix, change="added",
                        communities=new_entry.communities,
                        wire_delta=new_entry.wire_bytes,
                        fingerprint=new_entry.fingerprint,
                    ))
                elif new_entry is None and old_entry is not None:
                    removed.append(RouteChange(
                        prefix=prefix, change="removed",
                        communities=old_entry.communities,
                        wire_delta=-old_entry.wire_bytes,
                        fingerprint=old_entry.fingerprint,
                    ))
                elif (
                    old_entry is not None and new_entry is not None
                    and old_entry.fingerprint != new_entry.fingerprint
                ):
                    old_comm = set(old_entry.communities)
                    new_comm = set(new_entry.communities)
                    changed.append(RouteChange(
                        prefix=prefix, change="changed",
                        communities=new_entry.communities,
                        communities_added=tuple(sorted(new_comm - old_comm)),
                        communities_removed=tuple(sorted(old_comm - new_comm)),
                        wire_delta=(
                            new_entry.wire_bytes - old_entry.wire_bytes
                        ),
                        fingerprint=new_entry.fingerprint,
                    ))
            diffs[name] = NeighborDiff(
                neighbor=name,
                added=tuple(added),
                removed=tuple(removed),
                changed=tuple(changed),
                wire_before=sum(e.wire_bytes for e in old.values()),
                wire_after=sum(e.wire_bytes for e in new.values()),
            )
        return diffs
