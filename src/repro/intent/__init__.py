"""repro.intent — transactional configuration changes (§5, DESIGN.md §6h).

The intent layer turns raw toolkit calls into guarded transactions:

* :mod:`repro.intent.changeset` — the declarative :class:`ChangeSet`
  model with canonical serialization and stable digests,
* :mod:`repro.intent.dryrun` — offline evaluation: predicted
  per-neighbor export diffs plus the five-invariant catalog over a
  simulated post-change state, without touching the live platform,
* :mod:`repro.intent.controller` — ``plan → apply → re-verify →
  commit | auto-revert`` with snapshot rollback and lifecycle events
  through the telemetry hub.
"""

from __future__ import annotations

from repro.intent.changeset import (
    ChangeOp,
    ChangeSet,
    announce_op,
    connect_op,
    disconnect_op,
    parse_community,
    set_communities_op,
    withdraw_op,
)
from repro.intent.controller import (
    IntentController,
    IntentPlan,
    IntentRecord,
)
from repro.intent.dryrun import (
    DryRunEvaluator,
    DryRunReport,
    ExportEntry,
    NeighborDiff,
    RouteChange,
)

__all__ = [
    "ChangeOp",
    "ChangeSet",
    "DryRunEvaluator",
    "DryRunReport",
    "ExportEntry",
    "IntentController",
    "IntentPlan",
    "IntentRecord",
    "NeighborDiff",
    "RouteChange",
    "announce_op",
    "connect_op",
    "disconnect_op",
    "parse_community",
    "set_communities_op",
    "withdraw_op",
]
