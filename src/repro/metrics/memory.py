"""Route memory accounting (Figure 6a).

The paper measures BIRD's routing-table memory as a function of known
routes, in three configurations:

* **control plane** — a single global RIB (≈327 B/route in BIRD),
* **per-interconnection data plane** — adds one kernel FIB entry per known
  route (vBGP keeps one table per neighbor so experiments can choose routes
  per packet),
* **per-interconnection data plane with default** — additionally keeps the
  router's own best-path table synchronized to a kernel FIB (only needed if
  the vBGP node also routed production traffic).

Our accounting walks the *actual* data structures (RIB routes, kernel table
entries) and applies a per-object byte model calibrated to the paper's
327 B/route figure, so linearity and the configuration ordering emerge from
real state rather than from a formula over the route count.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable

from repro.bgp.attributes import Route
from repro.netsim.stack import NetworkStack

# Calibrated byte model. A typical Internet route (4-hop AS path, a couple
# of communities) lands at ≈327 bytes, matching the paper's measurement.
ROUTE_BASE_BYTES = 287  # rte + rta + net structures in BIRD
AS_HOP_BYTES = 8  # per ASN in the path
COMMUNITY_BYTES = 4
LARGE_COMMUNITY_BYTES = 12
UNKNOWN_ATTR_BASE_BYTES = 16

FIB_ENTRY_BYTES = 192  # Linux fib_info + nexthop + trie node share
KERNEL_SYNC_BYTES = 129  # router-side shadow of a synchronized FIB entry


def route_memory_bytes(route: Route) -> int:
    """Bytes of RIB memory attributed to one stored route."""
    attrs = route.attributes
    total = ROUTE_BASE_BYTES
    total += AS_HOP_BYTES * len(attrs.as_path.asns)
    total += COMMUNITY_BYTES * len(attrs.communities)
    total += LARGE_COMMUNITY_BYTES * len(attrs.large_communities)
    for unknown in attrs.unknown:
        total += UNKNOWN_ATTR_BASE_BYTES + len(unknown.value)
    return total


def rib_memory(routes: Iterable[Route]) -> int:
    """Total RIB memory for an iterable of stored routes."""
    return sum(route_memory_bytes(route) for route in routes)


def fib_memory(stack: NetworkStack,
               tables: Iterable[int] | None = None) -> int:
    """Kernel FIB memory across the given tables (all tables by default)."""
    table_ids = list(tables) if tables is not None else list(stack.tables)
    total = 0
    for table_id in table_ids:
        table = stack.tables.get(table_id)
        if table is None:
            continue
        total += FIB_ENTRY_BYTES * len(table)
    return total


@dataclass(frozen=True)
class MemoryReport:
    """The three Figure 6a series, in bytes."""

    routes: int
    control_plane: int
    data_plane: int
    data_plane_with_default: int

    def as_megabytes(self) -> tuple[float, float, float]:
        scale = 1 / (1024 * 1024)
        return (
            self.control_plane * scale,
            self.data_plane * scale,
            self.data_plane_with_default * scale,
        )


def resident_bytes(obj: object) -> int:
    """Deep ``sys.getsizeof`` walk: actual Python-heap bytes held by
    ``obj``, counting every reachable object exactly once.

    Used by ``bench_fulltable_memory`` to compare Loc-RIB storage
    backends (§6g): unlike RSS or tracemalloc snapshots this is
    deterministic for a given object graph and interpreter version, so
    the ±25% bench gate holds across machines.  Shared objects (interned
    attributes, flyweight handles) are charged once — exactly the
    sharing the columnar layout exists to create.

    Callables, modules, and classes are skipped: a Loc-RIB holds a
    ``select`` closure whose captured world is not route storage.
    """
    seen: set[int] = set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        if callable(current) or isinstance(current, type(sys)):
            continue
        seen.add(id(current))
        total += sys.getsizeof(current)
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        else:
            attrs = getattr(current, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            slots = getattr(type(current), "__slots__", None)
            if slots:
                for name in slots:
                    value = getattr(current, name, None)
                    if value is not None:
                        stack.append(value)
    return total


def memory_report(routes: list[Route],
                  fib_entries: int | None = None) -> MemoryReport:
    """Build the Figure 6a triple for a set of known routes.

    ``fib_entries`` defaults to one per route (vBGP installs every known
    route into some per-neighbor table).
    """
    control = rib_memory(routes)
    entries = len(routes) if fib_entries is None else fib_entries
    data_plane = control + FIB_ENTRY_BYTES * entries
    with_default = data_plane + KERNEL_SYNC_BYTES * len(
        {route.prefix for route in routes}
    )
    return MemoryReport(
        routes=len(routes),
        control_plane=control,
        data_plane=data_plane,
        data_plane_with_default=with_default,
    )
