"""TCP throughput estimation for backbone measurements (§6).

Two tools reproduce the paper's iperf3 measurements across PoP pairs:

* the event-driven simulated TCP (:func:`repro.netsim.tcp.run_iperf`) for
  full-fidelity transfers over modeled links, and
* the Mathis model here, used to cross-check the simulation and to sweep
  the full PoP mesh cheaply.
"""

from __future__ import annotations

import math

MATHIS_CONSTANT = math.sqrt(3 / 2)


def estimate_tcp_throughput(
    rtt_seconds: float,
    loss_rate: float,
    bottleneck_bps: float,
    mss_bytes: int = 1448,
    efficiency: float = 0.95,
) -> float:
    """Steady-state TCP throughput in bits/second.

    Uses the Mathis et al. model ``MSS/RTT * C/sqrt(p)`` capped by the
    bottleneck capacity (scaled by protocol ``efficiency``). With zero
    measured loss, a nominal 1e-8 is assumed (transient queue drops).
    """
    if rtt_seconds <= 0:
        raise ValueError("RTT must be positive")
    loss = max(loss_rate, 1e-8)
    mathis_bps = (mss_bytes * 8 / rtt_seconds) * (MATHIS_CONSTANT / math.sqrt(loss))
    return min(bottleneck_bps * efficiency, mathis_bps)
