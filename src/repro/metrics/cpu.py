"""CPU utilization accounting (Figure 6b).

The paper plots BIRD's CPU utilization against the rate of BGP updates
processed, for three filter configurations (accept-all, single-router vBGP,
multi-router vBGP). We measure the *actual* per-update processing cost of
our filter implementations with ``time.perf_counter`` and convert a target
update rate into utilization of one core:

    utilization% = rate × seconds_per_update × 100

Linearity in the rate and the ordering of the three configurations are
properties of the real filter code; absolute percentages depend on the host
(the paper's §6 numbers were measured on their servers, ours on yours).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class CpuMeasurement:
    """Per-update processing cost of one configuration."""

    label: str
    updates: int
    total_seconds: float

    @property
    def seconds_per_update(self) -> float:
        return self.total_seconds / max(self.updates, 1)

    def utilization(self, rate_per_second: float) -> float:
        """Percent of one core consumed at the given update rate."""
        return min(rate_per_second * self.seconds_per_update * 100, 100.0)

    def max_sustainable_rate(self) -> float:
        """Updates/second at which one core saturates."""
        return 1 / self.seconds_per_update


def measure_processing(
    label: str,
    process: Callable[[T], object],
    updates: Sequence[T],
    repeat: int = 1,
) -> CpuMeasurement:
    """Run ``process`` over ``updates`` and record wall-clock cost.

    The cyclic garbage collector is paused for the timed region (the
    standard benchmarking hygiene pytest-benchmark applies too):
    otherwise the measurement charges this workload for collection
    passes over whatever unrelated object graphs the process has
    accumulated, which made results depend on what ran before.
    """
    count = 0
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(repeat):
            for update in updates:
                process(update)
                count += 1
        elapsed = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return CpuMeasurement(label=label, updates=count, total_seconds=elapsed)


def utilization(rate_per_second: float, seconds_per_update: float) -> float:
    """Percent of one core consumed at ``rate_per_second``."""
    return min(rate_per_second * seconds_per_update * 100, 100.0)
