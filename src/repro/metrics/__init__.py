"""Resource accounting and measurement used by the §6 evaluation benches."""

from repro.metrics.memory import (
    FIB_ENTRY_BYTES,
    KERNEL_SYNC_BYTES,
    MemoryReport,
    fib_memory,
    memory_report,
    resident_bytes,
    rib_memory,
    route_memory_bytes,
)
from repro.metrics.cpu import CpuMeasurement, measure_processing, utilization
from repro.metrics.throughput import estimate_tcp_throughput

__all__ = [
    "CpuMeasurement",
    "FIB_ENTRY_BYTES",
    "KERNEL_SYNC_BYTES",
    "MemoryReport",
    "estimate_tcp_throughput",
    "fib_memory",
    "measure_processing",
    "memory_report",
    "resident_bytes",
    "rib_memory",
    "route_memory_bytes",
    "utilization",
]
