"""The capability framework (§4.7).

Experiments default to "basic" announcements — their own prefixes, their
own origin ASN, prepending, and vBGP control communities. Everything
richer is a capability granted per experiment after review:

* ``AS_PATH_POISONING`` — a limited number of foreign ASNs in the path,
* ``BGP_COMMUNITIES`` / ``LARGE_COMMUNITIES`` — attaching a limited number
  of (large) communities,
* ``TRANSITIVE_ATTRIBUTES`` — optional transitive attributes pass through,
* ``PREFIX_TRANSIT`` — announcing routes learned from another network
  (legitimate transit for an experimental prefix),
* ``IPV6_6TO4`` — announcing 6to4-mapped IPv6 space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.addr import Prefix


class Capability(enum.Enum):
    AS_PATH_POISONING = "as-path-poisoning"
    BGP_COMMUNITIES = "bgp-communities"
    LARGE_COMMUNITIES = "large-communities"
    TRANSITIVE_ATTRIBUTES = "transitive-attributes"
    PREFIX_TRANSIT = "prefix-transit"
    IPV6_6TO4 = "ipv6-6to4"


@dataclass(frozen=True)
class CapabilityGrant:
    """One granted capability, optionally bounded (e.g. ≤2 poisoned ASNs)."""

    capability: Capability
    limit: Optional[int] = None

    def within(self, count: int) -> bool:
        return self.limit is None or count <= self.limit


@dataclass
class ExperimentProfile:
    """The security-relevant identity of one approved experiment."""

    name: str
    asns: frozenset[int]
    prefixes: tuple[Prefix, ...]
    grants: dict[Capability, CapabilityGrant] = field(default_factory=dict)
    max_announced_length: int = 24  # most-specific announceable IPv4 prefix
    max_as_path_length: int = 32

    def grant(self, capability: Capability,
              limit: Optional[int] = None) -> None:
        self.grants[capability] = CapabilityGrant(capability, limit)

    def revoke(self, capability: Capability) -> None:
        self.grants.pop(capability, None)

    def has(self, capability: Capability, count: int = 0) -> bool:
        grant = self.grants.get(capability)
        return grant is not None and grant.within(count)

    def owns_prefix(self, prefix: Prefix) -> bool:
        return any(
            allocation.contains_prefix(prefix)
            for allocation in self.prefixes
        )
