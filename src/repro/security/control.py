"""The control-plane enforcement engine (§3.3, §4.7).

Sits between experiment BGP sessions and the router (the paper runs this
as Python inside ExaBGP). For every route an experiment announces it
checks, in order:

1. **prefix ownership** — the prefix must be covered by the experiment's
   allocation and no more specific than its announceable maximum (no
   hijacks; also prevents transiting non-experiment traffic),
2. **origin ASN** — the rightmost ASN must be one the experiment is
   authorized to use (the platform ASN for iBGP-originated routes),
3. **AS-path sanity** — bounded length; foreign ASNs in the path require
   the poisoning capability (within its limit) or the transit capability,
4. **attribute policing** — non-control communities, large communities,
   and unknown transitive attributes are stripped unless the matching
   capability is granted,
5. **rate limiting** — at most 144 updates/day per (prefix, PoP),
   counted in state shared across all vBGP instances.

If the engine itself is overloaded or errors, the caller (vBGP) treats the
announcement as denied — the platform **fails closed** rather than letting
an unchecked announcement reach the Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.bgp.attributes import Route
from repro.netsim.addr import IPv4Address, IPv4Prefix, IPv6Prefix
from repro.security.capabilities import Capability, ExperimentProfile
from repro.security.state import EnforcerState
from repro.sim.scheduler import Scheduler
from repro.vbgp.communities import is_control

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub


class EnforcerOverloaded(RuntimeError):
    """Raised when the engine is overloaded; vBGP then fails closed."""


@dataclass(frozen=True)
class Violation:
    """A rejected (or transformed) announcement, for attribution (§3.1)."""

    experiment: str
    pop: str
    prefix: str
    reason: str
    time: float


@dataclass
class EnforcementOutcome:
    accepted: list[Route] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)


class ControlPlaneEnforcer:
    """One enforcement engine instance (one per vBGP node, shared state)."""

    def __init__(
        self,
        scheduler: Scheduler,
        platform_asns: frozenset[int],
        state: Optional[EnforcerState] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.platform_asns = platform_asns
        self.state = state if state is not None else EnforcerState()
        self.profiles: dict[str, ExperimentProfile] = {}
        self.violations: list[Violation] = []
        self.overloaded = False
        self.routes_checked = 0
        self.routes_rejected = 0
        self._m_accepts = None
        self._m_rejects = None
        self._m_strips = None
        if telemetry is not None:
            registry = telemetry.registry
            self._m_accepts = registry.counter(
                "security_control_accepts",
                "Announcements accepted by the control-plane enforcer",
                labels=("pop",),
            )
            self._m_rejects = registry.counter(
                "security_control_rejects",
                "Announcements rejected, by enforcement policy",
                labels=("pop", "policy"),
            )
            self._m_strips = registry.counter(
                "security_control_strips",
                "Attributes stripped for missing capabilities",
                labels=("pop", "attribute"),
            )

    def register_experiment(self, profile: ExperimentProfile) -> None:
        self.profiles[profile.name] = profile

    def deregister_experiment(self, name: str) -> None:
        self.profiles.pop(name, None)

    def reset_violations(self) -> int:
        """Clear the recorded violation log; returns how many were
        cleared.  Post-heal hygiene for the chaos scenarios — lifetime
        counters (``routes_rejected`` etc.) are deliberately kept."""
        cleared = len(self.violations)
        self.violations.clear()
        return cleared

    # -- the vBGP-facing API ----------------------------------------------

    def filter_routes(self, experiment: str, routes: list[Route],
                      pop: str) -> list[Route]:
        """Return the policy-compliant subset (possibly transformed)."""
        if self.overloaded:
            raise EnforcerOverloaded(f"enforcer at {pop} is overloaded")
        outcome = self.check_routes(experiment, routes, pop)
        self.violations.extend(outcome.violations)
        return outcome.accepted

    def check_routes(self, experiment: str, routes: list[Route],
                     pop: str, record: bool = True) -> EnforcementOutcome:
        """Evaluate the policy; with ``record=False`` nothing mutates.

        The non-recording mode is the intent layer's dry-run hook: the
        same static checks and attribute policing run, but no update
        budget is consumed (the rate limit is probed via
        :meth:`EnforcerState.would_accept` with ``pending=0``) and no
        counters or metrics move — two consecutive dry runs of the same
        ChangeSet see identical enforcement state.
        """
        outcome = EnforcementOutcome()
        profile = self.profiles.get(experiment)
        now = self.scheduler.now
        allowed_asns = (
            profile.asns | self.platform_asns if profile is not None
            else frozenset()
        )
        for route in routes:
            if record:
                self.routes_checked += 1
            if profile is None:
                self._reject(outcome, experiment, pop, route,
                             "unknown experiment", now,
                             policy="unknown-experiment", record=record)
                continue
            check = self._static_checks(profile, route, allowed_asns)
            if check is not None:
                policy, reason = check
                self._reject(outcome, experiment, pop, route, reason, now,
                             policy=policy, record=record)
                continue
            transformed = self._police_attributes(
                profile, route, outcome, experiment, pop, now,
                record=record,
            )
            rate_ok = (
                self.state.record(experiment, route.prefix, pop, now)
                if record
                else self.state.would_accept(
                    experiment, route.prefix, pop, now
                )
            )
            if not rate_ok:
                self._reject(outcome, experiment, pop, route,
                             "update rate limit exceeded", now,
                             policy="rate-limit", record=record)
                continue
            outcome.accepted.append(transformed)
            if record and self._m_accepts is not None:
                self._m_accepts.labels(pop).inc()
        return outcome

    def check_withdraw(self, experiment: str, prefix, pop: str) -> bool:
        """Withdrawals also count against the update budget (§4.7)."""
        return self.state.record(experiment, prefix, pop, self.scheduler.now)

    # -- checks -------------------------------------------------------------

    def _static_checks(
        self, profile: ExperimentProfile, route: Route,
        allowed_asns: frozenset[int],
    ) -> Optional[tuple[str, str]]:
        """Returns ``(policy, reason)`` on rejection, else ``None``.

        The policy tag is stable and coarse (it labels the per-policy
        reject counters); the reason stays free-form for attribution.
        """
        if isinstance(route.prefix, IPv6Prefix):
            reason = self._check_6to4(profile, route.prefix)
            if reason is not None:
                return "6to4", reason
        elif not profile.owns_prefix(route.prefix):
            return (
                "prefix-ownership",
                f"prefix {route.prefix} not allocated to experiment",
            )
        elif route.prefix.length > profile.max_announced_length:
            return (
                "prefix-length",
                f"prefix {route.prefix} more specific than "
                f"/{profile.max_announced_length}",
            )
        path = route.as_path
        if path.length > profile.max_as_path_length:
            return (
                "as-path-length",
                f"AS path longer than {profile.max_as_path_length}",
            )
        # Transit capability: the experiment may legitimately re-announce
        # routes originated (and carried) by other networks (§4.7).
        has_transit = profile.has(Capability.PREFIX_TRANSIT)
        origin = path.origin_as
        if origin is not None and origin not in allowed_asns and (
            not has_transit
        ):
            return "origin", f"unauthorized origin AS{origin}"
        foreign = {asn for asn in path.asns if asn not in allowed_asns}
        if foreign and not has_transit:
            if not profile.has(Capability.AS_PATH_POISONING, len(foreign)):
                return (
                    "poisoning",
                    f"{len(foreign)} foreign ASNs in path without "
                    "poisoning/transit capability",
                )
        return None

    _SIX_TO_FOUR = IPv6Prefix.parse("2002::/16")

    def _check_6to4(self, profile: ExperimentProfile,
                    prefix: IPv6Prefix) -> Optional[str]:
        """The 6to4 capability (§4.7): an experiment may announce the
        2002::/16-mapped image of IPv4 space it owns (RFC 3056 embeds the
        IPv4 address in bits 16..48 of the prefix)."""
        if not self._SIX_TO_FOUR.contains_prefix(prefix):
            return f"IPv6 prefix {prefix} is not experiment-announceable"
        if not profile.has(Capability.IPV6_6TO4):
            return "6to4 announcement without the ipv6-6to4 capability"
        v4_bits = min(prefix.length - 16, 32)
        if v4_bits < 24:
            return f"6to4 prefix {prefix} maps more than a /24 of IPv4"
        embedded = (prefix.network.value >> (128 - 48)) & 0xFFFFFFFF
        v4_prefix = IPv4Prefix.from_address(IPv4Address(embedded), v4_bits)
        if not profile.owns_prefix(v4_prefix):
            return (
                f"6to4 prefix {prefix} embeds unallocated IPv4 "
                f"{v4_prefix}"
            )
        return None

    def _police_attributes(
        self,
        profile: ExperimentProfile,
        route: Route,
        outcome: EnforcementOutcome,
        experiment: str,
        pop: str,
        now: float,
        record: bool = True,
    ) -> Route:
        """Strip attributes the experiment is not entitled to send."""
        free_form = {c for c in route.communities if not is_control(c)}
        if free_form and not profile.has(
            Capability.BGP_COMMUNITIES, len(free_form)
        ):
            route = route.without_communities(*free_form)
            if record and self._m_strips is not None:
                self._m_strips.labels(pop, "communities").inc()
            outcome.violations.append(Violation(
                experiment=experiment, pop=pop, prefix=str(route.prefix),
                reason="communities stripped (no capability)", time=now,
            ))
        if route.attributes.large_communities and not profile.has(
            Capability.LARGE_COMMUNITIES,
            len(route.attributes.large_communities),
        ):
            route = route.with_attributes(large_communities=frozenset())
            if record and self._m_strips is not None:
                self._m_strips.labels(pop, "large-communities").inc()
            outcome.violations.append(Violation(
                experiment=experiment, pop=pop, prefix=str(route.prefix),
                reason="large communities stripped (no capability)", time=now,
            ))
        if route.attributes.unknown and not profile.has(
            Capability.TRANSITIVE_ATTRIBUTES
        ):
            route = route.without_unknown_attributes()
            if record and self._m_strips is not None:
                self._m_strips.labels(pop, "transitive").inc()
            outcome.violations.append(Violation(
                experiment=experiment, pop=pop, prefix=str(route.prefix),
                reason="transitive attributes stripped (no capability)",
                time=now,
            ))
        return route

    def _reject(self, outcome: EnforcementOutcome, experiment: str, pop: str,
                route: Route, reason: str, now: float,
                policy: str = "other", record: bool = True) -> None:
        if record:
            self.routes_rejected += 1
            if self._m_rejects is not None:
                self._m_rejects.labels(pop, policy).inc()
        outcome.violations.append(Violation(
            experiment=experiment, pop=pop, prefix=str(route.prefix),
            reason=reason, time=now,
        ))
