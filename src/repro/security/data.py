"""The data-plane enforcement engine: eBPF-style packet programs (§3.3).

vBGP's data plane "interposes on experiment data plane traffic through the
use of extended Berkeley Packet Filters". Here a :class:`BpfProgram` is a
small object with a ``run(frame, ctx) -> (verdict, frame)`` method and
access to persistent maps, chained by :class:`DataPlaneEnforcer` at the
experiment-facing interface. Built-ins implement the platform's policies:

* :class:`AntiSpoofProgram` — the source address of experiment traffic
  must fall within the experiment's allocation (§4.7 "cannot … source
  traffic using address space that is not part of the experiment's
  allocation"),
* :class:`TokenBucketProgram` — per-experiment / per-PoP / per-neighbor
  rate limiting (two PEERING sites have contractual bandwidth caps),
* :class:`CounterProgram` — accounting for attribution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.addr import IPv4Prefix, MacAddress
from repro.netsim.frames import EtherType, EthernetFrame, IPv4Packet
from repro.netsim.lpm import LpmTable
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub


class BpfVerdict(enum.Enum):
    PASS = "pass"
    DROP = "drop"


@dataclass
class BpfContext:
    """Execution context handed to every program."""

    now: float
    iface: str
    pop: str


class BpfProgram:
    """Base class; subclasses override :meth:`run`."""

    name = "noop"

    def run(self, frame: EthernetFrame,
            ctx: BpfContext) -> tuple[BpfVerdict, EthernetFrame]:
        return BpfVerdict.PASS, frame


class CounterProgram(BpfProgram):
    """Per-source-MAC packet/byte counters (PlanetFlow-style attribution)."""

    name = "counters"

    def __init__(self) -> None:
        self.packets: dict[MacAddress, int] = {}
        self.bytes: dict[MacAddress, int] = {}

    def run(self, frame: EthernetFrame,
            ctx: BpfContext) -> tuple[BpfVerdict, EthernetFrame]:
        self.packets[frame.src] = self.packets.get(frame.src, 0) + 1
        self.bytes[frame.src] = self.bytes.get(frame.src, 0) + frame.size
        return BpfVerdict.PASS, frame


class AntiSpoofProgram(BpfProgram):
    """Drop experiment packets whose source is outside the allocation."""

    name = "anti-spoof"

    def __init__(self) -> None:
        # Source MAC (tunnel endpoint) -> allowed source prefixes.
        self._allowed: dict[MacAddress, LpmTable[bool]] = {}
        self.drops = 0

    def allow(self, source_mac: MacAddress,
              prefixes: tuple[IPv4Prefix, ...]) -> None:
        table = LpmTable()
        for prefix in prefixes:
            table.insert(prefix, True)
        self._allowed[source_mac] = table

    def remove(self, source_mac: MacAddress) -> None:
        self._allowed.pop(source_mac, None)

    def run(self, frame: EthernetFrame,
            ctx: BpfContext) -> tuple[BpfVerdict, EthernetFrame]:
        if frame.ethertype != EtherType.IPV4 or not isinstance(
            frame.payload, IPv4Packet
        ):
            return BpfVerdict.PASS, frame
        table = self._allowed.get(frame.src)
        if table is None:
            # Unknown senders on the experiment interface are not policed
            # here (BGP/ARP control traffic uses other ethertypes anyway).
            return BpfVerdict.PASS, frame
        if table.lookup(frame.payload.src) is None:
            self.drops += 1
            return BpfVerdict.DROP, frame
        return BpfVerdict.PASS, frame


class TokenBucketProgram(BpfProgram):
    """Stateful rate limiting keyed by a caller-supplied function."""

    name = "rate-limit"

    def __init__(
        self,
        rate_bps: float,
        burst_bytes: int,
        key_fn: Optional[Callable[[EthernetFrame], object]] = None,
    ) -> None:
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.key_fn = key_fn or (lambda frame: frame.src)
        self._tokens: dict[object, tuple[float, float]] = {}
        self.drops = 0

    def run(self, frame: EthernetFrame,
            ctx: BpfContext) -> tuple[BpfVerdict, EthernetFrame]:
        key = self.key_fn(frame)
        tokens, last = self._tokens.get(key, (float(self.burst_bytes), ctx.now))
        tokens = min(
            self.burst_bytes, tokens + (ctx.now - last) * self.rate_bps / 8
        )
        if tokens < frame.size:
            self._tokens[key] = (tokens, ctx.now)
            self.drops += 1
            return BpfVerdict.DROP, frame
        self._tokens[key] = (tokens - frame.size, ctx.now)
        return BpfVerdict.PASS, frame


class DataPlaneEnforcer:
    """The program chain attached at the experiment-facing interface.

    Runs in its own container in the paper (collocatable with the router or
    on a separate server); here it is an object vBGP invokes from its
    ingress hook. A program raising is treated as engine failure and the
    node fails closed for that frame.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        pop: str,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.pop = pop
        self.counters = CounterProgram()
        self.anti_spoof = AntiSpoofProgram()
        self.programs: list[BpfProgram] = [self.counters, self.anti_spoof]
        self.frames_seen = 0
        self.frames_dropped = 0
        self._m_frames = None
        self._m_drops = None
        if telemetry is not None:
            registry = telemetry.registry
            self._m_frames = registry.counter(
                "security_data_frames",
                "Frames inspected by the data-plane enforcer",
                labels=("pop",),
            ).labels(pop)
            self._m_drops = registry.counter(
                "security_data_drops",
                "Frames dropped by the data-plane enforcer, per program",
                labels=("pop", "program"),
            )

    def add_program(self, program: BpfProgram) -> None:
        self.programs.append(program)

    def register_experiment(self, tunnel_mac: MacAddress,
                            prefixes: tuple[IPv4Prefix, ...]) -> None:
        self.anti_spoof.allow(tunnel_mac, prefixes)

    def deregister_experiment(self, tunnel_mac: MacAddress) -> None:
        self.anti_spoof.remove(tunnel_mac)

    def ingress(self, frame: EthernetFrame, iface: str,
                node: object) -> Optional[EthernetFrame]:
        """vBGP hook entry point; None means the frame was dropped."""
        self.frames_seen += 1
        if self._m_frames is not None:
            self._m_frames.inc()
        ctx = BpfContext(now=self.scheduler.now, iface=iface, pop=self.pop)
        for program in self.programs:
            verdict, frame = program.run(frame, ctx)
            if verdict == BpfVerdict.DROP:
                self.frames_dropped += 1
                if self._m_drops is not None:
                    self._m_drops.labels(self.pop, program.name).inc()
                return None
        return frame
