"""Security and isolation: the vBGP enforcement engines (§3.3, §4.7).

Enforcement is deliberately decoupled from the routing engine: the
control-plane enforcer is arbitrary Python interposed on the BGP pipeline
(the paper runs it inside ExaBGP) and the data-plane enforcer is a chain of
eBPF-style packet programs. Both support stateful policies that router
filter languages cannot express — cross-PoP update-rate limits, token
buckets — and both **fail closed**.
"""

from repro.security.capabilities import (
    Capability,
    CapabilityGrant,
    ExperimentProfile,
)
from repro.security.control import (
    ControlPlaneEnforcer,
    EnforcerOverloaded,
    Violation,
)
from repro.security.data import (
    AntiSpoofProgram,
    BpfContext,
    BpfProgram,
    BpfVerdict,
    CounterProgram,
    DataPlaneEnforcer,
    TokenBucketProgram,
)
from repro.security.state import EnforcerState, UPDATES_PER_DAY_LIMIT

__all__ = [
    "AntiSpoofProgram",
    "BpfContext",
    "BpfProgram",
    "BpfVerdict",
    "Capability",
    "CapabilityGrant",
    "ControlPlaneEnforcer",
    "CounterProgram",
    "DataPlaneEnforcer",
    "EnforcerOverloaded",
    "EnforcerState",
    "ExperimentProfile",
    "TokenBucketProgram",
    "UPDATES_PER_DAY_LIMIT",
    "Violation",
]
