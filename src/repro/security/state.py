"""Shared enforcement state, synchronized across vBGP instances (§3.3).

"State can be synchronized among vBGP instances to enable AS-wide policies,
such as limiting the total number of times a prefix can be announced or
withdrawn across all PoPs during a 24 hour period." In the simulation the
instances literally share one :class:`EnforcerState`; in a deployment this
is the replicated non-volatile store the paper describes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.netsim.addr import Prefix

UPDATES_PER_DAY_LIMIT = 144  # one BGP update per 10 minutes on average
DAY_SECONDS = 24 * 3600.0


class EnforcerState:
    """Sliding-window update accounting per (experiment, prefix, PoP)."""

    def __init__(self, per_pop_limit: int = UPDATES_PER_DAY_LIMIT,
                 window: float = DAY_SECONDS) -> None:
        self.per_pop_limit = per_pop_limit
        self.window = window
        self._events: dict[tuple[str, tuple, str], Deque[float]] = {}
        self.total_updates = 0

    def _bucket(self, experiment: str, prefix: Prefix,
                pop: str) -> Deque[float]:
        key = (experiment, prefix.key(), pop)
        bucket = self._events.get(key)
        if bucket is None:
            bucket = deque()
            self._events[key] = bucket
        return bucket

    def _prune(self, bucket: Deque[float], now: float) -> None:
        horizon = now - self.window
        while bucket and bucket[0] <= horizon:
            bucket.popleft()

    def count(self, experiment: str, prefix: Prefix, pop: str,
              now: float) -> int:
        """Updates in the last 24 h for this (experiment, prefix, PoP)."""
        bucket = self._bucket(experiment, prefix, pop)
        self._prune(bucket, now)
        return len(bucket)

    def would_accept(self, experiment: str, prefix: Prefix, pop: str,
                     now: float, pending: int = 0) -> bool:
        """Whether :meth:`record` would accept, without recording.

        The intent layer's dry-run evaluator uses this so planning a
        ChangeSet never consumes update budget; ``pending`` counts
        updates earlier in the same ChangeSet that would have been
        recorded by the time this one is applied.
        """
        count = self.count(experiment, prefix, pop, now)
        return count + pending < self.per_pop_limit

    def record(self, experiment: str, prefix: Prefix, pop: str,
               now: float) -> bool:
        """Record one update; returns False when over the daily limit."""
        bucket = self._bucket(experiment, prefix, pop)
        self._prune(bucket, now)
        if len(bucket) >= self.per_pop_limit:
            return False
        bucket.append(now)
        self.total_updates += 1
        return True

    def platform_count(self, experiment: str, prefix: Prefix,
                       now: float) -> int:
        """Updates in the last 24 h for the prefix across all PoPs."""
        total = 0
        for (exp, prefix_key, _pop), bucket in self._events.items():
            if exp == experiment and prefix_key == prefix.key():
                self._prune(bucket, now)
                total += len(bucket)
        return total
