"""repro: a full reproduction of *PEERING: Virtualizing BGP at the Edge
for Research* (CoNEXT 2019).

Layers, bottom-up:

* :mod:`repro.sim` — deterministic discrete-event simulation core,
* :mod:`repro.netsim` — L2/L3 substrate (Ethernet/ARP/IP, policy routing,
  links/switches, simplified TCP, netlink-like API),
* :mod:`repro.bgp` — a from-scratch BGP-4 implementation with ADD-PATH,
  communities, and a route-map policy engine,
* :mod:`repro.router` — a BIRD-like router (config language, kernel sync,
  non-disruptive reconfiguration, CLI),
* :mod:`repro.vbgp` — **the paper's contribution**: virtualization of a
  BGP edge router's data and control planes,
* :mod:`repro.security` — control/data-plane enforcement engines and the
  capability framework,
* :mod:`repro.platform` — the PEERING platform: PoPs, resources,
  experiment workflow, tunnels, backbone, CloudLab federation,
* :mod:`repro.toolkit` — the experiment-side client (Table 1),
* :mod:`repro.internet` — a synthetic Internet (Gao–Rexford ASes, IXP
  route servers, churn, PeeringDB, looking glasses),
* :mod:`repro.mgmt` — intent-based configuration management with a
  transactional network controller,
* :mod:`repro.metrics` — memory/CPU/throughput accounting for the §6
  evaluation.

Quickstart::

    from repro.sim import Scheduler
    from repro.platform import PeeringPlatform
    from repro.internet import build_internet

    sched = Scheduler()
    platform = PeeringPlatform(sched)
    internet = build_internet(sched, platform)
    sched.run_for(30)  # let BGP converge
"""

__version__ = "1.0.0"

__all__ = [
    "bgp",
    "internet",
    "metrics",
    "mgmt",
    "netsim",
    "platform",
    "router",
    "security",
    "sim",
    "toolkit",
    "vbgp",
]
