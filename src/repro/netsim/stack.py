"""A simulated host network stack (the "Linux kernel" of the reproduction).

Each :class:`NetworkStack` is one network namespace: a set of interfaces,
multiple numbered routing tables, priority-ordered policy-routing rules, an
ARP subsystem with proxy entries, ingress/egress hooks (the attachment point
for vBGP's data-plane enforcement programs), and a tiny UDP/ICMP local
delivery layer used by ping/traceroute/iperf-style tools.

The stack supports the specific mechanisms vBGP relies on:

* interfaces accept frames addressed to *extra* MACs (the per-neighbor
  virtual MACs vBGP hands out),
* proxy-ARP entries answer queries for per-neighbor virtual IPs with the
  matching virtual MAC,
* policy rules can match the **destination MAC of the ingress frame**, which
  is how a frame sent to neighbor N's virtual MAC is looked up in neighbor
  N's routing table,
* the primary address of an interface is whichever address was added first
  (the kernel quirk §5 of the paper works around), and it is the source used
  for ICMP errors — so traceroute attribution works as described.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.frames import (
    ArpOp,
    ArpPacket,
    EtherType,
    EthernetFrame,
    IcmpMessage,
    IcmpType,
    IpProto,
    IPv4Packet,
    UdpDatagram,
)
from repro.netsim.link import Port
from repro.netsim.lpm import LpmTable
from repro.sim.scheduler import Scheduler

MAIN_TABLE = 254
LOCAL_TABLE = 255
RULE_PRIORITY_DEFAULT = 32766

ARP_TIMEOUT = 1.0
ARP_QUEUE_LIMIT = 32


class Verdict(enum.Enum):
    """Hook verdicts, mirroring eBPF TC actions."""

    PASS = "pass"
    DROP = "drop"


@dataclass(frozen=True)
class KernelRoute:
    """A FIB entry: where to send packets matching the prefix."""

    prefix: IPv4Prefix
    out_iface: str
    next_hop: Optional[IPv4Address] = None

    @property
    def is_direct(self) -> bool:
        return self.next_hop is None


@dataclass
class RoutingRule:
    """A policy-routing rule selecting a table when its matches hold.

    ``match_dmac`` matching the destination MAC of the ingress frame is the
    vBGP table-demultiplexing mechanism (§3.2.2).
    """

    priority: int
    table: int
    match_iif: Optional[str] = None
    match_dst: Optional[IPv4Prefix] = None
    match_src: Optional[IPv4Prefix] = None
    match_dmac: Optional[MacAddress] = None

    def matches(
        self,
        packet: IPv4Packet,
        in_iface: Optional[str],
        dmac: Optional[MacAddress],
    ) -> bool:
        if self.match_iif is not None and self.match_iif != in_iface:
            return False
        if self.match_dst is not None and not self.match_dst.contains_address(
            packet.dst
        ):
            return False
        if self.match_src is not None and not self.match_src.contains_address(
            packet.src
        ):
            return False
        if self.match_dmac is not None and self.match_dmac != dmac:
            return False
        return True


@dataclass
class InterfaceConfig:
    """Declarative interface state used by the netlink API and controller."""

    name: str
    mac: MacAddress
    addresses: list[IPv4Prefix] = field(default_factory=list)
    up: bool = True
    mtu: int = 1500


class Interface:
    """A stack-attached network interface."""

    def __init__(self, stack: "NetworkStack", name: str, mac: MacAddress,
                 port: Port) -> None:
        self.stack = stack
        self.name = name
        self.mac = mac
        self.port = port
        self.up = True
        self.mtu = 1500
        # Address order matters: index 0 is the primary address.
        self.addresses: list[IPv4Prefix] = []
        # Extra unicast MACs this interface accepts (vBGP virtual MACs).
        self.extra_macs: set[MacAddress] = set()
        port.attach(self._receive)

    @property
    def primary_address(self) -> Optional[IPv4Address]:
        """First-added address; the source used for ICMP errors."""
        if not self.addresses:
            return None
        return self.addresses[0].network

    def accepts_mac(self, mac: MacAddress) -> bool:
        return (
            mac == self.mac
            or mac.is_broadcast
            or mac.is_multicast
            or mac in self.extra_macs
        )

    def send_frame(self, frame: EthernetFrame) -> None:
        if not self.up:
            return
        for hook in self.stack.egress_hooks:
            result = hook(frame, self)
            if result is None:
                return
            frame = result
        self.port.transmit(frame)

    def _receive(self, frame: EthernetFrame, _port: Port) -> None:
        if not self.up:
            return
        self.stack._frame_arrived(frame, self)


# Hook signatures. Ingress hooks may drop (return None) or rewrite frames.
FrameHook = Callable[[EthernetFrame, Interface], Optional[EthernetFrame]]
UdpHandler = Callable[[IPv4Packet, UdpDatagram], None]
IcmpHandler = Callable[[IPv4Packet, IcmpMessage], None]
RawHandler = Callable[[IPv4Packet, Interface], None]


@dataclass
class _ArpWaiter:
    packets: list[tuple[IPv4Packet, "KernelRoute"]] = field(default_factory=list)


class NetworkStack:
    """One simulated network namespace."""

    def __init__(self, scheduler: Scheduler, name: str = "host") -> None:
        self.scheduler = scheduler
        self.name = name
        self.interfaces: dict[str, Interface] = {}
        self.tables: dict[int, LpmTable[KernelRoute]] = {
            MAIN_TABLE: LpmTable()
        }
        self.rules: list[RoutingRule] = [
            RoutingRule(priority=RULE_PRIORITY_DEFAULT, table=MAIN_TABLE)
        ]
        self.forwarding = True
        # ip -> (mac, iface name); the neighbor cache.
        self.arp_table: dict[IPv4Address, tuple[MacAddress, str]] = {}
        # Proxy-ARP entries per interface: ip -> mac answered on queries.
        self.proxy_arp: dict[str, dict[IPv4Address, MacAddress]] = {}
        self._arp_waiters: dict[IPv4Address, _ArpWaiter] = {}
        self.ingress_hooks: list[FrameHook] = []
        self.egress_hooks: list[FrameHook] = []
        self._udp_handlers: dict[int, UdpHandler] = {}
        self._icmp_handlers: list[IcmpHandler] = []
        self._raw_handlers: dict[IpProto, RawHandler] = {}
        # Cached set of locally assigned addresses; rebuilt on address or
        # interface changes instead of per packet in ``_handle_ip``.
        self._local_ips: set[IPv4Address] = set()
        self.counters = {
            "rx_packets": 0,
            "tx_packets": 0,
            "forwarded": 0,
            "dropped_no_route": 0,
            "dropped_hook": 0,
            "dropped_ttl": 0,
            "arp_timeouts": 0,
        }

    # ------------------------------------------------------------------
    # Configuration surface (used directly and via the netlink API)
    # ------------------------------------------------------------------

    def add_interface(self, name: str, mac: MacAddress, port: Port) -> Interface:
        if name in self.interfaces:
            raise ValueError(f"duplicate interface {name!r} on {self.name}")
        iface = Interface(self, name, mac, port)
        self.interfaces[name] = iface
        self.proxy_arp[name] = {}
        return iface

    def remove_interface(self, name: str) -> None:
        iface = self.interfaces.pop(name, None)
        if iface is None:
            return
        self.proxy_arp.pop(name, None)
        self._rebuild_local_ips()
        for table in self.tables.values():
            stale = [
                entry.prefix
                for entry in table.entries()
                if entry.value.out_iface == name
            ]
            for prefix in stale:
                table.remove(prefix)

    def add_address(self, iface_name: str, address: IPv4Address,
                    length: int) -> None:
        """Assign ``address/length`` to an interface.

        The first address added becomes the primary (kernel semantics that
        PEERING's controller must actively manage, §5). A connected route
        for the subnet is installed in the main table.
        """
        iface = self.interfaces[iface_name]
        assignment = IPv4Prefix(address, 32)
        if any(existing.network == address for existing in iface.addresses):
            return
        iface.addresses.append(assignment)
        self._local_ips.add(address)
        subnet = IPv4Prefix.from_address(address, length)
        self.add_route(KernelRoute(prefix=subnet, out_iface=iface_name))

    def remove_address(self, iface_name: str, address: IPv4Address) -> None:
        iface = self.interfaces[iface_name]
        iface.addresses = [
            existing for existing in iface.addresses
            if existing.network != address
        ]
        self._rebuild_local_ips()

    def interface_addresses(self, iface_name: str) -> list[IPv4Address]:
        return [p.network for p in self.interfaces[iface_name].addresses]

    def primary_address(self, iface_name: str) -> Optional[IPv4Address]:
        iface = self.interfaces[iface_name]
        if not iface.addresses:
            return None
        return iface.addresses[0].network

    def table(self, table_id: int) -> LpmTable[KernelRoute]:
        if table_id not in self.tables:
            self.tables[table_id] = LpmTable()
        return self.tables[table_id]

    def add_route(self, route: KernelRoute, table_id: int = MAIN_TABLE) -> None:
        if route.out_iface not in self.interfaces:
            raise ValueError(
                f"route via unknown interface {route.out_iface!r}"
            )
        self.table(table_id).insert(route.prefix, route)

    def remove_route(self, prefix: IPv4Prefix,
                     table_id: int = MAIN_TABLE) -> bool:
        return self.table(table_id).remove(prefix)

    def add_rule(self, rule: RoutingRule) -> None:
        self.rules.append(rule)
        self.rules.sort(key=lambda r: r.priority)

    def remove_rule(self, rule: RoutingRule) -> None:
        self.rules.remove(rule)

    def add_proxy_arp(self, iface_name: str, ip: IPv4Address,
                      mac: MacAddress) -> None:
        """Answer ARP queries for ``ip`` on ``iface`` with ``mac``."""
        self.proxy_arp[iface_name][ip] = mac

    def remove_proxy_arp(self, iface_name: str, ip: IPv4Address) -> None:
        self.proxy_arp[iface_name].pop(ip, None)

    def add_static_arp(self, ip: IPv4Address, mac: MacAddress,
                       iface_name: str) -> None:
        self.arp_table[ip] = (mac, iface_name)

    # ------------------------------------------------------------------
    # Local endpoints
    # ------------------------------------------------------------------

    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        if port in self._udp_handlers:
            raise ValueError(f"UDP port {port} already bound on {self.name}")
        self._udp_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    def on_icmp(self, handler: IcmpHandler) -> None:
        self._icmp_handlers.append(handler)

    def bind_raw(self, proto: IpProto, handler: RawHandler) -> None:
        self._raw_handlers[proto] = handler

    def local_ips(self) -> set[IPv4Address]:
        return self._local_ips

    def _rebuild_local_ips(self) -> None:
        ips: set[IPv4Address] = set()
        for iface in self.interfaces.values():
            ips.update(p.network for p in iface.addresses)
        self._local_ips = ips

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------

    def _frame_arrived(self, frame: EthernetFrame, iface: Interface) -> None:
        if not iface.accepts_mac(frame.dst):
            return
        for hook in self.ingress_hooks:
            result = hook(frame, iface)
            if result is None:
                self.counters["dropped_hook"] += 1
                return
            frame = result
        if frame.ethertype == EtherType.ARP and isinstance(
            frame.payload, ArpPacket
        ):
            self._handle_arp(frame.payload, iface)
            return
        if frame.ethertype == EtherType.IPV4 and isinstance(
            frame.payload, IPv4Packet
        ):
            self.counters["rx_packets"] += 1
            self._handle_ip(frame.payload, iface, frame.dst)

    # -- ARP ------------------------------------------------------------

    def _handle_arp(self, arp: ArpPacket, iface: Interface) -> None:
        # Learn the sender mapping opportunistically.
        self.arp_table[arp.sender_ip] = (arp.sender_mac, iface.name)
        waiter = self._arp_waiters.pop(arp.sender_ip, None)
        if waiter is not None:
            for packet, route in waiter.packets:
                self._transmit_ip(packet, route, arp.sender_mac)
        if arp.op != ArpOp.REQUEST:
            return
        answer_mac = self._arp_answer_for(arp.target_ip, iface)
        if answer_mac is None:
            return
        reply = ArpPacket(
            op=ArpOp.REPLY,
            sender_mac=answer_mac,
            sender_ip=arp.target_ip,
            target_mac=arp.sender_mac,
            target_ip=arp.sender_ip,
        )
        iface.send_frame(
            EthernetFrame(
                src=answer_mac,
                dst=arp.sender_mac,
                ethertype=EtherType.ARP,
                payload=reply,
            )
        )

    def _arp_answer_for(self, ip: IPv4Address,
                        iface: Interface) -> Optional[MacAddress]:
        proxied = self.proxy_arp.get(iface.name, {}).get(ip)
        if proxied is not None:
            return proxied
        if any(p.network == ip for p in iface.addresses):
            return iface.mac
        return None

    def _send_arp_request(self, target_ip: IPv4Address,
                          iface: Interface) -> None:
        sender_ip = iface.addresses[0].network if iface.addresses else (
            IPv4Address(0)
        )
        request = ArpPacket(
            op=ArpOp.REQUEST,
            sender_mac=iface.mac,
            sender_ip=sender_ip,
            target_mac=MacAddress(0),
            target_ip=target_ip,
        )
        iface.send_frame(
            EthernetFrame(
                src=iface.mac,
                dst=MacAddress.broadcast(),
                ethertype=EtherType.ARP,
                payload=request,
            )
        )

    # -- IP -------------------------------------------------------------

    def _handle_ip(self, packet: IPv4Packet, iface: Optional[Interface],
                   dmac: Optional[MacAddress]) -> None:
        if packet.dst in self.local_ips():
            self._deliver_local(packet, iface)
            return
        if not self.forwarding:
            return
        if packet.ttl <= 1:
            self.counters["dropped_ttl"] += 1
            self._send_ttl_exceeded(packet, iface)
            return
        self._route_and_forward(
            packet.decrement_ttl(),
            in_iface=iface.name if iface else None,
            dmac=dmac,
        )

    def _deliver_local(self, packet: IPv4Packet,
                       iface: Optional[Interface]) -> None:
        if packet.proto == IpProto.ICMP and isinstance(
            packet.payload, IcmpMessage
        ):
            self._handle_icmp(packet, packet.payload)
            return
        if packet.proto == IpProto.UDP and isinstance(
            packet.payload, UdpDatagram
        ):
            handler = self._udp_handlers.get(packet.payload.dst_port)
            if handler is not None:
                handler(packet, packet.payload)
            else:
                self._send_icmp_error(
                    packet, IcmpType.DEST_UNREACHABLE, code=3
                )
            return
        raw = self._raw_handlers.get(packet.proto)
        if raw is not None and iface is not None:
            raw(packet, iface)

    def _handle_icmp(self, packet: IPv4Packet, icmp: IcmpMessage) -> None:
        if icmp.icmp_type == IcmpType.ECHO_REQUEST:
            reply = IcmpMessage(
                icmp_type=IcmpType.ECHO_REPLY,
                identifier=icmp.identifier,
                sequence=icmp.sequence,
                payload=icmp.payload,
            )
            self.send_ip(
                IPv4Packet(
                    src=packet.dst, dst=packet.src,
                    proto=IpProto.ICMP, payload=reply,
                )
            )
            return
        for handler in self._icmp_handlers:
            handler(packet, icmp)

    def _send_ttl_exceeded(self, packet: IPv4Packet,
                           iface: Optional[Interface]) -> None:
        # ICMP errors are sourced from the receiving interface's *primary*
        # address — the reason PEERING's controller fights for address order.
        src = None
        if iface is not None and iface.addresses:
            src = iface.addresses[0].network
        if src is None:
            return
        error = IcmpMessage(
            icmp_type=IcmpType.TIME_EXCEEDED,
            payload=packet.encode()[:28],
        )
        self.send_ip(
            IPv4Packet(src=src, dst=packet.src, proto=IpProto.ICMP,
                       payload=error)
        )

    def _send_icmp_error(self, packet: IPv4Packet, icmp_type: IcmpType,
                         code: int = 0) -> None:
        error = IcmpMessage(
            icmp_type=icmp_type, code=code, payload=packet.encode()[:28]
        )
        self.send_ip(
            IPv4Packet(src=packet.dst, dst=packet.src, proto=IpProto.ICMP,
                       payload=error)
        )

    def lookup_route(
        self,
        packet: IPv4Packet,
        in_iface: Optional[str] = None,
        dmac: Optional[MacAddress] = None,
    ) -> Optional[KernelRoute]:
        """Apply policy rules in priority order, then LPM in the table."""
        for rule in self.rules:
            if not rule.matches(packet, in_iface, dmac):
                continue
            table = self.tables.get(rule.table)
            if table is None:
                continue
            entry = table.lookup(packet.dst)
            if entry is not None:
                return entry.value
        return None

    def _route_and_forward(self, packet: IPv4Packet,
                           in_iface: Optional[str],
                           dmac: Optional[MacAddress]) -> None:
        route = self.lookup_route(packet, in_iface=in_iface, dmac=dmac)
        if route is None:
            self.counters["dropped_no_route"] += 1
            return
        self.counters["forwarded"] += 1
        self._resolve_and_send(packet, route)

    def send_ip(self, packet: IPv4Packet) -> None:
        """Send a locally generated packet."""
        if packet.dst in self.local_ips():
            self.scheduler.call_soon(
                lambda: self._deliver_local(packet, None)
            )
            return
        route = self.lookup_route(packet)
        if route is None:
            self.counters["dropped_no_route"] += 1
            return
        self.counters["tx_packets"] += 1
        self._resolve_and_send(packet, route)

    def send_ip_via(self, packet: IPv4Packet, next_hop: IPv4Address,
                    out_iface: str) -> None:
        """Send bypassing the FIB (used by experiment controllers that pick
        a vBGP per-neighbor next-hop directly)."""
        route = KernelRoute(
            prefix=IPv4Prefix.parse("0.0.0.0/0"),
            out_iface=out_iface,
            next_hop=next_hop,
        )
        self.counters["tx_packets"] += 1
        self._resolve_and_send(packet, route)

    def _resolve_and_send(self, packet: IPv4Packet,
                          route: KernelRoute) -> None:
        iface = self.interfaces.get(route.out_iface)
        if iface is None or not iface.up:
            self.counters["dropped_no_route"] += 1
            return
        target = route.next_hop if route.next_hop is not None else packet.dst
        cached = self.arp_table.get(target)
        if cached is not None:
            self._transmit_ip(packet, route, cached[0])
            return
        waiter = self._arp_waiters.get(target)
        if waiter is None:
            waiter = _ArpWaiter()
            self._arp_waiters[target] = waiter
            self._send_arp_request(target, iface)
            self.scheduler.call_later(
                ARP_TIMEOUT, lambda: self._arp_timeout(target)
            )
        if len(waiter.packets) < ARP_QUEUE_LIMIT:
            waiter.packets.append((packet, route))

    def _arp_timeout(self, target: IPv4Address) -> None:
        waiter = self._arp_waiters.pop(target, None)
        if waiter is not None and waiter.packets:
            self.counters["arp_timeouts"] += 1

    def _transmit_ip(self, packet: IPv4Packet, route: KernelRoute,
                     dst_mac: MacAddress) -> None:
        iface = self.interfaces.get(route.out_iface)
        if iface is None:
            return
        iface.send_frame(
            EthernetFrame(
                src=iface.mac,
                dst=dst_mac,
                ethertype=EtherType.IPV4,
                payload=packet,
            )
        )
