"""Links, ports, and learning switches.

A :class:`Port` is a device's attachment point; a :class:`Link` joins two
ports with latency, bandwidth, a drop-tail queue, and optional random loss;
a :class:`Switch` is a VLAN-aware learning L2 switch used to model IXP LANs
(where a PEERING vBGP router exchanges frames with hundreds of members).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.netsim.frames import EthernetFrame
from repro.sim.scheduler import Scheduler

FrameHandler = Callable[[EthernetFrame, "Port"], None]


class Port:
    """An Ethernet attachment point.

    Devices call :meth:`transmit` to send and install a handler with
    :meth:`attach` to receive. The connected :class:`Link` or
    :class:`Switch` installs ``_send`` when the port is plugged in.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._handler: Optional[FrameHandler] = None
        self._send: Optional[Callable[[EthernetFrame], None]] = None
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    @property
    def connected(self) -> bool:
        return self._send is not None

    def attach(self, handler: FrameHandler) -> None:
        """Register the device-side receive callback."""
        self._handler = handler

    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame out this port (silently dropped if unplugged)."""
        if self._send is None:
            return
        self.tx_frames += 1
        self.tx_bytes += frame.size
        self._send(frame)

    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the wire when a frame arrives at this port."""
        self.rx_frames += 1
        self.rx_bytes += frame.size
        if self._handler is not None:
            self._handler(frame, self)


class Link:
    """A full-duplex point-to-point link.

    Models serialization (``size / bandwidth``), propagation (``latency``),
    a drop-tail queue per direction (``queue_limit`` frames beyond the one
    in service), and Bernoulli loss (``loss``).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        a: Port,
        b: Port,
        latency: float = 0.0,
        bandwidth_bps: Optional[float] = None,
        queue_limit: int = 128,
        loss: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.queue_limit = queue_limit
        self.loss = loss
        self._rng = random.Random(seed)
        self._busy_until = {id(a): 0.0, id(b): 0.0}
        self._queued = {id(a): 0, id(b): 0}
        self.drops = 0
        a._send = lambda frame: self._forward(frame, a, b)
        b._send = lambda frame: self._forward(frame, b, a)

    def _forward(self, frame: EthernetFrame, src: Port, dst: Port) -> None:
        if self.loss and self._rng.random() < self.loss:
            self.drops += 1
            return
        now = self.scheduler.now
        if self.bandwidth_bps:
            serialization = frame.size * 8 / self.bandwidth_bps
            start = max(now, self._busy_until[id(src)])
            backlog = (start - now) / serialization if serialization > 0 else 0
            if backlog > self.queue_limit:
                self.drops += 1
                return
            self._busy_until[id(src)] = start + serialization
            arrival = start + serialization + self.latency
        else:
            arrival = now + self.latency
        self.scheduler.call_at(arrival, lambda: dst.deliver(frame))


class Switch:
    """A VLAN-aware learning Ethernet switch.

    Each member device gets a dedicated :class:`Port` via :meth:`add_port`;
    the switch learns source MACs and floods unknown/broadcast destinations
    within the frame's VLAN (untagged traffic uses VLAN ``None``).
    """

    def __init__(self, scheduler: Scheduler, name: str = "switch",
                 latency: float = 0.0) -> None:
        self.scheduler = scheduler
        self.name = name
        self.latency = latency
        self._ports: list[Port] = []
        self._fdb: dict[tuple[Optional[int], int], Port] = {}
        self.flooded = 0

    def add_port(self, name: str = "") -> Port:
        """Create a new member port.

        The port is the switch's side of the wire: a :class:`Link` joins
        it to the member device's port. Frames from the member arrive via
        the port's receive handler; frames toward the member are
        transmitted back over the link.
        """
        port = Port(name or f"{self.name}-p{len(self._ports)}")
        port.attach(lambda frame, ingress: self._switch(frame, ingress))
        self._ports.append(port)
        return port

    @property
    def ports(self) -> list[Port]:
        return list(self._ports)

    def _switch(self, frame: EthernetFrame, ingress: Port) -> None:
        key = (frame.vlan, frame.src.value)
        self._fdb[key] = ingress
        dst_key = (frame.vlan, frame.dst.value)
        if frame.dst.is_broadcast or frame.dst.is_multicast:
            self._flood(frame, ingress)
            return
        out = self._fdb.get(dst_key)
        if out is None:
            self._flood(frame, ingress)
            return
        if out is ingress:
            return
        self.scheduler.call_later(self.latency, lambda: out.transmit(frame))

    def _flood(self, frame: EthernetFrame, ingress: Port) -> None:
        self.flooded += 1
        for port in self._ports:
            if port is ingress:
                continue
            self.scheduler.call_later(
                self.latency, lambda p=port: p.transmit(frame)
            )
