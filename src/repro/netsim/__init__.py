"""In-process layer-2/layer-3 network substrate.

This package stands in for the Linux networking stack that PEERING's vBGP is
implemented against: Ethernet frames, ARP, IPv4/IPv6 addressing, links and
switches, hosts with multiple policy-routing tables, and a netlink-like
configuration API. vBGP's mechanisms (per-neighbor virtual MACs, MAC-keyed
routing-table selection, next-hop rewriting) are built on these primitives
exactly as the paper builds them on the kernel.
"""

from repro.netsim.addr import (
    AddressError,
    IPv4Address,
    IPv4Prefix,
    IPv6Address,
    IPv6Prefix,
    MacAddress,
    parse_prefix,
)
from repro.netsim.frames import (
    ArpOp,
    ArpPacket,
    EtherType,
    EthernetFrame,
    IcmpMessage,
    IcmpType,
    IpProto,
    IPv4Packet,
    UdpDatagram,
)
from repro.netsim.lpm import LpmTable, RouteEntry
from repro.netsim.link import Link, Port, Switch
from repro.netsim.stack import (
    InterfaceConfig,
    KernelRoute,
    NetworkStack,
    RoutingRule,
    RULE_PRIORITY_DEFAULT,
    Verdict,
)
from repro.netsim.netlink import Netlink, NetlinkError

__all__ = [
    "AddressError",
    "ArpOp",
    "ArpPacket",
    "EtherType",
    "EthernetFrame",
    "IcmpMessage",
    "IcmpType",
    "InterfaceConfig",
    "IpProto",
    "IPv4Address",
    "IPv4Packet",
    "IPv4Prefix",
    "IPv6Address",
    "IPv6Prefix",
    "KernelRoute",
    "Link",
    "LpmTable",
    "MacAddress",
    "Netlink",
    "NetlinkError",
    "NetworkStack",
    "Port",
    "RouteEntry",
    "RoutingRule",
    "RULE_PRIORITY_DEFAULT",
    "Switch",
    "UdpDatagram",
    "Verdict",
    "parse_prefix",
]
