"""Layer-2/3/4 packet formats: Ethernet, ARP, IPv4, ICMP, UDP.

Frames are passed between simulated devices as Python objects for speed, but
every format also has a real byte-level ``encode``/``decode`` pair (exercised
by the wire-format tests) so the reproduction keeps fidelity to the on-wire
protocols the paper's platform exchanges with real networks.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro import perf
from repro.netsim.addr import AddressError, IPv4Address, MacAddress


class EtherType(enum.IntEnum):
    """Ethernet payload types used in the simulation."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD


class IpProto(enum.IntEnum):
    """IP protocol numbers used in the simulation."""

    ICMP = 1
    TCP = 6
    UDP = 17


class ArpOp(enum.IntEnum):
    REQUEST = 1
    REPLY = 2


class IcmpType(enum.IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass(frozen=True)
class ArpPacket:
    """An ARP request or reply for IPv4 over Ethernet."""

    op: ArpOp
    sender_mac: MacAddress
    sender_ip: IPv4Address
    target_mac: MacAddress
    target_ip: IPv4Address

    WIRE_SIZE = 28

    def encode(self) -> bytes:
        header = struct.pack("!HHBBH", 1, EtherType.IPV4, 6, 4, self.op)
        return (
            header
            + self.sender_mac.value.to_bytes(6, "big")
            + self.sender_ip.packed()
            + self.target_mac.value.to_bytes(6, "big")
            + self.target_ip.packed()
        )

    @classmethod
    def decode(cls, data: bytes) -> "ArpPacket":
        if len(data) < cls.WIRE_SIZE:
            raise ValueError(f"ARP packet too short: {len(data)} bytes")
        htype, ptype, hlen, plen, op = struct.unpack("!HHBBH", data[:8])
        if (htype, ptype, hlen, plen) != (1, EtherType.IPV4, 6, 4):
            raise ValueError("unsupported ARP hardware/protocol types")
        return cls(
            op=ArpOp(op),
            sender_mac=MacAddress(int.from_bytes(data[8:14], "big")),
            sender_ip=IPv4Address.from_packed(data[14:18]),
            target_mac=MacAddress(int.from_bytes(data[18:24], "big")),
            target_ip=IPv4Address.from_packed(data[24:28]),
        )


@dataclass(frozen=True)
class IcmpMessage:
    """A (simplified) ICMP message.

    ``payload`` carries the triggering packet for error messages, mirroring
    how real TTL-exceeded replies quote the original header — this is what
    makes simulated traceroute work through vBGP.
    """

    icmp_type: IcmpType
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    payload: bytes = b""

    def encode(self) -> bytes:
        body = struct.pack(
            "!BBHHH", self.icmp_type, self.code, 0, self.identifier, self.sequence
        ) + self.payload
        checksum = _inet_checksum(body)
        return body[:2] + struct.pack("!H", checksum) + body[4:]

    @classmethod
    def decode(cls, data: bytes) -> "IcmpMessage":
        if len(data) < 8:
            raise ValueError(f"ICMP message too short: {len(data)} bytes")
        icmp_type, code, _checksum, identifier, sequence = struct.unpack(
            "!BBHHH", data[:8]
        )
        return cls(
            icmp_type=IcmpType(icmp_type),
            code=code,
            identifier=identifier,
            sequence=sequence,
            payload=data[8:],
        )


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram (checksum omitted; the simulator does not corrupt)."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def encode(self) -> bytes:
        length = 8 + len(self.payload)
        return struct.pack("!HHHH", self.src_port, self.dst_port, length, 0) + (
            self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "UdpDatagram":
        if len(data) < 8:
            raise ValueError(f"UDP datagram too short: {len(data)} bytes")
        src_port, dst_port, length, _checksum = struct.unpack("!HHHH", data[:8])
        if length != len(data):
            raise ValueError("UDP length field mismatch")
        return cls(src_port=src_port, dst_port=dst_port, payload=data[8:])


Payload = Union[IcmpMessage, UdpDatagram, bytes]


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 packet.

    ``payload`` is a typed object for ICMP/UDP or raw bytes for everything
    else (the simplified TCP layer uses its own segment objects carried in a
    bytes envelope only when serialized).
    """

    src: IPv4Address
    dst: IPv4Address
    proto: IpProto
    payload: Payload = b""
    ttl: int = 64
    dscp: int = 0
    identification: int = 0

    HEADER_SIZE = 20

    def decrement_ttl(self) -> "IPv4Packet":
        """Return a copy with TTL reduced by one.

        Built via the constructor directly (``dataclasses.replace`` showed
        up in the forwarding profile), carrying over the memoized payload
        bytes — the payload object is unchanged.
        """
        clone = IPv4Packet(
            src=self.src,
            dst=self.dst,
            proto=self.proto,
            payload=self.payload,
            ttl=self.ttl - 1,
            dscp=self.dscp,
            identification=self.identification,
        )
        cached = self.__dict__.get("_payload_wire")
        if cached is not None:
            object.__setattr__(clone, "_payload_wire", cached)
        return clone

    @property
    def payload_bytes(self) -> bytes:
        if isinstance(self.payload, bytes):
            return self.payload
        # Memoized on the (frozen) packet: the datapath asks for the
        # serialized payload several times per hop (size accounting, frame
        # encode, enforcement), and payloads are immutable.
        if perf.FLAGS.encode_memo:
            cached = self.__dict__.get("_payload_wire")
            if cached is None:
                cached = self.payload.encode()
                object.__setattr__(self, "_payload_wire", cached)
            return cached
        return self.payload.encode()

    @property
    def size(self) -> int:
        """Total packet size in bytes (used for rate accounting)."""
        return self.HEADER_SIZE + len(self.payload_bytes)

    def encode(self) -> bytes:
        if perf.FLAGS.encode_memo:
            cached = self.__dict__.get("_wire")
            if cached is not None:
                return cached
        payload = self.payload_bytes
        total_length = self.HEADER_SIZE + len(payload)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.dscp << 2,
            total_length,
            self.identification,
            0,
            self.ttl,
            self.proto,
            0,
            self.src.packed(),
            self.dst.packed(),
        )
        checksum = _inet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        wire = header + payload
        if perf.FLAGS.encode_memo:
            object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def decode(cls, data: bytes) -> "IPv4Packet":
        if len(data) < cls.HEADER_SIZE:
            raise ValueError(f"IPv4 packet too short: {len(data)} bytes")
        (
            version_ihl,
            dscp_ecn,
            total_length,
            identification,
            _flags_frag,
            ttl,
            proto,
            _checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        version = version_ihl >> 4
        ihl = version_ihl & 0x0F
        if version != 4 or ihl != 5:
            raise ValueError("unsupported IPv4 header")
        if total_length != len(data):
            raise ValueError("IPv4 total length mismatch")
        raw_payload = data[20:]
        payload: Payload = raw_payload
        try:
            if proto == IpProto.ICMP:
                payload = IcmpMessage.decode(raw_payload)
            elif proto == IpProto.UDP:
                payload = UdpDatagram.decode(raw_payload)
        except ValueError:
            payload = raw_payload
        return cls(
            src=IPv4Address.from_packed(src),
            dst=IPv4Address.from_packed(dst),
            proto=IpProto(proto),
            payload=payload,
            ttl=ttl,
            dscp=dscp_ecn >> 2,
            identification=identification,
        )


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame, optionally 802.1Q tagged."""

    src: MacAddress
    dst: MacAddress
    ethertype: EtherType
    payload: Union[IPv4Packet, ArpPacket, bytes]
    vlan: Optional[int] = None

    @property
    def payload_bytes(self) -> bytes:
        if isinstance(self.payload, bytes):
            return self.payload
        return self.payload.encode()

    @property
    def size(self) -> int:
        tag = 4 if self.vlan is not None else 0
        if perf.FLAGS.encode_memo:
            cached = self.__dict__.get("_size")
            if cached is None:
                cached = 14 + tag + len(self.payload_bytes)
                object.__setattr__(self, "_size", cached)
            return cached
        return 14 + tag + len(self.payload_bytes)

    def encode(self) -> bytes:
        header = self.dst.value.to_bytes(6, "big") + self.src.value.to_bytes(6, "big")
        if self.vlan is not None:
            if not 0 <= self.vlan < 4096:
                raise ValueError(f"VLAN id out of range: {self.vlan}")
            header += struct.pack("!HH", EtherType.VLAN, self.vlan)
        header += struct.pack("!H", self.ethertype)
        return header + self.payload_bytes

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        if len(data) < 14:
            raise ValueError(f"Ethernet frame too short: {len(data)} bytes")
        dst = MacAddress(int.from_bytes(data[0:6], "big"))
        src = MacAddress(int.from_bytes(data[6:12], "big"))
        (ethertype,) = struct.unpack("!H", data[12:14])
        vlan = None
        offset = 14
        if ethertype == EtherType.VLAN:
            (tci,) = struct.unpack("!H", data[14:16])
            vlan = tci & 0x0FFF
            (ethertype,) = struct.unpack("!H", data[16:18])
            offset = 18
        raw = data[offset:]
        payload: Union[IPv4Packet, ArpPacket, bytes] = raw
        try:
            if ethertype == EtherType.IPV4:
                payload = IPv4Packet.decode(raw)
            elif ethertype == EtherType.ARP:
                payload = ArpPacket.decode(raw)
        except (ValueError, AddressError):
            payload = raw
        return cls(
            src=src, dst=dst, ethertype=EtherType(ethertype), payload=payload, vlan=vlan
        )


def _inet_checksum(data: bytes) -> int:
    """Standard Internet 16-bit one's-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    # Sum whole 16-bit words in one struct call, then fold the carries —
    # an order of magnitude faster than the per-byte loop it replaces.
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF
