"""A simplified TCP implementation over :class:`NetworkStack`.

Implements enough of TCP to produce realistic bulk-transfer behaviour over
the simulated backbone: three-way handshake, cumulative ACKs, slow start,
AIMD congestion avoidance, fast retransmit on triple duplicate ACKs, and an
RTO timer. This powers the iperf3-style throughput measurements of §6.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.netsim.addr import IPv4Address
from repro.netsim.frames import IpProto, IPv4Packet
from repro.netsim.stack import Interface, NetworkStack

MSS = 1448
HEADER_SIZE = 16

FLAG_SYN = 0x1
FLAG_ACK = 0x2
FLAG_FIN = 0x4


@dataclass(frozen=True)
class TcpSegment:
    """A simplified TCP segment (wire-encoded into the IP payload)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int = 0
    payload_len: int = 0

    def encode(self) -> bytes:
        # Bulk payload is synthetic: we carry its length, then pad so the
        # packet size (and thus link serialization time) is faithful.
        header = struct.pack(
            "!HHIIHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            self.flags,
            self.payload_len,
        )
        return header + b"\x00" * self.payload_len

    @classmethod
    def decode(cls, data: bytes) -> "TcpSegment":
        if len(data) < HEADER_SIZE:
            raise ValueError("TCP segment too short")
        src_port, dst_port, seq, ack, flags, payload_len = struct.unpack(
            "!HHIIHH", data[:HEADER_SIZE]
        )
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload_len=payload_len,
        )


@dataclass
class TcpStats:
    bytes_acked: int = 0
    segments_sent: int = 0
    retransmits: int = 0
    rtt_estimate: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def duration(self) -> float:
        return max(self.end_time - self.start_time, 1e-9)

    @property
    def throughput_bps(self) -> float:
        return self.bytes_acked * 8 / self.duration


class TcpSender:
    """Client side: connects, pushes ``total_bytes``, reports stats."""

    INITIAL_RTO = 0.5
    MIN_RTO = 0.1

    def __init__(
        self,
        stack: NetworkStack,
        src: IPv4Address,
        dst: IPv4Address,
        dst_port: int,
        total_bytes: int,
        src_port: int = 49152,
        on_done: Optional[Callable[[TcpStats], None]] = None,
    ) -> None:
        self.stack = stack
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.total_bytes = total_bytes
        self.on_done = on_done
        self.stats = TcpStats()
        self._cwnd = 10.0  # segments (IW10)
        self._ssthresh = 1 << 30
        self._next_seq = 0
        self._acked = 0
        self._dup_acks = 0
        self._connected = False
        self._done = False
        self._rto = self.INITIAL_RTO
        self._rto_event = None
        self._sent_times: dict[int, float] = {}
        stack.bind_raw(IpProto.TCP, self._receive)

    def start(self) -> None:
        self.stats.start_time = self.stack.scheduler.now
        self._send_segment(TcpSegment(
            src_port=self.src_port, dst_port=self.dst_port,
            seq=0, ack=0, flags=FLAG_SYN,
        ))
        self._arm_rto()

    # -- receive path -----------------------------------------------------

    def _receive(self, packet: IPv4Packet, _iface: Interface) -> None:
        if packet.src != self.dst or not isinstance(packet.payload, bytes):
            return
        try:
            segment = TcpSegment.decode(packet.payload)
        except ValueError:
            return
        if segment.dst_port != self.src_port:
            return
        if not self._connected:
            if segment.flags & FLAG_SYN and segment.flags & FLAG_ACK:
                self._connected = True
                self._update_rtt()
                self._pump()
            return
        self._handle_ack(segment.ack)

    def _handle_ack(self, ack: int) -> None:
        if self._done:
            return
        if ack > self._acked:
            newly = ack - self._acked
            self._acked = ack
            self.stats.bytes_acked = self._acked
            self._dup_acks = 0
            self._update_rtt(ack)
            if self._cwnd < self._ssthresh:
                self._cwnd += newly / MSS  # slow start
            else:
                self._cwnd += (newly / MSS) / self._cwnd  # AIMD
            if self._acked >= self.total_bytes:
                self._finish()
                return
            self._arm_rto()
            self._pump()
        else:
            self._dup_acks += 1
            if self._dup_acks == 3:
                # Fast retransmit + multiplicative decrease.
                self._ssthresh = max(self._cwnd / 2, 2.0)
                self._cwnd = self._ssthresh
                self.stats.retransmits += 1
                self._next_seq = self._acked
                self._pump()

    def _update_rtt(self, ack: Optional[int] = None) -> None:
        sent_at = self._sent_times.pop(ack, None) if ack is not None else None
        now = self.stack.scheduler.now
        sample = (now - sent_at) if sent_at is not None else None
        if sample is not None:
            if self.stats.rtt_estimate == 0:
                self.stats.rtt_estimate = sample
            else:
                self.stats.rtt_estimate = (
                    0.875 * self.stats.rtt_estimate + 0.125 * sample
                )
            self._rto = max(self.MIN_RTO, 2.5 * self.stats.rtt_estimate)

    # -- send path ---------------------------------------------------------

    def _pump(self) -> None:
        window_end = self._acked + int(self._cwnd) * MSS
        while (
            self._next_seq < self.total_bytes and self._next_seq < window_end
        ):
            size = min(MSS, self.total_bytes - self._next_seq)
            segment = TcpSegment(
                src_port=self.src_port, dst_port=self.dst_port,
                seq=self._next_seq, ack=0, flags=FLAG_ACK, payload_len=size,
            )
            self._send_segment(segment)
            self._sent_times[self._next_seq + size] = self.stack.scheduler.now
            self._next_seq += size

    def _send_segment(self, segment: TcpSegment) -> None:
        self.stats.segments_sent += 1
        self.stack.send_ip(
            IPv4Packet(
                src=self.src, dst=self.dst, proto=IpProto.TCP,
                payload=segment.encode(),
            )
        )

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.stack.scheduler.call_later(
            self._rto, self._on_rto
        )

    def _on_rto(self) -> None:
        if self._done:
            return
        if not self._connected:
            self._send_segment(TcpSegment(
                src_port=self.src_port, dst_port=self.dst_port,
                seq=0, ack=0, flags=FLAG_SYN,
            ))
            self._arm_rto()
            return
        # Timeout: back to slow start from the last cumulative ACK.
        self._ssthresh = max(self._cwnd / 2, 2.0)
        self._cwnd = 1.0
        self._next_seq = self._acked
        self.stats.retransmits += 1
        self._rto = min(self._rto * 2, 10.0)
        self._pump()
        self._arm_rto()

    def _finish(self) -> None:
        self._done = True
        if self._rto_event is not None:
            self._rto_event.cancel()
        self.stats.end_time = self.stack.scheduler.now
        self._send_segment(TcpSegment(
            src_port=self.src_port, dst_port=self.dst_port,
            seq=self._next_seq, ack=0, flags=FLAG_FIN,
        ))
        if self.on_done is not None:
            self.on_done(self.stats)


class TcpReceiver:
    """Server side: accepts one connection and ACKs everything in order."""

    def __init__(self, stack: NetworkStack, address: IPv4Address,
                 port: int) -> None:
        self.stack = stack
        self.address = address
        self.port = port
        self.bytes_received = 0
        self._expected_seq = 0
        self._peer: Optional[tuple[IPv4Address, int]] = None
        stack.bind_raw(IpProto.TCP, self._receive)

    def _receive(self, packet: IPv4Packet, _iface: Interface) -> None:
        if packet.dst != self.address or not isinstance(packet.payload, bytes):
            return
        try:
            segment = TcpSegment.decode(packet.payload)
        except ValueError:
            return
        if segment.dst_port != self.port:
            return
        if segment.flags & FLAG_SYN:
            self._peer = (packet.src, segment.src_port)
            self._expected_seq = 0
            self._send(TcpSegment(
                src_port=self.port, dst_port=segment.src_port,
                seq=0, ack=0, flags=FLAG_SYN | FLAG_ACK,
            ), packet.src)
            return
        if segment.flags & FLAG_FIN:
            return
        if segment.payload_len == 0:
            return
        if segment.seq == self._expected_seq:
            self._expected_seq += segment.payload_len
            self.bytes_received = self._expected_seq
        # Cumulative ACK (also covers out-of-order arrivals → dup ACKs).
        self._send(TcpSegment(
            src_port=self.port, dst_port=segment.src_port,
            seq=0, ack=self._expected_seq, flags=FLAG_ACK,
        ), packet.src)

    def _send(self, segment: TcpSegment, dst: IPv4Address) -> None:
        self.stack.send_ip(
            IPv4Packet(
                src=self.address, dst=dst, proto=IpProto.TCP,
                payload=segment.encode(),
            )
        )


def run_iperf(
    scheduler,
    client_stack: NetworkStack,
    client_ip: IPv4Address,
    server_stack: NetworkStack,
    server_ip: IPv4Address,
    total_bytes: int = 2_000_000,
    port: int = 5201,
    timeout: float = 120.0,
) -> TcpStats:
    """Transfer ``total_bytes`` and return sender-side stats.

    The scheduler is run until the transfer completes (or ``timeout``
    virtual seconds elapse), mirroring an iperf3 run between two PoPs.
    """
    TcpReceiver(server_stack, server_ip, port)
    result: list[TcpStats] = []
    sender = TcpSender(
        client_stack, client_ip, server_ip, port,
        total_bytes=total_bytes, on_done=result.append,
    )
    sender.start()
    deadline = scheduler.now + timeout
    while not result and scheduler.now < deadline:
        if not scheduler.step():
            break
    if not result:
        # Transfer did not complete: report partial progress.
        sender.stats.end_time = scheduler.now
        return sender.stats
    return result[0]
