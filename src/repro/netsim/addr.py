"""Address types: MAC, IPv4, IPv6, and prefixes.

These are implemented from scratch (integer-backed, hashable, totally
ordered) rather than on :mod:`ipaddress` so the rest of the reproduction can
rely on exact semantics — e.g. the LPM trie keys on ``(value, length)`` and
vBGP allocates virtual MAC/IP pairs arithmetically.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Optional, Union


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


@total_ordering
class MacAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    BROADCAST_VALUE = (1 << 48) - 1

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 48):
            raise AddressError(f"MAC value out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (also accepts ``-`` separators)."""
        parts = text.replace("-", ":").split(":")
        if len(parts) != 6:
            raise AddressError(f"malformed MAC address: {text!r}")
        value = 0
        for part in parts:
            if not 1 <= len(part) <= 2:
                raise AddressError(f"malformed MAC address: {text!r}")
            try:
                octet = int(part, 16)
            except ValueError as exc:
                raise AddressError(f"malformed MAC address: {text!r}") from exc
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls(cls.BROADCAST_VALUE)

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == self.BROADCAST_VALUE

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        return bool((self._value >> 40) & 0x02)

    def __str__(self) -> str:
        octets = [(self._value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._value == other._value

    def __lt__(self, other: "MacAddress") -> bool:
        if not isinstance(other, MacAddress):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        # Salted raw value: cheaper than hashing a ("mac", value) tuple on
        # every dict operation, distinct from the address-type hashes.
        return self._value ^ 0x6D61635F6D61635F


@total_ordering
class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    BITS = 32

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise AddressError(f"IPv4 value out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise AddressError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"malformed IPv4 address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_private(self) -> bool:
        return (
            IPv4Prefix.parse("10.0.0.0/8").contains_address(self)
            or IPv4Prefix.parse("172.16.0.0/12").contains_address(self)
            or IPv4Prefix.parse("192.168.0.0/16").contains_address(self)
        )

    @property
    def is_loopback(self) -> bool:
        return IPv4Prefix.parse("127.0.0.0/8").contains_address(self)

    def packed(self) -> bytes:
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_packed(cls, data: bytes) -> "IPv4Address":
        if len(data) != 4:
            raise AddressError(f"need 4 bytes for IPv4, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)

    def __str__(self) -> str:
        octets = [(self._value >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return ".".join(str(octet) for octet in octets)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and self._value == other._value

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        # Raw value (non-negative, < 2**32): avoids allocating and hashing
        # a tuple per call — addresses key nearly every hot dict.
        return self._value


@total_ordering
class IPv6Address:
    """A 128-bit IPv6 address (full and ``::``-compressed forms supported)."""

    __slots__ = ("_value",)

    BITS = 128

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 128):
            raise AddressError(f"IPv6 value out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        if text.count("::") > 1:
            raise AddressError(f"malformed IPv6 address: {text!r}")
        if "::" in text:
            head, _, tail = text.partition("::")
            head_groups = head.split(":") if head else []
            tail_groups = tail.split(":") if tail else []
            fill = 8 - len(head_groups) - len(tail_groups)
            if fill < 1:
                raise AddressError(f"malformed IPv6 address: {text!r}")
            groups = head_groups + ["0"] * fill + tail_groups
        else:
            groups = text.split(":")
        if len(groups) != 8:
            raise AddressError(f"malformed IPv6 address: {text!r}")
        value = 0
        for group in groups:
            if not 1 <= len(group) <= 4:
                raise AddressError(f"malformed IPv6 address: {text!r}")
            try:
                word = int(group, 16)
            except ValueError as exc:
                raise AddressError(f"malformed IPv6 address: {text!r}") from exc
            value = (value << 16) | word
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    def packed(self) -> bytes:
        return self._value.to_bytes(16, "big")

    @classmethod
    def from_packed(cls, data: bytes) -> "IPv6Address":
        if len(data) != 16:
            raise AddressError(f"need 16 bytes for IPv6, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __add__(self, offset: int) -> "IPv6Address":
        return IPv6Address(self._value + offset)

    def __str__(self) -> str:
        groups = [(self._value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
        # Find the longest run of zero groups to compress with "::".
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, group in enumerate(groups):
            if group == 0:
                if run_start < 0:
                    run_start, run_len = i, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len < 2:
            return ":".join(f"{group:x}" for group in groups)
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
        return f"{head}::{tail}"

    def __repr__(self) -> str:
        return f"IPv6Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv6Address) and self._value == other._value

    def __lt__(self, other: "IPv6Address") -> bool:
        if not isinstance(other, IPv6Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        # Salted value hash; avoids tuple allocation per call.
        return hash(self._value) ^ 0x6970365F69703636


IPAddress = Union[IPv4Address, IPv6Address]


class _Prefix:
    """Shared behaviour for IPv4/IPv6 prefixes."""

    __slots__ = ("_network", "_length", "_hash")

    BITS: int = 0
    ADDRESS_CLS: type = object

    def __init__(self, network: IPAddress, length: int) -> None:
        if not 0 <= length <= self.BITS:
            raise AddressError(f"prefix length out of range: /{length}")
        mask = self._mask(length)
        if network.value & ~mask & ((1 << self.BITS) - 1):
            raise AddressError(
                f"host bits set in prefix {network}/{length}"
            )
        self._network = network
        self._length = length
        self._hash: Optional[int] = None

    @classmethod
    def _mask(cls, length: int) -> int:
        if length == 0:
            return 0
        return ((1 << length) - 1) << (cls.BITS - length)

    @classmethod
    def parse(cls, text: str):
        addr_text, sep, len_text = text.partition("/")
        if not sep:
            raise AddressError(f"prefix missing length: {text!r}")
        try:
            length = int(len_text)
        except ValueError as exc:
            raise AddressError(f"malformed prefix length: {text!r}") from exc
        address = cls.ADDRESS_CLS.parse(addr_text)  # type: ignore[attr-defined]
        return cls(address, length)

    @classmethod
    def from_address(cls, address: IPAddress, length: int):
        """Build a prefix by masking ``address`` down to ``length`` bits."""
        mask = cls._mask(length)
        return cls(cls.ADDRESS_CLS(address.value & mask), length)  # type: ignore[call-arg]

    @property
    def network(self) -> IPAddress:
        return self._network

    @property
    def length(self) -> int:
        return self._length

    @property
    def netmask(self) -> int:
        return self._mask(self._length)

    @property
    def num_addresses(self) -> int:
        return 1 << (self.BITS - self._length)

    def contains_address(self, address: IPAddress) -> bool:
        if not isinstance(address, self.ADDRESS_CLS):
            return False
        return (address.value & self.netmask) == self._network.value

    def contains_prefix(self, other: "_Prefix") -> bool:
        if type(other) is not type(self):
            return False
        if other._length < self._length:
            return False
        return (other._network.value & self.netmask) == self._network.value

    def subnets(self, new_length: int) -> Iterator["_Prefix"]:
        """Iterate over the subnets of this prefix at ``new_length``."""
        if new_length < self._length or new_length > self.BITS:
            raise AddressError(
                f"cannot subnet /{self._length} into /{new_length}"
            )
        step = 1 << (self.BITS - new_length)
        for value in range(
            self._network.value,
            self._network.value + self.num_addresses,
            step,
        ):
            yield type(self)(self.ADDRESS_CLS(value), new_length)  # type: ignore[call-arg]

    def address_at(self, offset: int) -> IPAddress:
        """Return the ``offset``-th address inside the prefix."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(
                f"offset {offset} outside {self}"
            )
        return self.ADDRESS_CLS(self._network.value + offset)  # type: ignore[call-arg]

    def key(self) -> tuple[int, int]:
        """``(value, length)`` tuple used by the LPM trie."""
        return (self._network.value, self._length)

    def __str__(self) -> str:
        return f"{self._network}/{self._length}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self._network == other._network  # type: ignore[attr-defined]
            and self._length == other._length  # type: ignore[attr-defined]
        )

    def __lt__(self, other: "_Prefix") -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.key() < other.key()

    def __le__(self, other: "_Prefix") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        # Prefixes key the RIBs, kernel tables, and path-id maps, so the
        # hash is computed once and cached (the instance is immutable).
        h = self._hash
        if h is None:
            h = hash(
                (type(self).__name__, self._network.value, self._length)
            )
            self._hash = h
        return h


class IPv4Prefix(_Prefix):
    """An IPv4 CIDR prefix such as ``184.164.224.0/24``."""

    BITS = 32
    ADDRESS_CLS = IPv4Address


class IPv6Prefix(_Prefix):
    """An IPv6 CIDR prefix such as ``2804:269c::/32``."""

    BITS = 128
    ADDRESS_CLS = IPv6Address


Prefix = Union[IPv4Prefix, IPv6Prefix]


def parse_prefix(text: str) -> Prefix:
    """Parse either an IPv4 or IPv6 prefix based on its syntax."""
    if ":" in text:
        return IPv6Prefix.parse(text)
    return IPv4Prefix.parse(text)


def parse_address(text: str) -> IPAddress:
    """Parse either an IPv4 or IPv6 address based on its syntax."""
    if ":" in text:
        return IPv6Address.parse(text)
    return IPv4Address.parse(text)
