"""A netlink-like configuration API for :class:`NetworkStack`.

PEERING's network controller (§5) talks to the kernel through netlink, a
request/response protocol with no notion of intent: you can only query, add,
and remove individual objects, and the *primary* address of an interface is
simply the first one added. This module reproduces that interface (including
the quirk) so the transactional controller in :mod:`repro.mgmt.controller`
has the same problem to solve as the real one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.stack import KernelRoute, NetworkStack, RoutingRule


class NetlinkError(RuntimeError):
    """Raised when a netlink request cannot be satisfied."""


@dataclass(frozen=True)
class AddressRecord:
    iface: str
    address: IPv4Address
    length: int
    primary: bool


@dataclass(frozen=True)
class RouteRecord:
    table: int
    prefix: IPv4Prefix
    out_iface: str
    next_hop: Optional[IPv4Address]


@dataclass(frozen=True)
class RuleRecord:
    priority: int
    table: int
    match_iif: Optional[str]
    match_dst: Optional[IPv4Prefix]
    match_src: Optional[IPv4Prefix]
    match_dmac: Optional[MacAddress]


class Netlink:
    """Request/response access to one stack's network configuration."""

    def __init__(self, stack: NetworkStack) -> None:
        self._stack = stack
        self.requests = 0

    # -- queries ---------------------------------------------------------

    def dump_addresses(self, iface: Optional[str] = None) -> list[AddressRecord]:
        self.requests += 1
        records = []
        names = [iface] if iface else list(self._stack.interfaces)
        for name in names:
            interface = self._stack.interfaces.get(name)
            if interface is None:
                raise NetlinkError(f"no such interface: {name}")
            for index, assignment in enumerate(interface.addresses):
                records.append(
                    AddressRecord(
                        iface=name,
                        address=assignment.network,
                        length=32,
                        primary=index == 0,
                    )
                )
        return records

    def dump_routes(self, table: int) -> list[RouteRecord]:
        self.requests += 1
        fib = self._stack.tables.get(table)
        if fib is None:
            return []
        return [
            RouteRecord(
                table=table,
                prefix=entry.value.prefix,
                out_iface=entry.value.out_iface,
                next_hop=entry.value.next_hop,
            )
            for entry in fib.entries()
        ]

    def dump_rules(self) -> list[RuleRecord]:
        self.requests += 1
        return [
            RuleRecord(
                priority=rule.priority,
                table=rule.table,
                match_iif=rule.match_iif,
                match_dst=rule.match_dst,
                match_src=rule.match_src,
                match_dmac=rule.match_dmac,
            )
            for rule in self._stack.rules
        ]

    def list_tables(self) -> list[int]:
        self.requests += 1
        return sorted(self._stack.tables)

    # -- mutations ---------------------------------------------------------

    def add_address(self, iface: str, address: IPv4Address,
                    length: int = 32) -> None:
        self.requests += 1
        interface = self._stack.interfaces.get(iface)
        if interface is None:
            raise NetlinkError(f"no such interface: {iface}")
        if any(a.network == address for a in interface.addresses):
            raise NetlinkError(f"address exists: {address} on {iface}")
        self._stack.add_address(iface, address, length)

    def del_address(self, iface: str, address: IPv4Address) -> None:
        self.requests += 1
        interface = self._stack.interfaces.get(iface)
        if interface is None:
            raise NetlinkError(f"no such interface: {iface}")
        if not any(a.network == address for a in interface.addresses):
            raise NetlinkError(f"no such address: {address} on {iface}")
        self._stack.remove_address(iface, address)

    def add_route(self, record: RouteRecord) -> None:
        self.requests += 1
        existing = self._stack.table(record.table).get(record.prefix)
        if existing is not None:
            raise NetlinkError(f"route exists: {record.prefix} in {record.table}")
        if record.out_iface not in self._stack.interfaces:
            raise NetlinkError(f"no such interface: {record.out_iface}")
        self._stack.add_route(
            KernelRoute(
                prefix=record.prefix,
                out_iface=record.out_iface,
                next_hop=record.next_hop,
            ),
            table_id=record.table,
        )

    def del_route(self, table: int, prefix: IPv4Prefix) -> None:
        self.requests += 1
        if not self._stack.remove_route(prefix, table_id=table):
            raise NetlinkError(f"no such route: {prefix} in {table}")

    def add_rule(self, record: RuleRecord) -> None:
        self.requests += 1
        rule = RoutingRule(
            priority=record.priority,
            table=record.table,
            match_iif=record.match_iif,
            match_dst=record.match_dst,
            match_src=record.match_src,
            match_dmac=record.match_dmac,
        )
        if record in self.dump_rules():
            raise NetlinkError(f"rule exists: {record}")
        self._stack.add_rule(rule)

    def del_rule(self, record: RuleRecord) -> None:
        self.requests += 1
        for rule in self._stack.rules:
            if (
                rule.priority == record.priority
                and rule.table == record.table
                and rule.match_iif == record.match_iif
                and rule.match_dst == record.match_dst
                and rule.match_src == record.match_src
                and rule.match_dmac == record.match_dmac
            ):
                self._stack.remove_rule(rule)
                return
        raise NetlinkError(f"no such rule: {record}")

    def set_link(self, iface: str, up: bool) -> None:
        self.requests += 1
        interface = self._stack.interfaces.get(iface)
        if interface is None:
            raise NetlinkError(f"no such interface: {iface}")
        interface.up = up
