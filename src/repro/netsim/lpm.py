"""Longest-prefix-match routing table with a multi-bit stride fast path.

Each vBGP per-neighbor routing table, every router FIB, and the synthetic
Internet's forwarding state are instances of :class:`LpmTable`.  The table
is on the per-packet hot path (dMAC demux → per-neighbor table → LPM →
forward, §3.2.2), so it is built for lookup speed:

* **stride trie** (default): nodes consume 8 address bits per level, so an
  IPv4 lookup touches at most 5 nodes instead of 33.  Prefix lengths that
  are not byte-aligned are expanded *inside* their node into a 256-slot
  ``expanded`` array (controlled prefix expansion), keeping the walk
  branch-free per level;
* **lookup cache** (default): a bounded per-table LRU keyed by the
  destination address caches both hits and misses.  Inserting or removing
  a prefix invalidates exactly the cached addresses it covers, so a more
  specific route becomes visible immediately;
* **binary trie reference**: the original 1-bit-per-level walk is kept as
  a second backend; the differential tests and the ablation benchmarks
  run both.

Backend choice and cache behaviour are governed by
:mod:`repro.perf` flags (``stride_lpm``, ``lpm_cache``,
``lpm_cache_size``), read at table construction time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generic, Iterator, Optional, TypeVar

from repro import perf
from repro.netsim.addr import IPAddress, Prefix

V = TypeVar("V")

_STRIDE = 8
_MISS = object()  # cache sentinel distinguishing "no entry" from "not cached"


@dataclass
class RouteEntry(Generic[V]):
    """A prefix→value binding returned by LPM lookups."""

    prefix: Prefix
    value: V


# ---------------------------------------------------------------------------
# Binary trie backend (the reference implementation)
# ---------------------------------------------------------------------------


class _BitNode:
    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: list[Optional["_BitNode"]] = [None, None]
        self.entry: Optional[RouteEntry] = None


class _BinaryTrie:
    """1-bit-per-level trie: the original, obviously-correct backend."""

    def __init__(self) -> None:
        self._root = _BitNode()

    def _walk_to(self, prefix: Prefix, create: bool) -> Optional[_BitNode]:
        node = self._root
        value = prefix.network.value
        bits = prefix.ADDRESS_CLS.BITS
        for depth in range(prefix.length):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                if not create:
                    return None
                child = _BitNode()
                node.children[bit] = child
            node = child
        return node

    def insert(self, prefix: Prefix, value: Any) -> bool:
        node = self._walk_to(prefix, create=True)
        assert node is not None
        created = node.entry is None
        node.entry = RouteEntry(prefix=prefix, value=value)
        return created

    def get(self, prefix: Prefix) -> Optional[RouteEntry]:
        node = self._walk_to(prefix, create=False)
        if node is None:
            return None
        return node.entry

    def remove(self, prefix: Prefix) -> bool:
        path: list[tuple[_BitNode, int]] = []
        node = self._root
        value = prefix.network.value
        bits = prefix.ADDRESS_CLS.BITS
        for depth in range(prefix.length):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if node.entry is None:
            return False
        node.entry = None
        # Prune childless, entry-less nodes bottom-up.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.entry is None and child.children == [None, None]:
                parent.children[bit] = None
            else:
                break
        return True

    def lookup(self, address: IPAddress) -> Optional[RouteEntry]:
        node = self._root
        best = node.entry
        value = address.value
        bits = address.BITS
        for depth in range(bits):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.entry is not None:
                best = node.entry
        return best

    def lookup_all(self, address: IPAddress) -> list[RouteEntry]:
        matches: list[RouteEntry] = []
        node = self._root
        if node.entry is not None:
            matches.append(node.entry)
        value = address.value
        bits = address.BITS
        for depth in range(bits):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.entry is not None:
                matches.append(node.entry)
        return matches

    def entries(self) -> Iterator[RouteEntry]:
        yield from self._iter_subtree(self._root)

    def _iter_subtree(self, node: _BitNode) -> Iterator[RouteEntry]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.entry is not None:
                yield current.entry
            for child in reversed(current.children):
                if child is not None:
                    stack.append(child)

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in node.children:
                if child is not None:
                    count += 1
                    stack.append(child)
        return count


# ---------------------------------------------------------------------------
# Stride trie backend (the fast path)
# ---------------------------------------------------------------------------


class _StrideNode:
    __slots__ = ("children", "entry", "partials", "expanded")

    def __init__(self) -> None:
        # Next-byte → child node (sparse: most nodes have few children).
        self.children: dict[int, "_StrideNode"] = {}
        # Entry for the prefix ending exactly at this node's byte boundary.
        self.entry: Optional[RouteEntry] = None
        # Entries whose length falls strictly inside this node's stride:
        # (top-bits value, remainder length 1..7) → entry.
        self.partials: Optional[dict[tuple[int, int], RouteEntry]] = None
        # Controlled prefix expansion of ``partials``: for each possible
        # next byte, the longest partial entry covering it (or None).
        self.expanded: Optional[list[Optional[RouteEntry]]] = None

    def is_empty(self) -> bool:
        return self.entry is None and not self.partials and not self.children


class _StrideTrie:
    """8-bit-stride trie with in-node controlled prefix expansion."""

    def __init__(self) -> None:
        self._root = _StrideNode()

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _partial_key(prefix: Prefix) -> tuple[int, int]:
        remainder = prefix.length % _STRIDE
        bits = prefix.ADDRESS_CLS.BITS
        top = (prefix.network.value >> (bits - prefix.length)) & (
            (1 << remainder) - 1
        )
        return (top, remainder)

    def _descend(self, prefix: Prefix, create: bool,
                 path: Optional[list[tuple[_StrideNode, int]]] = None,
                 ) -> Optional[_StrideNode]:
        node = self._root
        value = prefix.network.value
        bits = prefix.ADDRESS_CLS.BITS
        for level in range(prefix.length // _STRIDE):
            byte = (value >> (bits - _STRIDE * (level + 1))) & 0xFF
            child = node.children.get(byte)
            if child is None:
                if not create:
                    return None
                child = _StrideNode()
                node.children[byte] = child
            if path is not None:
                path.append((node, byte))
            node = child
        return node

    @staticmethod
    def _recompute_expanded(node: _StrideNode, lo: int, hi: int) -> None:
        """Rebuild ``expanded[lo:hi]`` from the partial entries."""
        partials = node.partials
        if not partials:
            node.expanded = None
            return
        if node.expanded is None:
            node.expanded = [None] * 256
        expanded = node.expanded
        for byte in range(lo, hi):
            best: Optional[RouteEntry] = None
            for remainder in range(_STRIDE - 1, 0, -1):
                entry = partials.get(
                    (byte >> (_STRIDE - remainder), remainder)
                )
                if entry is not None:
                    best = entry
                    break
            expanded[byte] = best

    # -- mutation --------------------------------------------------------

    def insert(self, prefix: Prefix, value: Any) -> bool:
        node = self._descend(prefix, create=True)
        assert node is not None
        entry = RouteEntry(prefix=prefix, value=value)
        if prefix.length % _STRIDE == 0:
            created = node.entry is None
            node.entry = entry
            return created
        key = self._partial_key(prefix)
        if node.partials is None:
            node.partials = {}
        created = key not in node.partials
        node.partials[key] = entry
        top, remainder = key
        span = 1 << (_STRIDE - remainder)
        self._recompute_expanded(node, top * span, (top + 1) * span)
        return created

    def remove(self, prefix: Prefix) -> bool:
        path: list[tuple[_StrideNode, int]] = []
        node = self._descend(prefix, create=False, path=path)
        if node is None:
            return False
        if prefix.length % _STRIDE == 0:
            if node.entry is None:
                return False
            node.entry = None
        else:
            key = self._partial_key(prefix)
            if not node.partials or key not in node.partials:
                return False
            del node.partials[key]
            top, remainder = key
            span = 1 << (_STRIDE - remainder)
            self._recompute_expanded(node, top * span, (top + 1) * span)
        # Prune empty nodes bottom-up so long-running simulations do not
        # leak nodes as routes churn.
        child = node
        for parent, byte in reversed(path):
            if child.is_empty():
                del parent.children[byte]
            else:
                break
            child = parent
        return True

    # -- queries ---------------------------------------------------------

    def get(self, prefix: Prefix) -> Optional[RouteEntry]:
        node = self._descend(prefix, create=False)
        if node is None:
            return None
        if prefix.length % _STRIDE == 0:
            return node.entry
        if not node.partials:
            return None
        return node.partials.get(self._partial_key(prefix))

    def lookup(self, address: IPAddress) -> Optional[RouteEntry]:
        node = self._root
        best: Optional[RouteEntry] = None
        value = address.value
        shift = address.BITS - _STRIDE
        while True:
            if node.entry is not None:
                best = node.entry
            if shift < 0:
                break
            byte = (value >> shift) & 0xFF
            expanded = node.expanded
            if expanded is not None:
                entry = expanded[byte]
                if entry is not None:
                    best = entry
            child = node.children.get(byte)
            if child is None:
                break
            node = child
            shift -= _STRIDE
        return best

    def lookup_all(self, address: IPAddress) -> list[RouteEntry]:
        matches: list[RouteEntry] = []
        node = self._root
        value = address.value
        shift = address.BITS - _STRIDE
        while True:
            if node.entry is not None:
                matches.append(node.entry)
            if shift < 0:
                break
            byte = (value >> shift) & 0xFF
            partials = node.partials
            if partials:
                for remainder in range(1, _STRIDE):
                    entry = partials.get(
                        (byte >> (_STRIDE - remainder), remainder)
                    )
                    if entry is not None:
                        matches.append(entry)
            child = node.children.get(byte)
            if child is None:
                break
            node = child
            shift -= _STRIDE
        return matches

    def entries(self) -> Iterator[RouteEntry]:
        yield from self._iter_subtree(self._root)

    def _iter_subtree(self, node: _StrideNode) -> Iterator[RouteEntry]:
        # Deterministic order: node entry, then partials by (length, bits),
        # then children by byte value.
        if node.entry is not None:
            yield node.entry
        if node.partials:
            for key in sorted(node.partials, key=lambda k: (k[1], k[0])):
                yield node.partials[key]
        for byte in sorted(node.children):
            yield from self._iter_subtree(node.children[byte])

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in node.children.values():
                count += 1
                stack.append(child)
        return count


# ---------------------------------------------------------------------------
# Linear-scan reference (for differential testing only)
# ---------------------------------------------------------------------------


class LinearScanLpm(Generic[V]):
    """A brutally simple LPM used as the differential-test oracle."""

    def __init__(self) -> None:
        self._entries: dict[Prefix, V] = {}

    def insert(self, prefix: Prefix, value: V) -> None:
        self._entries[prefix] = value

    def remove(self, prefix: Prefix) -> bool:
        return self._entries.pop(prefix, _MISS) is not _MISS

    def lookup(self, address: IPAddress) -> Optional[RouteEntry[V]]:
        best: Optional[Prefix] = None
        for prefix in self._entries:
            if prefix.contains_address(address):
                if best is None or prefix.length > best.length:
                    best = prefix
        if best is None:
            return None
        return RouteEntry(prefix=best, value=self._entries[best])

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Public facade: backend + LRU lookup cache
# ---------------------------------------------------------------------------


class LpmTable(Generic[V]):
    """A longest-prefix-match table for IPv4 or IPv6 prefixes.

    The table is protocol-agnostic: IPv4 and IPv6 prefixes may technically
    coexist but, per real-kernel practice, callers keep separate v4/v6
    tables (the lookup cache keys on ``(address bits, address value)`` so
    coexistence stays correct).

    Backend (stride vs. binary trie) and cache behaviour follow the
    :mod:`repro.perf` flags at construction time; per-table keyword
    overrides exist for tests and ablation benchmarks.
    """

    def __init__(
        self,
        *,
        stride: Optional[bool] = None,
        cache: Optional[bool] = None,
        cache_size: Optional[int] = None,
    ) -> None:
        flags = perf.FLAGS
        use_stride = flags.stride_lpm if stride is None else stride
        use_cache = flags.lpm_cache if cache is None else cache
        self._backend = _StrideTrie() if use_stride else _BinaryTrie()
        self._cache: Optional[OrderedDict] = (
            OrderedDict() if use_cache else None
        )
        self._cache_cap = (
            flags.lpm_cache_size if cache_size is None else cache_size
        )
        self._size = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self._backend.get(prefix) is not None

    def node_count(self) -> int:
        """Internal trie nodes currently allocated (leak checks)."""
        return self._backend.node_count()

    def cache_len(self) -> int:
        return len(self._cache) if self._cache is not None else 0

    # -- mutation --------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the entry for ``prefix``."""
        if self._backend.insert(prefix, value):
            self._size += 1
        self._invalidate(prefix)

    def remove(self, prefix: Prefix) -> bool:
        """Remove the exact entry for ``prefix``. Returns ``True`` if found.

        Empty trie branches are pruned so long-running simulations do not
        leak nodes as routes churn.
        """
        if not self._backend.remove(prefix):
            return False
        self._size -= 1
        self._invalidate(prefix)
        return True

    def clear(self) -> None:
        backend = self._backend
        self._backend = type(backend)()
        self._size = 0
        if self._cache is not None:
            self._cache.clear()

    def _invalidate(self, prefix: Prefix) -> None:
        """Drop cached lookups (hits *and* misses) covered by ``prefix``."""
        cache = self._cache
        if not cache:
            return
        if prefix.length == 0:
            cache.clear()
            return
        bits = prefix.ADDRESS_CLS.BITS
        shift = bits - prefix.length
        network = prefix.network.value >> shift
        stale = [
            key for key in cache
            if key[0] == bits and (key[1] >> shift) == network
        ]
        for key in stale:
            del cache[key]

    # -- queries ---------------------------------------------------------

    def get(self, prefix: Prefix) -> Optional[V]:
        """Exact-match lookup; returns the value or ``None``."""
        entry = self._backend.get(prefix)
        if entry is None:
            return None
        return entry.value

    def lookup(self, address: IPAddress) -> Optional[RouteEntry[V]]:
        """Longest-prefix-match for ``address``."""
        cache = self._cache
        if cache is None:
            return self._backend.lookup(address)
        key = (address.BITS, address.value)
        hit = cache.get(key, _MISS)
        if hit is not _MISS:
            self.cache_hits += 1
            cache.move_to_end(key)
            return hit
        self.cache_misses += 1
        entry = self._backend.lookup(address)
        cache[key] = entry
        if len(cache) > self._cache_cap:
            cache.popitem(last=False)
        return entry

    def lookup_all(self, address: IPAddress) -> list[RouteEntry[V]]:
        """All matching entries, shortest prefix first."""
        return self._backend.lookup_all(address)

    def covered_by(self, prefix: Prefix) -> Iterator[RouteEntry[V]]:
        """Iterate entries whose prefix is covered by ``prefix``."""
        for entry in self._backend.entries():
            if prefix.contains_prefix(entry.prefix):
                yield entry

    def entries(self) -> Iterator[RouteEntry[V]]:
        """Iterate all entries in deterministic trie order."""
        yield from self._backend.entries()
