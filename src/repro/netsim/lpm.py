"""Longest-prefix-match routing table backed by a binary trie.

Each vBGP per-neighbor routing table, every router FIB, and the synthetic
Internet's forwarding state are instances of :class:`LpmTable`. The trie
stores one value object per prefix; lookups walk from the root following the
destination address bits and remember the deepest populated node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, Iterator, Optional, TypeVar

from repro.netsim.addr import IPAddress, Prefix

V = TypeVar("V")


@dataclass
class RouteEntry(Generic[V]):
    """A prefix→value binding returned by LPM lookups."""

    prefix: Prefix
    value: V


class _Node:
    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: list[Optional["_Node"]] = [None, None]
        self.entry: Optional[RouteEntry] = None


class LpmTable(Generic[V]):
    """A longest-prefix-match table for IPv4 or IPv6 prefixes.

    The table is protocol-agnostic: IPv4 and IPv6 prefixes may technically
    coexist but, per real-kernel practice, callers keep separate v4/v6 tables.
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix) is not None

    def _walk_to(self, prefix: Prefix, create: bool) -> Optional[_Node]:
        node = self._root
        value = prefix.network.value
        bits = prefix.ADDRESS_CLS.BITS
        for depth in range(prefix.length):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                if not create:
                    return None
                child = _Node()
                node.children[bit] = child
            node = child
        return node

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the entry for ``prefix``."""
        node = self._walk_to(prefix, create=True)
        assert node is not None
        if node.entry is None:
            self._size += 1
        node.entry = RouteEntry(prefix=prefix, value=value)

    def get(self, prefix: Prefix) -> Optional[V]:
        """Exact-match lookup; returns the value or ``None``."""
        node = self._walk_to(prefix, create=False)
        if node is None or node.entry is None:
            return None
        return node.entry.value

    def remove(self, prefix: Prefix) -> bool:
        """Remove the exact entry for ``prefix``. Returns ``True`` if found.

        Empty trie branches are pruned so long-running simulations do not
        leak nodes as routes churn.
        """
        path: list[tuple[_Node, int]] = []
        node = self._root
        value = prefix.network.value
        bits = prefix.ADDRESS_CLS.BITS
        for depth in range(prefix.length):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if node.entry is None:
            return False
        node.entry = None
        self._size -= 1
        # Prune childless, entry-less nodes bottom-up.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.entry is None and child.children == [None, None]:
                parent.children[bit] = None
            else:
                break
        return True

    def lookup(self, address: IPAddress) -> Optional[RouteEntry[V]]:
        """Longest-prefix-match for ``address``."""
        node = self._root
        best = node.entry
        value = address.value
        bits = address.BITS
        for depth in range(bits):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.entry is not None:
                best = node.entry
        return best

    def lookup_all(self, address: IPAddress) -> list[RouteEntry[V]]:
        """All matching entries, shortest prefix first."""
        matches: list[RouteEntry[V]] = []
        node = self._root
        if node.entry is not None:
            matches.append(node.entry)
        value = address.value
        bits = address.BITS
        for depth in range(bits):
            bit = (value >> (bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.entry is not None:
                matches.append(node.entry)
        return matches

    def covered_by(self, prefix: Prefix) -> Iterator[RouteEntry[V]]:
        """Iterate entries whose prefix is covered by ``prefix``."""
        node = self._walk_to(prefix, create=False)
        if node is None:
            return
        yield from self._iter_subtree(node)

    def entries(self) -> Iterator[RouteEntry[V]]:
        """Iterate all entries in trie (prefix) order."""
        yield from self._iter_subtree(self._root)

    def _iter_subtree(self, node: _Node) -> Iterator[RouteEntry[V]]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.entry is not None:
                yield current.entry
            for child in reversed(current.children):
                if child is not None:
                    stack.append(child)

    def clear(self) -> None:
        self._root = _Node()
        self._size = 0
