"""repro.shard — sharded vBGP fan-out with a deterministic
partition/merge layer, proven shard-count-invariant.

The public surface:

* :class:`ShardedFanout` — the engine: partition inbound UPDATE work
  across N modeled worker shards, buffer their output ops, merge them
  back into one ordered stream (:class:`MergeLayer`, keyed by
  :class:`MergeKey`).
* :class:`DirectExecutor` — the unsharded executor the fan-out pipeline
  uses when ``shards=1`` (the seam both paths share).
* :class:`~repro.shard.partition.PartitionFn` /
  :class:`~repro.shard.partition.NeighborPartition` /
  :class:`~repro.shard.partition.PrefixRangePartition` — pluggable,
  seed-stable partition strategies (no builtin ``hash`` anywhere).
* :class:`ShardCostModel` — partition-aware cost attribution for paths
  (speaker export flush) where execution must stay untouched.

Enable via the perf knob: ``repro.perf.set_flags(shards=4)`` — see
DESIGN.md §6f.  Real execution backends (``shard_backend="async"`` /
``"mp"``) live in :mod:`repro.parallel` and plug into the same engine
seam — see DESIGN.md §6j.
"""

from repro.shard.engine import (
    MERGE_LATENCY_BUCKETS,
    DirectExecutor,
    FanoutOp,
    MergeKey,
    MergeLayer,
    ShardCostModel,
    ShardStats,
    ShardWorker,
    ShardedFanout,
)
from repro.shard.partition import (
    STRATEGIES,
    NeighborPartition,
    PartitionFn,
    PrefixRangePartition,
    make_partition,
    stable_mix64,
    stable_str_key,
)

__all__ = [
    "DirectExecutor",
    "FanoutOp",
    "MERGE_LATENCY_BUCKETS",
    "MergeKey",
    "MergeLayer",
    "NeighborPartition",
    "PartitionFn",
    "PrefixRangePartition",
    "STRATEGIES",
    "ShardCostModel",
    "ShardStats",
    "ShardWorker",
    "ShardedFanout",
    "make_partition",
    "stable_mix64",
    "stable_str_key",
]
