"""Deterministic, seed-stable partitioning for the sharded fan-out.

The scale-out engine (:mod:`repro.shard.engine`) splits vBGP update
propagation across N worker shards.  *Which* shard owns a piece of work
must be a pure function of ``(key, seed, shard_count)`` — never of
process identity, insertion order, or the interpreter's randomized
``hash()`` — so that

* the same workload replayed under the same seed lands on the same
  shards (the differential harness depends on this),
* assignments agree across runs **and across Python versions** (builtin
  ``hash()`` of strings is salted per process and of small ints differs
  from CPython release to release for negative values; neither is used
  here), and
* a resurrected shard re-adopts exactly the keys it owned before it was
  killed (the chaos shard-kill scenario depends on this).

Two strategies are provided behind the :class:`PartitionFn` protocol:

``NeighborPartition``
    keys work by the *neighbor* (its global id).  Every update learned
    from one neighbor — and the complete fan-out it triggers — stays on
    one shard.  Because an inbound UPDATE is never split, multi-NLRI
    packing is untouched and sharded output is **byte-identical** to the
    unsharded reference for any shard count.  This is the default
    strategy behind the ``shards=N`` perf knob.

``PrefixRangePartition``
    keys work by *prefix range*: the IPv4 space is carved into ``2**
    range_bits`` equal contiguous ranges (default /12 blocks) and each
    block maps wholly to one shard.  An inbound UPDATE may be split
    across shards, so multi-NLRI packing can legitimately differ from
    the unsharded reference (exactly like the ``fanout_batch`` flag);
    the *decoded route-change stream* and all structural state remain
    identical, which is what the differential harness checks for this
    strategy.

Both strategies mix keys through :func:`stable_mix64`, a splitmix64
finalizer over explicit integer bytes.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.netsim.addr import Prefix

__all__ = [
    "NeighborPartition",
    "PartitionFn",
    "PrefixRangePartition",
    "STRATEGIES",
    "make_partition",
    "stable_mix64",
    "stable_str_key",
]

_MASK64 = (1 << 64) - 1

_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3


def stable_mix64(value: int, seed: int = 0) -> int:
    """A splitmix64-style finalizer: deterministic across processes,
    platforms, and Python versions (no builtin ``hash`` anywhere)."""
    z = (value ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def stable_str_key(text: str) -> int:
    """FNV-1a over the UTF-8 bytes of ``text`` — a process- and
    version-stable integer key for string-identified work (neighbor
    names in :class:`~repro.shard.engine.ShardCostModel`).  Unlike
    builtin ``hash(str)``, this is not salted by ``PYTHONHASHSEED``."""
    acc = _FNV64_OFFSET
    for byte in text.encode("utf-8"):
        acc = ((acc ^ byte) * _FNV64_PRIME) & _MASK64
    return acc


@runtime_checkable
class PartitionFn(Protocol):
    """The pluggable partition strategy contract.

    A partition function is a *pure* mapping from work keys to shard
    ids in ``range(shard_count)``; implementations must not consult any
    process-local state (``id()``, builtin ``hash``, iteration order).
    """

    strategy: str
    shard_count: int
    seed: int

    def shard_for_neighbor(self, global_id: int) -> int:
        """Shard owning work keyed by a neighbor's global id."""
        ...  # pragma: no cover - protocol

    def shard_for_prefix(self, prefix: Prefix) -> int:
        """Shard owning work keyed by a route's prefix."""
        ...  # pragma: no cover - protocol

    def splits_updates(self) -> bool:
        """Whether one inbound UPDATE may be split across shards."""
        ...  # pragma: no cover - protocol


class NeighborPartition:
    """All of one neighbor's churn — RIB, kernel table, fan-out — on
    one shard (the §4.2 per-neighbor ownership model, scaled out)."""

    strategy = "neighbor"

    def __init__(self, shard_count: int, seed: int = 0) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        self.seed = seed

    def shard_for_neighbor(self, global_id: int) -> int:
        return stable_mix64(global_id, self.seed) % self.shard_count

    def shard_for_prefix(self, prefix: Prefix) -> int:
        # Prefix-keyed lookups (data-plane attribution) still resolve;
        # they follow the same mixing so the map stays deterministic.
        network, length = prefix.key()
        return stable_mix64((network << 6) | length,
                            self.seed) % self.shard_count

    def splits_updates(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NeighborPartition(shards={self.shard_count}, "
                f"seed={self.seed})")


class PrefixRangePartition:
    """Contiguous prefix ranges → shards.

    The IPv4 space is divided into ``2**range_bits`` equal blocks
    (default: 4096 /12 ranges); each block is mixed with the seed and
    assigned wholly to one shard.  Prefixes *shorter* than
    ``range_bits`` (rare, covering multiple blocks) are keyed by their
    own network/length so they too map deterministically.
    """

    strategy = "prefix"

    def __init__(self, shard_count: int, seed: int = 0,
                 range_bits: int = 12) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 < range_bits <= 32:
            raise ValueError("range_bits must be in (0, 32]")
        self.shard_count = shard_count
        self.seed = seed
        self.range_bits = range_bits

    def shard_for_neighbor(self, global_id: int) -> int:
        # Neighbor-keyed work (e.g. session-level bookkeeping) follows
        # the same deterministic mixing.
        return stable_mix64(global_id, self.seed) % self.shard_count

    def shard_for_prefix(self, prefix: Prefix) -> int:
        network, length = prefix.key()
        if length < self.range_bits:
            key = (network << 6) | length
        else:
            key = network >> (32 - self.range_bits)
        return stable_mix64(key, self.seed) % self.shard_count

    def splits_updates(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PrefixRangePartition(shards={self.shard_count}, "
                f"seed={self.seed}, range_bits={self.range_bits})")


STRATEGIES = ("neighbor", "prefix")


def make_partition(strategy: str, shard_count: int,
                   seed: int = 0) -> PartitionFn:
    """Build the named partition strategy (the ``shard_partition`` knob)."""
    if strategy == "neighbor":
        return NeighborPartition(shard_count, seed=seed)
    if strategy == "prefix":
        return PrefixRangePartition(shard_count, seed=seed)
    raise ValueError(
        f"unknown shard partition strategy {strategy!r}; "
        f"choose from {', '.join(STRATEGIES)}"
    )
