"""The sharded vBGP fan-out engine: partition → workers → merge.

The paper's mux fans every route learned from every neighbor out to
every experiment (§4.2–§4.4) in one serial loop — the reproduction's
measured bottleneck (``BENCH_update_load``).  This module scales that
loop *out*: a :class:`ShardedFanout` splits the fan-out across N worker
shards using a deterministic :class:`~repro.shard.partition.PartitionFn`
and recombines the per-shard outputs — RIB/kernel-table ops and
announced wire bytes — through a :class:`MergeLayer` into one ordered
stream.

Determinism model
-----------------

The reproduction is a discrete-event simulation, so shard *parallelism*
is modeled, not threaded: work items execute deterministically in
global ingress order, each item's wall-clock cost is charged to the
shard that owns it, and the modeled elapsed time of a drain window is
``max(per-shard busy) + merge cost`` — exactly the wall clock N worker
processes (each owning a subset of neighbor sessions) would exhibit.
What *is* real, not modeled:

* ops are physically buffered per shard and only applied at
  :meth:`ShardedFanout.flush` in stable merge order,
* a killed shard stops processing entirely — its queued work items
  accumulate in its inbox until :meth:`ShardedFanout.resurrect` replays
  them (the chaos ``shard-kill`` scenario), and
* every stateful effect (kernel mutation, session send, counter bump)
  flows through the one merged stream.

Merge ordering
--------------

Every op carries a :class:`MergeKey` ``(sim_time, seq, shard_id,
emit)``:

* ``sim_time`` — scheduler time at which the triggering update entered
  the engine,
* ``seq`` — the *global* ingress sequence number stamped by the
  partition layer (one per work item, monotonically increasing),
* ``shard_id`` — the worker that produced the op,
* ``emit`` — the op's index within its work item.

``seq`` is global rather than per-shard deliberately: it already
totally orders work items in arrival order, which makes the merged
stream **independent of the shard count** — the property the
differential harness proves at shards ∈ {1, 2, 4, 8}.  ``shard_id``
participates only as a tiebreaker (ops from one item share one shard by
construction) and for traceability in telemetry.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, NamedTuple, Optional

from repro import perf
from repro.shard.partition import PartitionFn, stable_mix64, stable_str_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub

__all__ = [
    "DirectExecutor",
    "FanoutOp",
    "MergeKey",
    "MergeLayer",
    "ShardCostModel",
    "ShardStats",
    "ShardWorker",
    "ShardedFanout",
]

_perf_counter = _time.perf_counter

_ENCODE_JOB_CLS = None


def _encode_job_cls():
    """Late-bound :class:`repro.parallel.protocol.EncodeJob`.

    ``repro.parallel`` imports :class:`MergeKey` from this module, so
    the reference must resolve lazily to avoid an import cycle.  The
    model backend never touches it.
    """
    global _ENCODE_JOB_CLS
    if _ENCODE_JOB_CLS is None:
        from repro.parallel.protocol import EncodeJob
        _ENCODE_JOB_CLS = EncodeJob
    return _ENCODE_JOB_CLS


#: Bucket boundaries for the merge-latency histogram (seconds).
MERGE_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)


class MergeKey(NamedTuple):
    """Stable merge-ordering key — see the module docstring for why
    ``seq`` (global ingress order) precedes ``shard_id``."""

    sim_time: float
    seq: int
    shard_id: int
    emit: int


@dataclass
class FanoutOp:
    """One buffered output operation awaiting merge.

    ``kind`` is one of ``"add_route"`` (payload: a
    :class:`~repro.netsim.stack.KernelRoute`), ``"remove_route"``
    (payload: a prefix), ``"send"`` (payload: an
    :class:`~repro.bgp.messages.UpdateMessage`; ``target`` is the
    session), ``"send_job"`` (payload: an
    :class:`~repro.parallel.protocol.EncodeJob` awaiting a backend
    dispatch — never reaches the merge layer) or ``"send_wire"``
    (payload: the pre-encoded wire frame a backend worker produced).
    ``counter`` names the :attr:`VbgpNode.counters` key the merge layer
    bumps when the op applies.
    """

    key: MergeKey
    kind: str
    payload: object
    table_id: Optional[int] = None
    target: object = None
    counter: Optional[str] = None


class DirectExecutor:
    """The unsharded executor: apply every effect immediately.

    This is the seam the sharded engine replaces — the vBGP fan-out
    code calls ``ex.add_route`` / ``ex.remove_route`` / ``ex.send`` and
    never touches the stack or sessions directly, so the exact same
    pipeline body runs sharded or not.
    """

    __slots__ = ("node",)

    def __init__(self, node) -> None:
        self.node = node

    def add_route(self, route, table_id: Optional[int] = None,
                  counter: str = "routes_installed") -> None:
        self.node.stack.add_route(route, table_id=table_id)
        self.node.counters[counter] += 1

    def remove_route(self, prefix, table_id: Optional[int] = None,
                     counter: str = "routes_removed") -> None:
        if self.node.stack.remove_route(prefix, table_id=table_id):
            self.node.counters[counter] += 1

    def send(self, session, message, counter: str) -> None:
        session.send_update(message)
        self.node.counters[counter] += 1


class _ShardEmitter:
    """The buffering executor bound to one worker during item processing."""

    __slots__ = ("worker", "sim_time", "seq", "emit", "collect_jobs")

    def __init__(self, worker: "ShardWorker") -> None:
        self.worker = worker
        self.sim_time = 0.0
        self.seq = 0
        self.emit = 0
        # Real backends (async/mp) set this: sends become EncodeJobs
        # dispatched to workers instead of being encoded inline.
        self.collect_jobs = False

    def bind(self, sim_time: float, seq: int) -> None:
        self.sim_time = sim_time
        self.seq = seq
        self.emit = 0

    def _key(self) -> MergeKey:
        key = MergeKey(self.sim_time, self.seq, self.worker.shard_id,
                       self.emit)
        self.emit += 1
        return key

    def add_route(self, route, table_id: Optional[int] = None,
                  counter: str = "routes_installed") -> None:
        self.worker.buffer.append(FanoutOp(
            key=self._key(), kind="add_route", payload=route,
            table_id=table_id, counter=counter,
        ))

    def remove_route(self, prefix, table_id: Optional[int] = None,
                     counter: str = "routes_removed") -> None:
        self.worker.buffer.append(FanoutOp(
            key=self._key(), kind="remove_route", payload=prefix,
            table_id=table_id, counter=counter,
        ))

    def send(self, session, message, counter: str) -> None:
        if self.collect_jobs:
            # Real backend: defer the encode to a worker.  ``addpath``
            # is captured *now* so the worker produces exactly the
            # bytes ``session.send_update`` would have.
            key = self._key()
            self.worker.buffer.append(FanoutOp(
                key=key, kind="send_job",
                payload=_encode_job_cls()(
                    key=key, session=session,
                    addpath=session.addpath_active,
                    update=message, counter=counter,
                ),
                target=session, counter=counter,
            ))
            return
        if perf.FLAGS.encode_memo:
            # Charge the encode to *this shard*: with the wire memo on,
            # the merge layer's actual send hits the cache, so the
            # expensive work genuinely parallelizes across shards.
            message.encode(addpath=session.addpath_active)
        self.worker.buffer.append(FanoutOp(
            key=self._key(), kind="send", payload=message,
            target=session, counter=counter,
        ))


@dataclass
class _WorkItem:
    """One partitioned unit of fan-out work."""

    seq: int
    sim_time: float
    neighbor: str
    update: object
    shard_id: int


@dataclass
class _SubUpdate:
    """A prefix-partitioned slice of one inbound UPDATE (order-preserving)."""

    withdrawn: List[tuple] = field(default_factory=list)
    announced: List[object] = field(default_factory=list)

    def routes(self) -> List[object]:
        return self.announced


@dataclass
class ShardWorker:
    """One modeled worker shard: inbox, op buffer, liveness, accounting."""

    shard_id: int
    alive: bool = True
    inbox: deque = field(default_factory=deque)
    buffer: List[FanoutOp] = field(default_factory=list)
    items_processed: int = 0
    updates_emitted: int = 0
    busy_s: float = 0.0
    window_busy_s: float = 0.0
    kills: int = 0

    @property
    def queue_depth(self) -> int:
        return len(self.inbox)


@dataclass
class ShardStats:
    """Aggregate engine accounting (feeds telemetry and the benches)."""

    items: int = 0
    splits: int = 0
    drains: int = 0
    ops_applied: int = 0
    ops_dropped: int = 0
    backlog_replayed: int = 0
    # Bounded-inbox shedding (DESIGN.md §6i).  ``withdrawals_shed`` must
    # stay 0 by construction — asserted by the
    # ``no_withdrawal_loss_under_shed`` invariant.
    items_shed: int = 0
    routes_shed: int = 0
    withdrawals_shed: int = 0
    merge_s: float = 0.0
    modeled_elapsed_s: float = 0.0
    # Real-backend accounting (DESIGN.md §6j); all stay 0 under
    # ``shard_backend="model"``.
    dispatches: int = 0
    jobs_dispatched: int = 0
    dispatch_s: float = 0.0
    worker_restarts: int = 0

    def serial_s(self, workers: Iterable[ShardWorker]) -> float:
        """What the same work would have cost on one shard."""
        return sum(worker.busy_s for worker in workers) + self.merge_s

    def speedup(self, workers: Iterable[ShardWorker]) -> float:
        """Modeled scale-out factor versus serial execution."""
        if self.modeled_elapsed_s <= 0.0:
            return 1.0
        return self.serial_s(workers) / self.modeled_elapsed_s


class MergeLayer:
    """Applies a merged op stream against the node, in key order.

    The merge is *stable*: ops are sorted by :class:`MergeKey`, which is
    shard-count-invariant (see module docstring), so the kernel tables,
    counters, and announced wire bytes that leave this layer are
    byte-identical for any shard count.
    """

    def __init__(self, node, stats: ShardStats) -> None:
        self.node = node
        self.stats = stats

    def apply(self, ops: List[FanoutOp]) -> int:
        node = self.node
        stack = node.stack
        counters = node.counters
        applied = 0
        for op in ops:
            if op.kind == "send":
                session = op.target
                if session is None or not session.established:
                    # The session died between emit and merge (only
                    # possible for backlog replayed across a fault);
                    # the (re-)established handler re-syncs full state.
                    self.stats.ops_dropped += 1
                    continue
                session.send_update(op.payload)
                if op.counter is not None:
                    counters[op.counter] += 1
                applied += 1
            elif op.kind == "send_wire":
                # A backend worker already encoded this UPDATE; the
                # session transmits the frame verbatim (same stats and
                # liveness semantics as ``send``).
                session = op.target
                if session is None or not session.established:
                    self.stats.ops_dropped += 1
                    continue
                session.send_wire(op.payload)
                if op.counter is not None:
                    counters[op.counter] += 1
                applied += 1
            elif op.kind == "add_route":
                stack.add_route(op.payload, table_id=op.table_id)
                if op.counter is not None:
                    counters[op.counter] += 1
                applied += 1
            elif op.kind == "remove_route":
                removed = stack.remove_route(op.payload,
                                             table_id=op.table_id)
                if removed and op.counter is not None:
                    counters[op.counter] += 1
                applied += 1
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown op kind {op.kind!r}")
        self.stats.ops_applied += applied
        return applied


class ShardedFanout:
    """Partitioned, merge-ordered execution of the vBGP fan-out.

    ``auto_drain=True`` (the default, and what the ``shards=N`` knob
    uses) flushes the merge layer after every submitted update, so
    external timing is indistinguishable from the unsharded pipeline.
    Benchmarks set ``auto_drain=False`` and flush per arrival window to
    model concurrent arrival across neighbor sessions.
    """

    def __init__(
        self,
        node,
        shard_count: int,
        partition: PartitionFn,
        telemetry: Optional["TelemetryHub"] = None,
        auto_drain: bool = True,
        backend: str = "model",
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if partition.shard_count != shard_count:
            raise ValueError("partition/shard_count mismatch")
        self.node = node
        self.shard_count = shard_count
        self.partition = partition
        self.auto_drain = auto_drain
        self.backend_name = backend
        if backend == "model":
            self._backend = None
        else:
            # Imported late: repro.parallel depends on this module.
            from repro.parallel.backends import make_backend
            self._backend = make_backend(backend, shard_count)
        self.workers = [ShardWorker(shard_id=i) for i in range(shard_count)]
        self._emitters = [_ShardEmitter(worker) for worker in self.workers]
        if self._backend is not None:
            for emitter in self._emitters:
                emitter.collect_jobs = True
        # Bounded inboxes (§6i, opt-in): beyond ``inbox_limit`` queued
        # items per worker, announcement-only items are shed oldest
        # first; ``on_shed(routes)`` reports each shed to the overload
        # governor.  ``None`` (the default) keeps inboxes unbounded.
        self.inbox_limit: Optional[int] = None
        self.on_shed = None
        self.stats = ShardStats()
        self.merge = MergeLayer(node, self.stats)
        self._next_seq = 0
        self._m_merge_latency = None
        self._m_dispatch_latency = None
        if telemetry is not None:
            self._init_telemetry(telemetry)

    # -- telemetry ---------------------------------------------------------

    def _init_telemetry(self, telemetry: "TelemetryHub") -> None:
        registry = telemetry.registry
        node_name = self.node.name
        depth = registry.gauge(
            "vbgp_shard_queue_depth",
            "Work items queued per fan-out shard (scrape-time)",
            labels=("node", "shard"),
        )
        busy = registry.gauge(
            "vbgp_shard_busy_seconds",
            "Cumulative wall-clock charged to each fan-out shard",
            labels=("node", "shard"),
        )
        items = registry.gauge(
            "vbgp_shard_items_processed",
            "Work items (update slices) processed per fan-out shard",
            labels=("node", "shard"),
        )
        updates = registry.gauge(
            "vbgp_shard_updates_emitted",
            "UPDATE sends emitted per fan-out shard",
            labels=("node", "shard"),
        )
        alive = registry.gauge(
            "vbgp_shard_alive",
            "1 while the shard worker is alive, 0 while killed",
            labels=("node", "shard"),
        )
        for worker in self.workers:
            label = str(worker.shard_id)
            depth.labels(node_name, label).set_function(
                lambda w=worker: w.queue_depth
            )
            busy.labels(node_name, label).set_function(
                lambda w=worker: w.busy_s
            )
            items.labels(node_name, label).set_function(
                lambda w=worker: w.items_processed
            )
            updates.labels(node_name, label).set_function(
                lambda w=worker: w.updates_emitted
            )
            alive.labels(node_name, label).set_function(
                lambda w=worker: 1.0 if w.alive else 0.0
            )
        self._m_merge_latency = registry.histogram(
            "vbgp_shard_merge_latency_seconds",
            "Wall-clock per merge drain (sort + ordered apply)",
            labels=("node",),
            buckets=MERGE_LATENCY_BUCKETS,
        ).labels(node_name)
        self._m_dispatch_latency = registry.histogram(
            "vbgp_shard_dispatch_latency_seconds",
            "Wall-clock per backend dispatch round "
            "(ship batches + worker encode + collect)",
            labels=("node", "backend"),
            buckets=MERGE_LATENCY_BUCKETS,
        ).labels(node_name, self.backend_name)

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Work items queued on (dead or not-yet-pumped) shards, plus
        encode jobs a real backend retained across a worker crash."""
        pending = sum(len(worker.inbox) for worker in self.workers)
        if self._backend is not None:
            pending += sum(
                self._backend.pending_jobs(worker.shard_id)
                for worker in self.workers
            )
        return pending

    @property
    def buffered_ops(self) -> int:
        return sum(len(worker.buffer) for worker in self.workers)

    def shard_for_neighbor(self, global_id: int) -> int:
        return self.partition.shard_for_neighbor(global_id)

    def status(self) -> List[dict]:
        """Per-shard status rows (used by the PoP and the CLI)."""
        return [
            {
                "shard": worker.shard_id,
                "alive": worker.alive,
                "queue_depth": worker.queue_depth,
                "items_processed": worker.items_processed,
                "updates_emitted": worker.updates_emitted,
                "busy_s": worker.busy_s,
                "kills": worker.kills,
            }
            for worker in self.workers
        ]

    # -- fault injection (the chaos shard-kill scenario) -------------------

    def kill(self, shard_id: int) -> None:
        """Stop a worker: its queued and future items accumulate.

        With a real backend the shard's OS worker (mp) is terminated
        and joined *now* — a kill with in-flight work must never leave
        an orphaned process or a pending future behind.
        """
        worker = self.workers[shard_id]
        if worker.alive:
            worker.alive = False
            worker.kills += 1
        if self._backend is not None:
            self._backend.on_kill(shard_id)

    def resurrect(self, shard_id: int) -> int:
        """Revive a worker and replay its backlog through the merge.

        Returns the number of backlog items replayed.  Replay preserves
        ingress (``seq``) order within the backlog, so the healed state
        converges to exactly what in-order processing would have built.

        With a real backend, encode jobs the dead worker never finished
        replay *first* (they carry earlier ``seq`` than anything still
        in the inbox — their control phase already ran), on a freshly
        spawned worker; the inbox backlog then replays as before.
        """
        worker = self.workers[shard_id]
        worker.alive = True
        replayed_frames = 0
        if self._backend is not None:
            outcome = self._backend.resurrect_shard(shard_id)
            for shard, busy in outcome.shard_busy.items():
                self.workers[shard].busy_s += busy
                self.workers[shard].window_busy_s += busy
            for job, frame in outcome.completed:
                worker.buffer.append(FanoutOp(
                    key=job.key, kind="send_wire", payload=frame,
                    target=job.session, counter=job.counter,
                ))
            replayed_frames = len(outcome.completed)
            self.stats.worker_restarts = getattr(
                self._backend, "worker_restarts", 0
            )
        backlog = len(worker.inbox)
        if backlog:
            self._pump()
        if backlog or replayed_frames:
            self.flush()
            self.stats.backlog_replayed += backlog
        return backlog

    def close(self) -> None:
        """Release backend resources (worker processes, event loop).

        Idempotent; the model backend has nothing to release.  Buffered
        ops are *not* flushed — callers drain before closing.
        """
        if self._backend is not None:
            self._backend.close()
            self._backend = None
            # Degrade gracefully if somehow used after close: inline
            # encode (the reference path) instead of stranding jobs.
            for emitter in self._emitters:
                emitter.collect_jobs = False

    # -- the pipeline ------------------------------------------------------

    def submit(self, neighbor, update) -> None:
        """Partition one inbound UPDATE and run the alive shards."""
        now = self.node.scheduler.now
        for shard_id, sub_update in self._split(neighbor, update):
            item = _WorkItem(
                seq=self._next_seq,
                sim_time=now,
                neighbor=neighbor.name,
                update=sub_update,
                shard_id=shard_id,
            )
            self._next_seq += 1
            self.workers[shard_id].inbox.append(item)
            self.stats.items += 1
            self._enforce_inbox_limit(self.workers[shard_id])
        self._pump()
        if self.auto_drain:
            self.flush()

    def _split(self, neighbor, update):
        partition = self.partition
        if not partition.splits_updates():
            shard = partition.shard_for_neighbor(neighbor.virtual.global_id)
            # The whole UPDATE passes through untouched: multi-NLRI
            # packing (and the encode memo) are preserved byte-for-byte.
            return ((shard, update),)
        buckets: dict[int, _SubUpdate] = {}
        order: List[int] = []

        def bucket(shard: int) -> _SubUpdate:
            sub = buckets.get(shard)
            if sub is None:
                sub = buckets[shard] = _SubUpdate()
                order.append(shard)
            return sub

        for prefix, path_id in update.withdrawn:
            bucket(partition.shard_for_prefix(prefix)).withdrawn.append(
                (prefix, path_id)
            )
        for route in update.routes():
            bucket(partition.shard_for_prefix(route.prefix)).announced.append(
                route
            )
        if len(order) > 1:
            self.stats.splits += 1
        return tuple((shard, buckets[shard]) for shard in order)

    def _enforce_inbox_limit(self, worker: ShardWorker) -> None:
        """Shed announcement-only items past the inbox bound.

        Sheds oldest first (BGP's last-message-wins makes the survivors
        state-convergent) and never touches an item carrying withdrawals
        or no announcements at all — if only unsheddable items remain
        the inbox is allowed to overshoot the bound rather than lose a
        withdrawal.
        """
        limit = self.inbox_limit
        if limit is None:
            return
        while len(worker.inbox) > limit:
            shed_index = None
            for index, item in enumerate(worker.inbox):
                update = item.update
                if getattr(update, "withdrawn", ()):
                    continue
                if not update.routes():
                    continue
                shed_index = index
                break
            if shed_index is None:
                return
            item = worker.inbox[shed_index]
            routes = len(item.update.routes())
            del worker.inbox[shed_index]
            self.stats.items_shed += 1
            self.stats.routes_shed += routes
            if self.on_shed is not None:
                self.on_shed(routes)

    def _pump(self) -> None:
        """Process every alive worker's inbox, in global ingress order."""
        pending: List[_WorkItem] = []
        for worker in self.workers:
            if worker.alive and worker.inbox:
                pending.extend(worker.inbox)
                worker.inbox.clear()
        if not pending:
            return
        pending.sort(key=lambda item: item.seq)
        node = self.node
        for item in pending:
            neighbor = node.upstreams.get(item.neighbor)
            worker = self.workers[item.shard_id]
            if neighbor is None:
                worker.items_processed += 1
                continue
            emitter = self._emitters[item.shard_id]
            emitter.bind(item.sim_time, item.seq)
            buffered_before = len(worker.buffer)
            started = _perf_counter()
            node._process_upstream_changes(neighbor, item.update, emitter)
            elapsed = _perf_counter() - started
            worker.busy_s += elapsed
            worker.window_busy_s += elapsed
            worker.items_processed += 1
            # Only the ops this item appended are new; the buffer may
            # still hold sends from earlier (undrained) items in batch
            # mode, so count the tail rather than the whole buffer.
            worker.updates_emitted += sum(
                1 for op in worker.buffer[buffered_before:]
                if op.kind in ("send", "send_job")
            )

    def _dispatch_jobs(self) -> None:
        """Fan buffered encode jobs out to the real backend.

        Runs at :meth:`flush` time so one drain window's jobs cross the
        backend in a single dispatch round (one batch per shard — the
        mp backend amortises its IPC over the whole window).  The
        control phase already ran in global ingress order, so the jobs
        are pure: each is an (update, addpath) pair whose wire bytes
        are order-independent.  Completed jobs are rewritten in place
        as ``send_wire`` ops (MergeKey untouched — the merged stream
        keeps its backend-invariant order); a shard whose worker died
        keeps its whole batch retained backend-side and is marked dead
        for the kill/resurrect replay path.
        """
        jobs_by_shard: dict[int, list] = {}
        ops_by_job: dict[int, FanoutOp] = {}
        for worker in self.workers:
            for op in worker.buffer:
                if op.kind == "send_job":
                    job = op.payload
                    jobs_by_shard.setdefault(
                        worker.shard_id, []
                    ).append(job)
                    ops_by_job[id(job)] = op
        # Jobs emitted before a kill() landed: retain them backend-side
        # (their control phase is committed work) instead of handing
        # them to a worker the kill already reaped — resurrect_shard
        # replays them on the fresh worker.
        for shard_id in [
            shard for shard in jobs_by_shard
            if not self.workers[shard].alive
        ]:
            self._backend.retain_jobs(
                shard_id, jobs_by_shard.pop(shard_id)
            )
            stranded = self.workers[shard_id]
            stranded.buffer[:] = [
                op for op in stranded.buffer if op.kind != "send_job"
            ]
        if not jobs_by_shard:
            return
        started = _perf_counter()
        outcome = self._backend.dispatch(jobs_by_shard)
        elapsed = _perf_counter() - started
        self.stats.dispatches += 1
        self.stats.jobs_dispatched += sum(
            len(jobs) for jobs in jobs_by_shard.values()
        )
        self.stats.dispatch_s += elapsed
        if self._m_dispatch_latency is not None:
            self._m_dispatch_latency.observe(elapsed)
        for shard_id, busy in outcome.shard_busy.items():
            shard_worker = self.workers[shard_id]
            shard_worker.busy_s += busy
            shard_worker.window_busy_s += busy
        for job, frame in outcome.completed:
            op = ops_by_job[id(job)]
            op.kind = "send_wire"
            op.payload = frame
        for shard_id in outcome.failed_shards:
            failed = self.workers[shard_id]
            # The crashed batch is retained backend-side as EncodeJobs;
            # drop the stranded ops so the merge only sees finished
            # work.  resurrect() re-dispatches and re-materialises them
            # with their original MergeKeys.
            failed.buffer[:] = [
                op for op in failed.buffer if op.kind != "send_job"
            ]
            if failed.alive:
                failed.alive = False
                failed.kills += 1
        self.stats.worker_restarts = getattr(
            self._backend, "worker_restarts", 0
        )

    def flush(self) -> int:
        """Drain all shard buffers through the merge layer, in order."""
        if self._backend is not None:
            self._dispatch_jobs()
        ops: List[FanoutOp] = []
        window_max = 0.0
        for worker in self.workers:
            if worker.buffer:
                ops.extend(worker.buffer)
                worker.buffer.clear()
            if worker.window_busy_s > window_max:
                window_max = worker.window_busy_s
            worker.window_busy_s = 0.0
        if not ops and window_max == 0.0:
            return 0
        ops.sort(key=lambda op: op.key)
        started = _perf_counter()
        applied = self.merge.apply(ops)
        merge_elapsed = _perf_counter() - started
        self.stats.drains += 1
        self.stats.merge_s += merge_elapsed
        self.stats.modeled_elapsed_s += window_max + merge_elapsed
        if self._m_merge_latency is not None:
            self._m_merge_latency.observe(merge_elapsed)
        return applied


class ShardCostModel:
    """Shard-attributed cost accounting without op buffering.

    Used where partition-aware *modeling* is wanted but the execution
    path must stay untouched — e.g. :class:`~repro.bgp.speaker.
    BgpSpeaker` charges each neighbor's export flush to the shard that
    would own that neighbor, so the scale-out bench can model parallel
    export without changing a single emitted byte.
    """

    def __init__(self, shard_count: int, seed: int = 0) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        self.seed = seed
        self.busy_s = [0.0] * shard_count
        self.charges = [0] * shard_count

    def shard_for(self, key) -> int:
        if isinstance(key, str):
            key = stable_str_key(key)
        return stable_mix64(int(key), self.seed) % self.shard_count

    def charge(self, key, seconds: float) -> int:
        shard = self.shard_for(key)
        self.busy_s[shard] += seconds
        self.charges[shard] += 1
        return shard

    @property
    def serial_s(self) -> float:
        return sum(self.busy_s)

    @property
    def modeled_elapsed_s(self) -> float:
        return max(self.busy_s) if self.busy_s else 0.0

    def speedup(self) -> float:
        modeled = self.modeled_elapsed_s
        if modeled <= 0.0:
            return 1.0
        return self.serial_s / modeled
