"""Conformance & differential-correctness subsystem.

Three machine-checked correctness surfaces (DESIGN.md §6e):

* :mod:`repro.conformance.strategies` — Hypothesis strategies generating
  arbitrary *canonical-form* BGP messages for round-trip
  (``decode(encode(m)) == m``) and re-encode-idempotence properties
  (imported lazily: the production platform does not need hypothesis);
* :mod:`repro.conformance.fuzzer` — a seeded byte-mutation fuzzer for
  the wire decoder with a persistent crash corpus under ``tests/corpus/``
  that is replayed before new mutations;
* :mod:`repro.conformance.differential` — replays a generated update
  workload through every :mod:`repro.perf` toggle combination and
  asserts byte-identical Loc-RIBs, kernel tables, and announced wire
  bytes against the all-off reference;
* :mod:`repro.conformance.invariants` — the platform invariant catalog
  (next-hop/virtual-MAC bijectivity, ADD-PATH completeness, community
  propagation, cross-experiment isolation, RIB/kernel consistency) as
  composable checkers consumed by tests, the chaos runner, and the
  ``peering verify`` CLI.
"""

from repro.conformance.differential import (
    DifferentialHarness,
    DifferentialReport,
    all_flag_combinations,
)
from repro.conformance.fuzzer import (
    CrashRecord,
    DecoderFuzzer,
    FuzzReport,
    default_corpus_dir,
    load_corpus,
)
from repro.conformance.invariants import (
    CATALOG,
    ConformanceContext,
    InvariantReport,
    run_invariants,
)

__all__ = [
    "CATALOG",
    "ConformanceContext",
    "CrashRecord",
    "DecoderFuzzer",
    "DifferentialHarness",
    "DifferentialReport",
    "FuzzReport",
    "InvariantReport",
    "all_flag_combinations",
    "default_corpus_dir",
    "load_corpus",
    "run_invariants",
]
