"""Differential correctness of the :mod:`repro.perf` fast paths.

PR 1 gated every optimisation behind a flag and promised that toggling
any of them changes *speed, never results*.  This module turns that
promise into a machine-checked property: :class:`DifferentialHarness`
replays one seeded churn workload — plus two experiment-announcement
checkpoints exercising the §3.2.1 control communities — through **every**
combination of the perf toggles and compares each run against the
all-flags-off reference:

* the experiment client's Loc-RIB (every candidate path + the best
  path, per prefix),
* the external upstream speaker's Loc-RIB (what the Internet sees),
* the vBGP node's per-neighbor Adj-RIB-In and the kernel routing
  tables (the §5 table-per-neighbor state),
* the node's route-churn counters, and
* the *announced wire bytes* in both directions.  ``fanout_batch``
  legitimately changes UPDATE packing, so raw frame bytes are compared
  within groups sharing that toggle, while the decoded per-route change
  stream must be identical across **all** combinations.

Everything is canonicalised to bytes before comparison, so a report's
``mismatches`` genuinely means "the fast path computed something
different", not "a set iterated in a different order".
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.bgp.attributes import PathAttributes, Route, local_route
from repro.bgp.messages import (
    HEADER_SIZE,
    MSG_UPDATE,
    MessageDecoder,
    UpdateMessage,
)
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.internet.fulltable import FullTableGenerator
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.capabilities import ExperimentProfile
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry
from repro.vbgp.communities import announce_to_neighbor, block_neighbor

__all__ = [
    "BACKENDS",
    "DifferentialHarness",
    "DifferentialReport",
    "SHARD_COUNTS",
    "all_flag_combinations",
    "attr_fingerprint",
    "loc_rib_snapshot",
    "route_fingerprint",
    "subsampled_flag_combinations",
]

#: The boolean fast-path toggles (``lpm_cache_size`` is a tuning knob,
#: not a behaviour switch, and stays at its default).  The last three are
#: the full-table RIB engine (DESIGN.md §6g).
TOGGLES: Tuple[str, ...] = (
    "stride_lpm",
    "lpm_cache",
    "encode_memo",
    "intern_attrs",
    "fanout_batch",
    "rib_columnar",
    "incremental_bestpath",
    "encode_zero_copy",
)

#: The shard counts the scale-out sweep proves equivalent (ISSUE 5 /
#: DESIGN.md §6f); ``1`` is the unsharded direct-path reference.
SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: The real execution backends the backend sweep proves byte-identical
#: to the sync reference (ISSUE 9 / DESIGN.md §6j).  ``"model"`` is the
#: PR 5 in-process reference.
BACKENDS: Tuple[str, ...] = ("model", "async", "mp")

PLATFORM_ASN = 47065
UPSTREAM_ASN = 65010
EXPERIMENT_PREFIX = "184.164.224.0/24"
TUNNEL_IP = "100.125.0.2"
TUNNEL_MAC = "02:aa:00:00:00:02"


def all_flag_combinations() -> List[Dict[str, bool]]:
    """Every perf-toggle combination, the all-off reference first."""
    combos = []
    for values in itertools.product((False, True), repeat=len(TOGGLES)):
        combos.append(dict(zip(TOGGLES, values)))
    return combos


def subsampled_flag_combinations(
    count: int, seed: int = 0
) -> List[Dict[str, bool]]:
    """A curated subset of the flag lattice (reference always first).

    With eight toggles the full lattice is 256 combinations — too many
    to replay a large workload through each.  The subsample keeps the
    high-signal corners deterministically: the all-off reference, every
    single-flag-on combination (isolating each fast path), all-on (the
    shipping configuration), then fills up to ``count`` with seeded
    random interior points so repeated CI runs cover the same lattice
    sample.
    """
    combos: List[Dict[str, bool]] = [{name: False for name in TOGGLES}]
    for name in TOGGLES:
        combos.append({**combos[0], name: True})
    combos.append({name: True for name in TOGGLES})
    rng = random.Random(seed)
    seen = {tuple(sorted(c.items())) for c in combos}
    while len(combos) < count:
        combo = {name: rng.random() < 0.5 for name in TOGGLES}
        key = tuple(sorted(combo.items()))
        if key in seen:
            continue
        seen.add(key)
        combos.append(combo)
    return combos[:max(count, 1)]


def combo_label(combo: Dict[str, bool]) -> str:
    on = [name for name in TOGGLES if combo.get(name)]
    return "+".join(on) if on else "all_off"


# ---------------------------------------------------------------------------
# Canonicalisation
# ---------------------------------------------------------------------------


def _attr_fingerprint(attributes: Optional[PathAttributes]) -> tuple:
    if attributes is None:
        return ()
    aggregator = attributes.aggregator
    return (
        attributes.origin.value,
        tuple(
            (segment.kind.value, segment.asns)
            for segment in attributes.as_path.segments
        ),
        str(attributes.next_hop),
        attributes.med,
        attributes.local_pref,
        attributes.atomic_aggregate,
        None if aggregator is None else (aggregator[0], str(aggregator[1])),
        tuple(sorted(
            (c.asn, c.value) for c in attributes.communities
        )),
        tuple(sorted(
            (c.global_admin, c.local1, c.local2)
            for c in attributes.large_communities
        )),
        tuple(sorted(
            (u.type_code, u.flags, u.value) for u in attributes.unknown
        )),
    )


def _route_fingerprint(route: Route) -> tuple:
    return (
        str(route.prefix),
        route.path_id,
        _attr_fingerprint(route.attributes),
    )


def _changes_from_frames(frames: List[bytes], addpath: bool) -> List[tuple]:
    """Decode captured UPDATE frames into a canonical change stream."""
    changes: List[tuple] = []
    decoder = MessageDecoder()
    decoder.addpath = addpath
    for frame in frames:
        decoder.feed(frame)
        message = decoder.next_message()
        assert isinstance(message, UpdateMessage)
        for prefix, path_id in message.withdrawn:
            changes.append(("W", str(prefix), path_id))
        for route in message.routes():
            changes.append(("A",) + _route_fingerprint(route))
    return changes


def _loc_rib_snapshot(speaker: BgpSpeaker) -> list:
    rib = speaker.loc_rib
    snapshot = []
    for prefix in sorted(rib.prefixes(), key=str):
        best = rib.best(prefix)
        candidates = sorted(
            (entry.peer, _route_fingerprint(entry.route))
            for entry in rib.candidates(prefix)
        )
        snapshot.append((
            str(prefix),
            None if best is None else _route_fingerprint(best.route),
            candidates,
        ))
    return snapshot


# Public aliases: the intent layer's snapshot/diff machinery and the
# fleet differential harness (repro.fleet, §6k) reuse this module's
# canonicalisation and wire-tap so "byte-identical" means the same thing
# in every differential leg.
attr_fingerprint = _attr_fingerprint
route_fingerprint = _route_fingerprint
loc_rib_snapshot = _loc_rib_snapshot
changes_from_frames = _changes_from_frames


class _WireTap:
    """Records the UPDATE frames delivered to one channel endpoint.

    Wraps ``channel.on_data`` *after* the receiving session attached, so
    the session still sees every byte; the tap reframes the stream
    itself (chunks may split frames) and keeps only type-2 messages.
    """

    def __init__(self, channel) -> None:
        self.frames: List[bytes] = []
        self._buffer = bytearray()
        inner = channel.on_data

        def tapped(data: bytes) -> None:
            self._buffer.extend(data)
            self._drain()
            if inner is not None:
                inner(data)

        channel.on_data = tapped

    def _drain(self) -> None:
        while len(self._buffer) >= HEADER_SIZE:
            length = int.from_bytes(self._buffer[16:18], "big")
            if length < HEADER_SIZE or len(self._buffer) < length:
                return
            frame = bytes(self._buffer[:length])
            del self._buffer[:length]
            if frame[18] == MSG_UPDATE:
                self.frames.append(frame)


WireTap = _WireTap


# ---------------------------------------------------------------------------
# The scenario (one run under one flag combination)
# ---------------------------------------------------------------------------


@dataclass
class _RunResult:
    """Everything one scenario run produced, canonicalised."""

    structural: bytes  # must match the reference byte-for-byte
    changes_to_experiment: bytes  # decoded change stream, order-free
    changes_to_upstream: bytes
    wire_to_experiment: bytes  # raw frames; compared per fanout group
    wire_to_upstream: bytes


@dataclass
class DifferentialReport:
    """Outcome of a full differential sweep."""

    combinations: int = 0
    updates: int = 0
    mode: str = "flag"  # "flag" | "shard" | "backend"
    workload: str = "churn"  # "churn" | "fulltable"
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        verdict = "ok" if self.ok else "DIVERGED"
        line = (
            f"differential: {verdict} ({self.combinations} {self.mode} "
            f"combinations x {self.updates} updates)"
        )
        if self.workload != "churn":
            line += f" [workload={self.workload}]"
        if self.mismatches:
            line += "\n" + "\n".join(
                f"  - {mismatch}" for mismatch in self.mismatches
            )
        return line


class DifferentialHarness:
    """Replays one workload under every perf-flag combination.

    ``update_count`` sizes the churn workload (the CI gate uses 5000);
    ``seed`` makes the workload reproducible.  :meth:`run` returns a
    :class:`DifferentialReport`; a non-empty ``mismatches`` list means a
    fast path changed functional output.

    ``workload`` selects the replayed stream: ``"churn"`` (the default,
    a seeded AMS-IX-shaped update process over ``prefix_count``
    prefixes) or ``"fulltable"`` (a ``prefix_count``-prefix DFZ-shaped
    table load followed by ``update_count`` churn-tail events — the
    full-table scale the §6g RIB engine exists for).
    """

    def __init__(self, update_count: int = 5000, seed: int = 20260806,
                 prefix_count: int = 5000,
                 workload: str = "churn") -> None:
        if workload not in ("churn", "fulltable"):
            raise ValueError(f"unknown workload: {workload!r}")
        self.update_count = update_count
        self.seed = seed
        self.prefix_count = prefix_count
        self.workload = workload

    # -- scenario ----------------------------------------------------------

    def _run_scenario(self) -> _RunResult:
        scheduler = Scheduler()
        pop = PointOfPresence(
            scheduler,
            PopConfig(name="diff", pop_id=0, kind="ixp"),
            platform_asn=PLATFORM_ASN,
            platform_asns=frozenset({PLATFORM_ASN}),
            registry=GlobalNeighborRegistry(),
            enforcer_state=EnforcerState(),
        )
        port = pop.provision_neighbor("upstream", UPSTREAM_ASN, kind="peer")

        # The external AS at the far end of the upstream session, so
        # experiment exports land in a real Loc-RIB and on a real wire.
        upstream = BgpSpeaker(
            scheduler,
            SpeakerConfig(asn=UPSTREAM_ASN, router_id=port.address),
        )
        upstream.attach_neighbor(
            NeighborConfig(
                name="to-pop",
                peer_asn=None,
                local_address=port.address,
            ),
            port.channel,
        )
        upstream_tap = _WireTap(port.channel)

        # The experiment: an ADD-PATH client speaker behind the tunnel.
        from repro.bgp.transport import connect_pair

        ours, theirs = connect_pair(scheduler, rtt=0.001)
        exp_prefix = IPv4Prefix.parse(EXPERIMENT_PREFIX)
        tunnel_ip = IPv4Address.parse(TUNNEL_IP)
        pop.node.attach_experiment(
            name="x",
            asn=PLATFORM_ASN,
            prefixes=(exp_prefix,),
            tunnel_ip=tunnel_ip,
            tunnel_mac=MacAddress.parse(TUNNEL_MAC),
            channel=ours,
        )
        pop.control_enforcer.register_experiment(ExperimentProfile(
            name="x",
            asns=frozenset({PLATFORM_ASN}),
            prefixes=(exp_prefix,),
        ))
        client = BgpSpeaker(
            scheduler,
            SpeakerConfig(asn=PLATFORM_ASN, router_id=tunnel_ip),
        )
        client.allow_own_asn_in = True  # churn AS paths may contain 47065
        client.attach_neighbor(
            NeighborConfig(
                name="to-pop",
                peer_asn=None,
                local_address=tunnel_ip,
                addpath=True,
            ),
            theirs,
        )
        client_tap = _WireTap(theirs)
        scheduler.run_for(5)

        # Workload: a seeded update stream with two announcement
        # checkpoints that flip the §3.2.1 whitelist/blacklist behaviour
        # mid-stream.  For "churn" that is the AMS-IX-shaped process; for
        # "fulltable" the full DFZ-shaped table load plus a churn tail.
        if self.workload == "fulltable":
            generator = FullTableGenerator(
                prefix_count=self.prefix_count, seed=self.seed
            )
            updates = list(generator.table_updates())
            updates.extend(generator.churn(self.update_count))
        else:
            generator = ChurnGenerator(
                AMSIX_PROFILE, prefix_count=self.prefix_count, seed=self.seed
            )
            updates = generator.make_updates(self.update_count)
        gid = pop.node.upstreams["upstream"].virtual.global_id
        checkpoints = {
            len(updates) // 3: (announce_to_neighbor(gid),),
            (2 * len(updates)) // 3: (block_neighbor(gid),),
        }
        for index, update in enumerate(updates):
            communities = checkpoints.get(index)
            if communities is not None:
                client.originate(local_route(
                    exp_prefix, next_hop=tunnel_ip,
                    communities=communities,
                ))
            pop.node._upstream_update("upstream", update)
            scheduler.run_until(scheduler.now)
        scheduler.run_for(5)

        node = pop.node
        neighbor = node.upstreams["upstream"]
        adj_rib_in = sorted(
            (str(prefix), source_id, _attr_fingerprint(route.attributes))
            for (prefix, source_id), route in neighbor.rib.items()
        )
        kernel = []
        for table_id in sorted(pop.stack.tables):
            table = pop.stack.tables[table_id]
            kernel.append((table_id, sorted(
                (str(entry.prefix), str(entry.value.next_hop),
                 entry.value.out_iface)
                for entry in table.entries()
            )))
        structural = (
            ("client_loc_rib", _loc_rib_snapshot(client)),
            ("upstream_loc_rib", _loc_rib_snapshot(upstream)),
            ("adj_rib_in", adj_rib_in),
            ("kernel", kernel),
            ("installed", node.counters["routes_installed"]),
            ("removed", node.counters["routes_removed"]),
        )
        to_exp = _changes_from_frames(client_tap.frames, addpath=True)
        to_up = _changes_from_frames(upstream_tap.frames, addpath=False)
        # Release backend resources (mp worker processes, event loops)
        # before the next combination builds a fresh platform.
        node.close_shard_engine()
        return _RunResult(
            structural=repr(structural).encode(),
            changes_to_experiment=repr(sorted(to_exp)).encode(),
            changes_to_upstream=repr(sorted(to_up)).encode(),
            wire_to_experiment=b"".join(client_tap.frames),
            wire_to_upstream=b"".join(upstream_tap.frames),
        )

    # -- sweep -------------------------------------------------------------

    def run(self, combinations: Optional[List[Dict[str, bool]]] = None,
            progress=None,
            subsample: Optional[int] = None) -> DifferentialReport:
        """Run the sweep; ``progress(label)`` is called per combination.

        ``subsample`` picks a curated lattice subset (see
        :func:`subsampled_flag_combinations`) instead of all
        ``2**len(TOGGLES)`` combinations; ignored when an explicit
        ``combinations`` list is given.
        """
        if combinations is not None:
            combos = list(combinations)
        elif subsample is not None:
            combos = subsampled_flag_combinations(subsample, seed=self.seed)
        else:
            combos = all_flag_combinations()
        report = DifferentialReport(
            combinations=len(combos), updates=self.update_count,
            workload=self.workload,
        )
        reference: Optional[_RunResult] = None
        wire_reference: Dict[bool, Tuple[str, _RunResult]] = {}
        for combo in combos:
            label = combo_label(combo)
            if progress is not None:
                progress(label)
            with perf.flags(**combo):
                result = self._run_scenario()
            if reference is None:
                reference = result
            else:
                for attribute, what in (
                    ("structural", "Loc-RIB/kernel/counter state"),
                    ("changes_to_experiment",
                     "decoded route changes toward the experiment"),
                    ("changes_to_upstream",
                     "decoded route changes toward the upstream"),
                ):
                    if getattr(result, attribute) != getattr(
                        reference, attribute
                    ):
                        report.mismatches.append(
                            f"{label}: {what} diverged from all_off"
                        )
            batching = bool(combo.get("fanout_batch"))
            anchor = wire_reference.get(batching)
            if anchor is None:
                wire_reference[batching] = (label, result)
            else:
                anchor_label, anchor_result = anchor
                for attribute, what in (
                    ("wire_to_experiment", "experiment-bound wire bytes"),
                    ("wire_to_upstream", "upstream-bound wire bytes"),
                ):
                    if getattr(result, attribute) != getattr(
                        anchor_result, attribute
                    ):
                        report.mismatches.append(
                            f"{label}: {what} diverged from "
                            f"{anchor_label} (same fanout_batch)"
                        )
        return report

    def run_shards(
        self,
        counts: Tuple[int, ...] = SHARD_COUNTS,
        partition: str = "neighbor",
        progress=None,
    ) -> DifferentialReport:
        """Prove shard-count invariance (ISSUE 5 acceptance criterion).

        Replays the same workload at every shard count in ``counts``
        (all other perf flags at their defaults) and compares each run
        against the first — ``counts`` should start at ``1`` so the
        reference is the unsharded direct path.  With the default
        ``"neighbor"`` partition the announced **wire bytes** must also
        be byte-identical: one inbound UPDATE is never split, so
        multi-NLRI packing survives sharding.  The ``"prefix"``
        partition may legitimately split updates (like ``fanout_batch``
        changes packing), so it is held to the structural + decoded
        change-stream contract only.
        """
        report = DifferentialReport(
            combinations=len(counts), updates=self.update_count,
            mode="shard", workload=self.workload,
        )
        reference: Optional[_RunResult] = None
        reference_label = ""
        for count in counts:
            label = f"shards={count}"
            if partition != "neighbor":
                label += f"/{partition}"
            if progress is not None:
                progress(label)
            with perf.flags(shards=count, shard_partition=partition):
                result = self._run_scenario()
            if reference is None:
                reference = result
                reference_label = label
                continue
            checks = [
                ("structural", "Loc-RIB/kernel/counter state"),
                ("changes_to_experiment",
                 "decoded route changes toward the experiment"),
                ("changes_to_upstream",
                 "decoded route changes toward the upstream"),
            ]
            if partition == "neighbor":
                checks += [
                    ("wire_to_experiment", "experiment-bound wire bytes"),
                    ("wire_to_upstream", "upstream-bound wire bytes"),
                ]
            for attribute, what in checks:
                if getattr(result, attribute) != getattr(
                    reference, attribute
                ):
                    report.mismatches.append(
                        f"{label}: {what} diverged from {reference_label}"
                    )
        return report

    def run_backends(
        self,
        backends: Tuple[str, ...] = ("async", "mp"),
        counts: Tuple[int, ...] = SHARD_COUNTS,
        partition: str = "neighbor",
        progress=None,
    ) -> DifferentialReport:
        """Prove real-backend invariance (ISSUE 9 acceptance criterion).

        Replays the same workload once on the sync reference
        (``model`` backend, ``shards=1`` — the direct, unsharded path)
        and then under every ``backend × shard-count`` combination,
        comparing each run byte-for-byte against the reference.  With
        the default ``"neighbor"`` partition the announced **wire
        bytes** must be identical: the control phase runs in global
        ingress order in the parent (so ADD-PATH path-id allocation is
        untouched) and backend workers only encode, so neither the
        event-loop nor the worker-pool backend may change a single
        emitted byte.
        """
        combos: List[Tuple[str, int]] = [("model", 1)]
        combos.extend(
            (backend, count) for backend in backends for count in counts
        )
        report = DifferentialReport(
            combinations=len(combos), updates=self.update_count,
            mode="backend", workload=self.workload,
        )
        reference: Optional[_RunResult] = None
        reference_label = ""
        for backend, count in combos:
            label = f"backend={backend}/shards={count}"
            if partition != "neighbor":
                label += f"/{partition}"
            if progress is not None:
                progress(label)
            with perf.flags(shards=count, shard_partition=partition,
                            shard_backend=backend):
                result = self._run_scenario()
            if reference is None:
                reference = result
                reference_label = label
                continue
            checks = [
                ("structural", "Loc-RIB/kernel/counter state"),
                ("changes_to_experiment",
                 "decoded route changes toward the experiment"),
                ("changes_to_upstream",
                 "decoded route changes toward the upstream"),
            ]
            if partition == "neighbor":
                checks += [
                    ("wire_to_experiment", "experiment-bound wire bytes"),
                    ("wire_to_upstream", "upstream-bound wire bytes"),
                ]
            for attribute, what in checks:
                if getattr(result, attribute) != getattr(
                    reference, attribute
                ):
                    report.mismatches.append(
                        f"{label}: {what} diverged from {reference_label}"
                    )
        return report
