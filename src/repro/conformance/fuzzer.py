"""A seeded byte-mutation fuzzer for the BGP wire decoder.

The contract under test: for *any* byte stream, :class:`MessageDecoder`
either yields messages or raises a structured :class:`~repro.bgp.errors.
BgpError` (which the session layer maps to a NOTIFICATION).  Anything
else — ``struct.error``, ``IndexError``, ``ValueError`` … — is a crash:
a malformed frame from a misbehaving peer would take the session process
down instead of tearing down one session (the paper's §7.3 CVE anecdote
is exactly this failure class).

Mutations are seeded and deterministic.  Every crash is recorded with a
replayable frame; :func:`save_crash` persists it to the corpus directory
(``tests/corpus/`` in this repo) and :meth:`DecoderFuzzer.run` replays
the saved corpus *first*, so a fixed crash can never silently regress.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.bgp.attributes import (
    AsPath,
    Community,
    LargeCommunity,
    Origin,
    PathAttributes,
    UnknownAttribute,
)
from repro.bgp.errors import BgpError
from repro.bgp.messages import (
    AddPathCapability,
    FourOctetAsCapability,
    GracefulRestartCapability,
    KeepaliveMessage,
    MessageDecoder,
    MultiprotocolCapability,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UnknownCapability,
    UpdateMessage,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix

__all__ = [
    "CrashRecord",
    "DecoderFuzzer",
    "FuzzReport",
    "default_corpus_dir",
    "load_corpus",
    "save_crash",
    "seed_frames",
]

# Cap on messages drained from one mutated feed (mutations can splice
# many frames together; the decoder must terminate regardless).
_MAX_DRAIN = 64


@dataclass(frozen=True)
class CrashRecord:
    """One decoder crash: the frame that caused it and what it raised."""

    frame: bytes
    addpath: bool
    error: str
    note: str = ""

    @property
    def digest(self) -> str:
        tag = b"addpath" if self.addpath else b"plain"
        return hashlib.sha256(tag + b":" + self.frame).hexdigest()[:12]

    def to_json(self) -> str:
        return json.dumps(
            {
                "frame_hex": self.frame.hex(),
                "addpath": self.addpath,
                "error": self.error,
                "note": self.note,
            },
            indent=2,
            sort_keys=True,
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CrashRecord":
        raw = json.loads(text)
        return cls(
            frame=bytes.fromhex(raw["frame_hex"]),
            addpath=bool(raw.get("addpath", False)),
            error=raw.get("error", ""),
            note=raw.get("note", ""),
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    seed: int
    iterations: int = 0
    corpus_replayed: int = 0
    clean_decodes: int = 0
    structured_errors: int = 0
    crashes: list[CrashRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.crashes

    def format(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.crashes)} CRASH(ES)"
        lines = [
            f"fuzz seed={self.seed}: {self.iterations} mutated frames, "
            f"{self.corpus_replayed} corpus replays -> {verdict}",
            f"  clean decodes:     {self.clean_decodes}",
            f"  structured errors: {self.structured_errors}",
        ]
        for crash in self.crashes:
            lines.append(
                f"  crash {crash.digest}: {crash.error} "
                f"(addpath={crash.addpath}, {len(crash.frame)} bytes)"
            )
        return "\n".join(lines)


def default_corpus_dir() -> Path:
    """``tests/corpus/`` at the repository root (alongside ``src/``)."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


def load_corpus(corpus_dir: Optional[Path] = None) -> list[CrashRecord]:
    directory = default_corpus_dir() if corpus_dir is None else corpus_dir
    records = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.json")):
        records.append(CrashRecord.from_json(path.read_text()))
    return records


def save_crash(record: CrashRecord,
               corpus_dir: Optional[Path] = None) -> Path:
    directory = default_corpus_dir() if corpus_dir is None else corpus_dir
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"crash-{record.digest}.json"
    path.write_text(record.to_json())
    return path


# ---------------------------------------------------------------------------
# Seed frames: a deterministic set of valid frames covering every message
# type and the extensions (ADD-PATH, GR, large ASNs, unknown attributes).
# Mutations start from structure, not noise, so they reach deep decode
# paths (attribute loops, capability lists) far more often.
# ---------------------------------------------------------------------------


def _seed_attributes() -> PathAttributes:
    return PathAttributes(
        origin=Origin.IGP,
        as_path=AsPath.from_asns(65010, 3356, 15169),
        next_hop=IPv4Address.parse("100.65.0.1"),
        med=40,
        local_pref=120,
        atomic_aggregate=True,
        aggregator=(65010, IPv4Address.parse("100.65.0.9")),
        communities=frozenset({Community(47065, 12), Community(65010, 300)}),
        large_communities=frozenset({LargeCommunity(47065, 1, 2)}),
        unknown=(
            UnknownAttribute(
                type_code=42,
                flags=(UnknownAttribute.FLAG_OPTIONAL
                       | UnknownAttribute.FLAG_TRANSITIVE
                       | UnknownAttribute.FLAG_PARTIAL),
                value=b"\xde\xad\xbe\xef",
            ),
        ),
    )


def seed_frames() -> list[tuple[bytes, bool]]:
    """``(frame, addpath)`` pairs; deterministic and valid."""
    attrs = _seed_attributes()
    p1 = IPv4Prefix.parse("184.164.224.0/24")
    p2 = IPv4Prefix.parse("10.20.0.0/16")
    default = IPv4Prefix.parse("0.0.0.0/0")
    plain_update = UpdateMessage(
        attributes=attrs, nlri=((p1, None), (p2, None), (default, None))
    )
    addpath_update = UpdateMessage(
        attributes=attrs, nlri=((p1, 7), (p2, 190000)),
        withdrawn=((default, 3),),
    )
    withdrawal = UpdateMessage(withdrawn=((p1, None), (p2, None)))
    open_plain = OpenMessage(
        asn=65010, hold_time=90,
        bgp_id=IPv4Address.parse("10.0.0.1"),
        capabilities=(
            MultiprotocolCapability(),
            FourOctetAsCapability(asn=65010),
            AddPathCapability(),
        ),
    )
    open_rich = OpenMessage(
        asn=4_200_000_001, hold_time=180,
        bgp_id=IPv4Address.parse("10.0.0.2"),
        capabilities=(
            MultiprotocolCapability(),
            GracefulRestartCapability(restart_time=180, restarted=True),
            FourOctetAsCapability(asn=4_200_000_001),
            AddPathCapability(mode=3),
            UnknownCapability(code=73, value=b"\x01\x02"),
        ),
    )
    frames = [
        (open_plain.encode(), False),
        (open_rich.encode(), False),
        (KeepaliveMessage().encode(), False),
        (NotificationMessage(code=6, subcode=2, data=b"bye").encode(),
         False),
        (RouteRefreshMessage().encode(), False),
        (plain_update.encode(), False),
        (withdrawal.encode(), False),
        (UpdateMessage.end_of_rib().encode(), False),
        (addpath_update.encode(addpath=True), True),
        (UpdateMessage(withdrawn=((p1, 7),)).encode(addpath=True), True),
    ]
    return frames


# ---------------------------------------------------------------------------
# The fuzzer
# ---------------------------------------------------------------------------


class DecoderFuzzer:
    """Mutate valid frames and feed them to fresh decoders."""

    def __init__(self, seed: int = 0,
                 corpus_dir: Optional[Path] = None) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.corpus_dir = (
            default_corpus_dir() if corpus_dir is None else corpus_dir
        )
        self.seeds = seed_frames()

    # -- single-frame harness -------------------------------------------

    @staticmethod
    def classify(frame: bytes, addpath: bool,
                 chunks: Optional[Iterable[bytes]] = None) -> str:
        """Feed one frame to a fresh decoder and classify the outcome.

        Returns ``"clean"`` (messages decoded, buffer drained without
        incident), ``"structured"`` (a :class:`BgpError` — the contract
        for malformed input), or the crash description for anything
        else.
        """
        decoder = MessageDecoder()
        decoder.addpath = addpath
        try:
            if chunks is None:
                decoder.feed(frame)
            else:
                for chunk in chunks:
                    decoder.feed(chunk)
            for _ in range(_MAX_DRAIN):
                if decoder.next_message() is None:
                    break
        except BgpError:
            return "structured"
        except Exception as exc:  # noqa: BLE001 - the point of the fuzzer
            return f"{type(exc).__name__}: {exc}"
        return "clean"

    @classmethod
    def feed(cls, frame: bytes, addpath: bool,
             chunks: Optional[Iterable[bytes]] = None) -> Optional[str]:
        """``None`` if the decoder behaved, else the crash description."""
        outcome = cls.classify(frame, addpath, chunks)
        return None if outcome in ("clean", "structured") else outcome

    # -- mutations -------------------------------------------------------

    def mutate(self, frame: bytes) -> bytes:
        data = bytearray(frame)
        strategy = self.rng.randrange(8)
        if strategy == 0 and data:  # flip one bit
            index = self.rng.randrange(len(data))
            data[index] ^= 1 << self.rng.randrange(8)
        elif strategy == 1 and data:  # overwrite a byte
            data[self.rng.randrange(len(data))] = self.rng.randrange(256)
        elif strategy == 2 and data:  # truncate
            data = data[:self.rng.randrange(len(data))]
        elif strategy == 3:  # append noise
            data += bytes(
                self.rng.randrange(256)
                for _ in range(self.rng.randrange(1, 16))
            )
        elif strategy == 4 and data:  # insert noise inside
            at = self.rng.randrange(len(data))
            blob = bytes(
                self.rng.randrange(256)
                for _ in range(self.rng.randrange(1, 8))
            )
            data = data[:at] + blob + data[at:]
        elif strategy == 5 and len(data) >= 19:  # corrupt the length field
            value = self.rng.choice(
                [0, 18, 19, len(data), len(data) - 1, len(data) + 1,
                 4096, 4097, 65535, self.rng.randrange(65536)]
            )
            data[16] = (value >> 8) & 0xFF
            data[17] = value & 0xFF
        elif strategy == 6 and data:  # zero or saturate a window
            at = self.rng.randrange(len(data))
            width = min(self.rng.randrange(1, 8), len(data) - at)
            fill = self.rng.choice([0x00, 0xFF])
            for i in range(at, at + width):
                data[i] = fill
        else:  # splice two seed frames
            other, _ = self.seeds[self.rng.randrange(len(self.seeds))]
            cut_a = self.rng.randrange(len(data) + 1) if data else 0
            cut_b = self.rng.randrange(len(other) + 1)
            data = data[:cut_a] + other[cut_b:]
        # Occasionally stack a second mutation for compound damage.
        if self.rng.random() < 0.25:
            return self.mutate(bytes(data))
        return bytes(data)

    def _chunked(self, frame: bytes) -> Optional[list[bytes]]:
        """Sometimes split the frame to exercise incremental framing."""
        if len(frame) < 2 or self.rng.random() >= 0.2:
            return None
        cut = self.rng.randrange(1, len(frame))
        return [frame[:cut], frame[cut:]]

    # -- the run loop ----------------------------------------------------

    def run(self, iterations: int = 50_000,
            save_crashes: bool = False) -> FuzzReport:
        """Replay the saved corpus, then fuzz for ``iterations`` frames."""
        report = FuzzReport(seed=self.seed)
        for record in load_corpus(self.corpus_dir):
            report.corpus_replayed += 1
            error = self.feed(record.frame, record.addpath)
            if error is not None:
                report.crashes.append(CrashRecord(
                    frame=record.frame, addpath=record.addpath,
                    error=error, note=f"corpus regression: {record.note}",
                ))
        seen_digests = {crash.digest for crash in report.crashes}
        for _ in range(iterations):
            base, addpath = self.seeds[self.rng.randrange(len(self.seeds))]
            frame = self.mutate(base)
            report.iterations += 1
            outcome = self.classify(frame, addpath,
                                    chunks=self._chunked(frame))
            if outcome == "clean":
                report.clean_decodes += 1
                continue
            if outcome == "structured":
                report.structured_errors += 1
                continue
            crash = CrashRecord(frame=frame, addpath=addpath,
                                error=outcome,
                                note=f"found by seed {self.seed}")
            if crash.digest not in seen_digests:
                seen_digests.add(crash.digest)
                report.crashes.append(crash)
                if save_crashes:
                    save_crash(crash, self.corpus_dir)
        return report
