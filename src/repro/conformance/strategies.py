"""Hypothesis strategies for arbitrary *canonical-form* BGP messages.

The codec's encoder normalizes on the way out (sorted communities, the
PARTIAL bit forced on optional-transitive unknowns, AS_TRANS plus the
4-octet capability for large ASNs, ``path_id`` only under ADD-PATH).
Round-trip properties — ``decode(encode(m)) == m`` — therefore hold for
the *canonical form* of each message, and these strategies generate
exactly that form:

* NLRI networks have their host bits masked off;
* an UPDATE carries attributes iff it announces NLRI, and every
  announcing attribute set has a NEXT_HOP;
* path ids are integers under ADD-PATH and ``None`` otherwise;
* unknown attributes are optional, carry PARTIAL when transitive, avoid
  the EXTENDED bit (values ≤ 255 bytes) and the codec-known type codes;
* OPEN hold times avoid the RFC-invalid 1 and 2; an ASN ≥ 2^16 always
  travels with its matching 4-octet-AS capability; unknown capability
  codes avoid the recognized ones.

Everything here stays well under the 4096-byte message ceiling.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    LargeCommunity,
    Origin,
    PathAttributes,
    SegmentType,
    UnknownAttribute,
)
from repro.bgp.messages import (
    AddPathCapability,
    FourOctetAsCapability,
    GracefulRestartCapability,
    KeepaliveMessage,
    MultiprotocolCapability,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UnknownCapability,
    UpdateMessage,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix

# Attribute type codes the codec interprets itself; unknown attributes
# must avoid these or the decoder will (correctly) parse them as typed.
KNOWN_ATTR_CODES = frozenset({1, 2, 3, 4, 5, 6, 7, 8, 32})
# Capability codes with dedicated decoders.
KNOWN_CAP_CODES = frozenset({1, 64, 65, 69})

_UNKNOWN_ATTR_CODES = sorted(set(range(9, 256)) - KNOWN_ATTR_CODES)
_UNKNOWN_CAP_CODES = sorted(set(range(2, 256)) - KNOWN_CAP_CODES)

FLAG_OPTIONAL = UnknownAttribute.FLAG_OPTIONAL
FLAG_TRANSITIVE = UnknownAttribute.FLAG_TRANSITIVE
FLAG_PARTIAL = UnknownAttribute.FLAG_PARTIAL

u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
asns = st.integers(min_value=1, max_value=(1 << 32) - 1)


@st.composite
def addresses(draw) -> IPv4Address:
    return IPv4Address(draw(u32))


@st.composite
def prefixes(draw) -> IPv4Prefix:
    """A canonical IPv4 prefix: host bits below the mask are zero."""
    length = draw(st.integers(min_value=0, max_value=32))
    value = draw(u32)
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return IPv4Prefix(IPv4Address(value & mask), length)


@st.composite
def as_path_segments(draw) -> AsPathSegment:
    kind = draw(st.sampled_from(
        [SegmentType.AS_SEQUENCE, SegmentType.AS_SET]
    ))
    members = draw(st.lists(asns, min_size=1, max_size=8))
    return AsPathSegment(kind, tuple(members))


@st.composite
def as_paths(draw) -> AsPath:
    segments = draw(st.lists(as_path_segments(), min_size=0, max_size=3))
    return AsPath(tuple(segments))


@st.composite
def communities(draw) -> Community:
    return Community(draw(u16), draw(u16))


@st.composite
def large_communities(draw) -> LargeCommunity:
    return LargeCommunity(draw(u32), draw(u32), draw(u32))


@st.composite
def unknown_attributes(draw) -> UnknownAttribute:
    """A canonical unknown attribute (see module docstring)."""
    type_code = draw(st.sampled_from(_UNKNOWN_ATTR_CODES))
    transitive = draw(st.booleans())
    if transitive:
        flags = FLAG_OPTIONAL | FLAG_TRANSITIVE | FLAG_PARTIAL
    else:
        flags = FLAG_OPTIONAL
    value = draw(st.binary(min_size=0, max_size=64))
    return UnknownAttribute(type_code=type_code, flags=flags, value=value)


@st.composite
def path_attributes(draw, with_next_hop: bool = True) -> PathAttributes:
    """A full attribute set; ``with_next_hop=True`` guarantees NEXT_HOP
    (mandatory when the attribute set travels with announced NLRI)."""
    if with_next_hop:
        next_hop = draw(addresses())
    else:
        next_hop = draw(st.none() | addresses())
    aggregator = draw(
        st.none() | st.tuples(u32.filter(lambda a: a >= 1), addresses())
    )
    unknowns = draw(st.lists(unknown_attributes(), min_size=0, max_size=3,
                             unique_by=lambda u: u.type_code))
    return PathAttributes(
        origin=draw(st.sampled_from(list(Origin))),
        as_path=draw(as_paths()),
        next_hop=next_hop,
        med=draw(st.none() | u32),
        local_pref=draw(st.none() | u32),
        atomic_aggregate=draw(st.booleans()),
        aggregator=aggregator,
        communities=frozenset(
            draw(st.lists(communities(), min_size=0, max_size=6))
        ),
        large_communities=frozenset(
            draw(st.lists(large_communities(), min_size=0, max_size=4))
        ),
        unknown=tuple(unknowns),
    )


@st.composite
def nlri_entries(draw, addpath: bool):
    prefix = draw(prefixes())
    path_id = draw(u32) if addpath else None
    return (prefix, path_id)


@st.composite
def update_messages(draw, addpath: bool = False) -> UpdateMessage:
    """A canonical UPDATE: attributes iff NLRI, NEXT_HOP present, path
    ids iff ``addpath``.  Includes withdrawal-only and End-of-RIB
    (fully empty) shapes."""
    nlri = tuple(draw(st.lists(nlri_entries(addpath), min_size=0,
                               max_size=8)))
    withdrawn = tuple(draw(st.lists(nlri_entries(addpath), min_size=0,
                                    max_size=8)))
    attributes = draw(path_attributes()) if nlri else None
    return UpdateMessage(attributes=attributes, nlri=nlri,
                         withdrawn=withdrawn)


@st.composite
def capabilities(draw, asn: int):
    """A canonical capability list; always includes the 4-octet-AS
    capability when ``asn`` does not fit 16 bits (otherwise AS_TRANS
    would not round-trip)."""
    caps = []
    if draw(st.booleans()):
        caps.append(MultiprotocolCapability(afi=draw(u16),
                                            safi=draw(st.integers(0, 255))))
    if draw(st.booleans()):
        caps.append(AddPathCapability(mode=draw(st.integers(0, 3))))
    if draw(st.booleans()):
        caps.append(GracefulRestartCapability(
            restart_time=draw(st.integers(0, 0x0FFF)),
            restarted=draw(st.booleans()),
            forwarding=draw(st.booleans()),
        ))
    for code in draw(st.lists(st.sampled_from(_UNKNOWN_CAP_CODES),
                              min_size=0, max_size=2, unique=True)):
        caps.append(UnknownCapability(
            code=code, value=draw(st.binary(min_size=0, max_size=16))
        ))
    caps = draw(st.permutations(caps))
    if asn >= (1 << 16) or draw(st.booleans()):
        position = draw(st.integers(0, len(caps)))
        caps.insert(position, FourOctetAsCapability(asn=asn))
    return tuple(caps)


@st.composite
def open_messages(draw) -> OpenMessage:
    asn = draw(asns)
    hold_time = draw(
        st.just(0) | st.integers(min_value=3, max_value=(1 << 16) - 1)
    )
    return OpenMessage(
        asn=asn,
        hold_time=hold_time,
        bgp_id=draw(addresses()),
        capabilities=draw(capabilities(asn)),
    )


@st.composite
def notification_messages(draw) -> NotificationMessage:
    return NotificationMessage(
        code=draw(st.integers(1, 6)),
        subcode=draw(st.integers(0, 255)),
        data=draw(st.binary(min_size=0, max_size=32)),
    )


@st.composite
def route_refresh_messages(draw) -> RouteRefreshMessage:
    return RouteRefreshMessage(afi=draw(u16),
                               safi=draw(st.integers(0, 255)))


def keepalive_messages():
    return st.just(KeepaliveMessage())


def messages():
    """Any canonical message decodable on a non-ADD-PATH session.

    ADD-PATH UPDATEs change NLRI parsing and need the decoder flag set,
    so tests draw ``update_messages(addpath=True)`` explicitly.
    """
    return st.one_of(
        open_messages(),
        update_messages(addpath=False),
        notification_messages(),
        route_refresh_messages(),
        keepalive_messages(),
    )
