"""The platform invariant catalog: composable checkers (DESIGN.md §6e).

Each checker takes a :class:`ConformanceContext` — a structural view of
a running deployment (PoPs, experiment clients, allocations, external
neighbor speakers) — and returns an :class:`InvariantReport` carrying a
verdict, how much evidence was examined, and every concrete violation.

The same checkers serve three consumers:

* unit/integration tests (each invariant also has a deliberately-broken
  fixture it must catch, see ``tests/conformance/test_invariants.py``),
* the chaos runner, which evaluates them after every fault scenario,
* the ``peering verify`` CLI, which runs them against the live platform.

Catalog (keys of :data:`CATALOG`):

``vmac_bijectivity``
    Every (local or backbone-learned) neighbor's virtual MAC, global
    IP, and kernel-table id are exactly the deterministic images of its
    global id, the MAC decodes back to that id, and no two neighbors at
    a PoP share a MAC, local VIP, or table (§3.2.2 identity scheme).
``addpath_completeness``
    Every route in every Adj-RIB-In has an allocated ADD-PATH id toward
    every attached experiment with an established session — i.e. full
    visibility, the §3.2.1 promise.
``community_propagation``
    For every experiment announcement, each external neighbor speaker
    holds the route iff the §3.2.1 whitelist/blacklist communities
    select that neighbor, and exported routes carry no control
    communities (they are consumed, never leaked).
``no_cross_experiment_leakage``
    No client sees a route for a prefix allocated to a different
    experiment (§5 isolation).
``kernel_consistency``
    Every per-neighbor kernel routing table contains exactly the
    prefixes present in that neighbor's Adj-RIB-In (§5
    table-per-neighbor design).
``no_withdrawal_loss_under_shed``
    Overload shedding (DESIGN.md §6i) never drops a withdrawal or a
    control-class update: every ingress queue's shed accounting shows
    zero withdrawal/control sheds, an idle queue's withdrawal intake
    balances its deliveries, and the shard engine's bounded inboxes
    shed announcements only.  Vacuously satisfied (checked=0) when a
    PoP has no overload governor installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional

from repro.vbgp.allocator import (
    global_neighbor_ip,
    global_neighbor_mac,
    neighbor_mac_global_id,
    neighbor_table_id,
)
from repro.vbgp.communities import ANNOUNCE_ASN, is_control, select_targets

__all__ = [
    "CATALOG",
    "ConformanceContext",
    "InvariantReport",
    "community_export_expectations",
    "run_invariants",
]

_MAX_VIOLATIONS = 20  # keep reports readable; the count is still exact


@dataclass
class InvariantReport:
    """Verdict of one invariant over one context."""

    name: str
    ok: bool = True
    checked: int = 0
    violation_count: int = 0
    violations: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.violation_count += 1
        if len(self.violations) < _MAX_VIOLATIONS:
            self.violations.append(message)

    def format(self) -> str:
        verdict = "ok" if self.ok else "VIOLATED"
        line = f"{self.name}: {verdict} (checked={self.checked})"
        if self.violations:
            line += "\n" + "\n".join(
                f"  - {violation}" for violation in self.violations
            )
            if self.violation_count > len(self.violations):
                hidden = self.violation_count - len(self.violations)
                line += f"\n  … and {hidden} more"
        return line


@dataclass
class ConformanceContext:
    """A structural view of a deployment, as the checkers need it.

    ``pops`` maps PoP name → an object with ``.node`` (the
    :class:`~repro.vbgp.node.VbgpNode`) and ``.stack``; ``clients`` maps
    experiment name → :class:`~repro.toolkit.client.ExperimentClient`;
    ``allocated`` maps experiment name → its leased prefixes;
    ``neighbor_speakers`` maps an upstream neighbor's name → the
    *external* :class:`~repro.bgp.speaker.BgpSpeaker` representing that
    AS (needed only by ``community_propagation``); ``neighbor_pops``
    maps that neighbor name → its PoP.
    """

    pops: Mapping[str, object]
    clients: Mapping[str, object] = field(default_factory=dict)
    allocated: Mapping[str, frozenset] = field(default_factory=dict)
    neighbor_speakers: Mapping[str, object] = field(default_factory=dict)
    neighbor_pops: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def from_platform(
        cls,
        platform,
        clients: Optional[Mapping[str, object]] = None,
        neighbor_speakers: Optional[Mapping[str, object]] = None,
        neighbor_pops: Optional[Mapping[str, str]] = None,
    ) -> "ConformanceContext":
        """Build a context from a :class:`PeeringPlatform` and clients."""
        clients = dict(clients or {})
        allocated: Dict[str, frozenset] = {}
        for name in clients:
            lease = platform.resources.lease_for(name)
            allocated[name] = (
                frozenset(lease.prefixes) if lease else frozenset()
            )
        return cls(
            pops=platform.pops,
            clients=clients,
            allocated=allocated,
            neighbor_speakers=dict(neighbor_speakers or {}),
            neighbor_pops=dict(neighbor_pops or {}),
        )

    def _neighbors(self, node) -> Iterable[tuple[str, object]]:
        """(label, neighbor-with-rib-and-virtual) over local + remote."""
        for name, upstream in node.upstreams.items():
            yield name, upstream
        for gid, remote in node.remote_neighbors.items():
            yield f"remote-gid{gid}", remote


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------


def check_vmac_bijectivity(ctx: ConformanceContext) -> InvariantReport:
    report = InvariantReport("vmac_bijectivity")
    for pop_name, pop in ctx.pops.items():
        macs: Dict[object, str] = {}
        vips: Dict[object, str] = {}
        tables: Dict[int, str] = {}
        for label, neighbor in ctx._neighbors(pop.node):
            virtual = neighbor.virtual
            gid = virtual.global_id
            report.checked += 1
            where = f"{pop_name}/{label}(gid={gid})"
            if virtual.mac != global_neighbor_mac(gid):
                report.fail(f"{where}: MAC {virtual.mac} is not the "
                            f"deterministic image of gid {gid}")
            if neighbor_mac_global_id(virtual.mac) != gid:
                report.fail(f"{where}: MAC {virtual.mac} does not decode "
                            f"back to gid {gid}")
            if virtual.global_ip != global_neighbor_ip(gid):
                report.fail(f"{where}: global IP {virtual.global_ip} "
                            f"mismatches gid {gid}")
            if virtual.table_id != neighbor_table_id(gid):
                report.fail(f"{where}: table id {virtual.table_id} "
                            f"mismatches gid {gid}")
            for mapping, key, what in (
                (macs, virtual.mac, "virtual MAC"),
                (vips, virtual.local_ip, "local VIP"),
                (tables, virtual.table_id, "kernel table"),
            ):
                owner = mapping.get(key)
                if owner is not None and owner != where:
                    report.fail(f"{where}: {what} {key} already owned by "
                                f"{owner}")
                mapping[key] = where
    return report


def check_addpath_completeness(ctx: ConformanceContext) -> InvariantReport:
    report = InvariantReport("addpath_completeness")
    for pop_name, pop in ctx.pops.items():
        node = pop.node
        for exp_name, exp in node.experiments.items():
            session = exp.session
            if session is None or not session.established:
                continue
            for label, neighbor in ctx._neighbors(node):
                gid = neighbor.virtual.global_id
                for (prefix, source_id) in neighbor.rib.keys():
                    report.checked += 1
                    if (gid, prefix, source_id) not in exp.path_ids:
                        report.fail(
                            f"{pop_name}: route {prefix} (path {source_id})"
                            f" from {label} has no ADD-PATH id toward "
                            f"experiment {exp_name}"
                        )
    return report


def community_export_expectations(
    node, neighbor_name: str
) -> Optional[Dict[object, bool]]:
    """Expected §3.2.1 export presence at one upstream neighbor.

    Returns prefix → "the control communities select this neighbor",
    covering local experiment announcements and backbone-learned
    experiment routes, or ``None`` when the neighbor is unknown or its
    session is down (no exports can be expected over a down session).

    This is the single definition of "what should this neighbor hold":
    :func:`check_community_propagation` consumes it in-process, and the
    fleet runtime (DESIGN.md §6k) computes it *inside* each PoP process
    so the driver can compare against its external speakers without
    reaching into another process's node.
    """
    upstream = node.upstreams.get(neighbor_name)
    if upstream is None:
        return None
    session = upstream.session
    if session is None or not session.established:
        return None
    gid = upstream.virtual.global_id
    candidates = [
        (n.virtual.global_id, node.pop_id)
        for n in node.upstreams.values()
    ]
    # Expected prefixes at this neighbor: local experiment
    # announcements whose communities select it, plus backbone-learned
    # experiment routes that explicitly whitelist a neighbor here.
    expectations: Dict[object, bool] = {}
    for exp in node.experiments.values():
        for route in exp.announced.values():
            selected = gid in select_targets(route, candidates)
            expectations[route.prefix] = (
                expectations.get(route.prefix, False) or selected
            )
    for route in node.remote_exp_routes.values():
        whitelisted = any(
            c.asn == ANNOUNCE_ASN for c in route.communities
        )
        selected = whitelisted and gid in select_targets(
            route, candidates
        )
        expectations[route.prefix] = (
            expectations.get(route.prefix, False) or selected
        )
    return expectations


def check_community_propagation(ctx: ConformanceContext) -> InvariantReport:
    report = InvariantReport("community_propagation")
    for neighbor_name, speaker in ctx.neighbor_speakers.items():
        pop_name = ctx.neighbor_pops.get(neighbor_name)
        pop = ctx.pops.get(pop_name) if pop_name is not None else None
        if pop is None:
            continue
        node = pop.node
        expectations = community_export_expectations(node, neighbor_name)
        if expectations is None:
            continue
        upstream = node.upstreams[neighbor_name]
        gid = upstream.virtual.global_id
        for prefix, expected in expectations.items():
            report.checked += 1
            exported = speaker.best_route(prefix)
            if expected and exported is None:
                report.fail(
                    f"{neighbor_name}: expected export of {prefix} "
                    f"(communities select gid {gid}) but the neighbor "
                    "does not hold it"
                )
            elif not expected and exported is not None:
                report.fail(
                    f"{neighbor_name}: holds {prefix} although the "
                    f"control communities exclude gid {gid}"
                )
            if exported is not None:
                leaked = sorted(
                    str(c) for c in exported.communities if is_control(c)
                )
                if leaked:
                    report.fail(
                        f"{neighbor_name}: export of {prefix} leaks "
                        f"control communities {', '.join(leaked)}"
                    )
    return report


def check_no_cross_experiment_leakage(
    ctx: ConformanceContext,
) -> InvariantReport:
    report = InvariantReport("no_cross_experiment_leakage")
    for name, client in ctx.clients.items():
        foreign = set()
        for other, prefixes in ctx.allocated.items():
            if other != name:
                foreign |= set(prefixes)
        for pop_name, view in client.pops.items():
            for route in view.routes.values():
                report.checked += 1
                if route.prefix in foreign:
                    report.fail(
                        f"client {name}@{pop_name}: holds {route.prefix}, "
                        "which is allocated to another experiment"
                    )
    return report


def check_kernel_consistency(ctx: ConformanceContext) -> InvariantReport:
    report = InvariantReport("kernel_consistency")
    for pop_name, pop in ctx.pops.items():
        node = pop.node
        for label, neighbor in ctx._neighbors(node):
            prefixes = {key[0] for key in neighbor.rib.keys()}
            table = pop.stack.tables.get(neighbor.virtual.table_id)
            report.checked += max(1, len(prefixes))
            if table is None:
                if prefixes:
                    report.fail(
                        f"{pop_name}/{label}: {len(prefixes)} RIB prefixes"
                        " but no kernel table"
                    )
                continue
            if len(table) != len(prefixes):
                report.fail(
                    f"{pop_name}/{label}: kernel table holds {len(table)} "
                    f"routes, Adj-RIB-In holds {len(prefixes)} prefixes"
                )
            for prefix in prefixes:
                if prefix not in table:
                    report.fail(
                        f"{pop_name}/{label}: {prefix} in Adj-RIB-In but "
                        "missing from the kernel table"
                    )
    return report


def check_no_withdrawal_loss_under_shed(
    ctx: ConformanceContext,
) -> InvariantReport:
    report = InvariantReport("no_withdrawal_loss_under_shed")
    for pop_name, pop in ctx.pops.items():
        governor = getattr(pop.node, "overload", None)
        if governor is None:
            continue
        for peer, queue in governor.queues.items():
            stats = queue.stats
            report.checked += 1
            where = f"{pop_name}/{peer}"
            if stats.shed_withdrawals > 0:
                report.fail(
                    f"{where}: {stats.shed_withdrawals} withdrawals shed "
                    "from the ingress queue"
                )
            if stats.shed_control > 0:
                report.fail(
                    f"{where}: {stats.shed_control} control-class updates "
                    "shed from the ingress queue"
                )
            if queue.pending == 0:
                accounted = (
                    stats.withdrawals_delivered
                    + stats.withdrawals_dropped_on_close
                )
                if stats.withdrawals_admitted != accounted:
                    report.fail(
                        f"{where}: {stats.withdrawals_admitted} withdrawals"
                        f" admitted but only {accounted} accounted for "
                        "(delivered + dropped-on-close)"
                    )
        engine = pop.node.shard_engine
        if engine is not None:
            report.checked += 1
            if engine.stats.withdrawals_shed > 0:
                report.fail(
                    f"{pop_name}: shard engine shed "
                    f"{engine.stats.withdrawals_shed} withdrawals at a "
                    "bounded inbox"
                )
    return report


CATALOG: Dict[str, Callable[[ConformanceContext], InvariantReport]] = {
    "vmac_bijectivity": check_vmac_bijectivity,
    "addpath_completeness": check_addpath_completeness,
    "community_propagation": check_community_propagation,
    "no_cross_experiment_leakage": check_no_cross_experiment_leakage,
    "kernel_consistency": check_kernel_consistency,
    "no_withdrawal_loss_under_shed": check_no_withdrawal_loss_under_shed,
}


def run_invariants(
    ctx: ConformanceContext,
    names: Optional[Iterable[str]] = None,
) -> Dict[str, InvariantReport]:
    """Run (a subset of) the catalog; returns name → report, in order."""
    selected = list(CATALOG) if names is None else list(names)
    reports: Dict[str, InvariantReport] = {}
    for name in selected:
        checker = CATALOG.get(name)
        if checker is None:
            raise KeyError(
                f"unknown invariant {name!r}; choose from "
                f"{', '.join(CATALOG)}"
            )
        reports[name] = checker(ctx)
    return reports
