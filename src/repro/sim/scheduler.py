"""Deterministic discrete-event scheduler.

All simulated components share one :class:`Scheduler`. Events fire in
timestamp order; ties are broken by insertion order, which makes runs fully
reproducible. Time is a float measured in seconds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the scheduler is used inconsistently."""


class Event:
    """A scheduled callback.

    The heap itself stores ``(time, seq, event)`` tuples so ordering is
    resolved by C-level tuple comparison (the dataclass-generated ``__lt__``
    this replaces dominated the datapath's profile). Ties break by
    insertion order, which keeps runs fully reproducible. ``cancelled``
    events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        self.cancelled = True


class Scheduler:
    """Virtual clock plus event queue.

    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.call_later(1.5, lambda: fired.append(sched.now))
    >>> sched.run()
    >>> fired
    [1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self._now}"
            )
        seq = next(self._seq)
        event = Event(when, seq, callback)
        heapq.heappush(self._queue, (when, seq, event))
        return event

    def call_later(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback)

    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.call_at(self._now, callback)

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for _, _, event in self._queue if not event.cancelled)

    def step(self) -> bool:
        """Run the next event. Returns ``False`` when the queue is empty."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains. Returns the number of events fired."""
        if self._running:
            raise SimulationError("scheduler is already running")
        self._running = True
        try:
            fired = 0
            while self.step():
                fired += 1
                if fired >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a scheduling loop"
                    )
            return fired
        finally:
            self._running = False

    def run_until(self, deadline: float, max_events: int = 10_000_000) -> int:
        """Run events with ``time <= deadline``; advances the clock to it."""
        fired = 0
        while self._queue:
            head = self._queue[0][2]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely a scheduling loop"
                )
        self._now = max(self._now, deadline)
        return fired

    def run_for(self, duration: float, max_events: int = 10_000_000) -> int:
        """Run events for ``duration`` seconds of virtual time."""
        return self.run_until(self._now + duration, max_events=max_events)


_default: Optional[Scheduler] = None


def default_scheduler() -> Scheduler:
    """Process-wide scheduler for scripts that do not manage their own."""
    global _default
    if _default is None:
        _default = Scheduler()
    return _default


def reset_default_scheduler() -> None:
    """Replace the process-wide scheduler (used by tests)."""
    global _default
    _default = None
