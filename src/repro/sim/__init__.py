"""Discrete-event simulation core used by all repro substrates.

The simulator is deliberately small: a virtual clock plus a deterministic
event scheduler. Every time-dependent component in the reproduction (links,
BGP sessions, MRAI timers, token buckets, TCP) schedules callbacks here, so
an entire PEERING deployment runs deterministically in a single process.
"""

from repro.sim.scheduler import Event, Scheduler, SimulationError

__all__ = ["Event", "Scheduler", "SimulationError"]
