"""Per-neighbor circuit breakers: closed → open → half-open.

A :class:`CircuitBreaker` watches one ingress source (an upstream
neighbor or an experiment session) for sustained failure — queue
overflow or control-plane-enforcer violations — and trips to OPEN when
the windowed failure count crosses the threshold.  While OPEN, new
*announcements* from that source are refused at admission (withdrawals
always pass: they only ever shrink state).  After ``open_time`` the
breaker admits trial traffic (HALF_OPEN); a burst-free run of
``half_open_trials`` delivered updates closes it, a single failure
re-trips it.

The state machine is evaluated lazily against the simulated clock (no
timers of its own), so an idle breaker costs nothing and the whole
subsystem stays deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.scheduler import Scheduler

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: state → numeric severity (telemetry gauge encoding)
BREAKER_LEVEL = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


@dataclass
class BreakerConfig:
    failure_threshold: int = 64   # failures within the window to trip
    failure_window: float = 5.0   # seconds of failure history considered
    open_time: float = 20.0       # seconds OPEN before trial traffic
    half_open_trials: int = 2     # delivered updates needed to close


TransitionCallback = Callable[["CircuitBreaker", str, str, str], None]


class CircuitBreaker:
    """One source's breaker; see the module docstring for the protocol."""

    def __init__(
        self,
        scheduler: "Scheduler",
        peer_key: str,
        config: Optional[BreakerConfig] = None,
        on_transition: Optional[TransitionCallback] = None,
    ) -> None:
        self.scheduler = scheduler
        self.peer_key = peer_key
        self.config = config if config is not None else BreakerConfig()
        self.on_transition = on_transition
        self.trips = 0
        self.rejected = 0
        self._state = BREAKER_CLOSED
        self._failures: deque = deque()
        self._open_until = 0.0
        self._trial_successes = 0

    @property
    def state(self) -> str:
        """Current state; OPEN decays to HALF_OPEN once the window ends."""
        if (
            self._state == BREAKER_OPEN
            and self.scheduler.now >= self._open_until
        ):
            self._trial_successes = 0
            self._transition(
                BREAKER_HALF_OPEN,
                f"open window elapsed after {self.config.open_time:g}s; "
                "admitting trial traffic",
            )
        return self._state

    def allow(self) -> bool:
        """May an announcement from this source be admitted right now?"""
        if self.state == BREAKER_OPEN:
            self.rejected += 1
            return False
        return True

    def record_failure(self, kind: str = "failure", count: int = 1) -> None:
        state = self.state
        if state == BREAKER_OPEN:
            return  # already quarantined
        if state == BREAKER_HALF_OPEN:
            self._trip(f"{kind} during half-open trial")
            return
        now = self.scheduler.now
        for _ in range(max(1, count)):
            self._failures.append(now)
        window = self.config.failure_window
        while self._failures and now - self._failures[0] > window:
            self._failures.popleft()
        if len(self._failures) >= self.config.failure_threshold:
            self._trip(
                f"{len(self._failures)} {kind} failures within {window:g}s"
            )

    def record_success(self) -> None:
        """One update delivered cleanly; closes the breaker after enough
        half-open trials (no effect while CLOSED or OPEN)."""
        if self.state != BREAKER_HALF_OPEN:
            return
        self._trial_successes += 1
        if self._trial_successes >= self.config.half_open_trials:
            self._transition(
                BREAKER_CLOSED,
                f"{self._trial_successes} clean half-open trials",
            )

    def reset_window(self) -> None:
        """Forget accumulated (sub-threshold) failures — post-heal hygiene
        so repeated in-process scenario runs cannot cross-contaminate."""
        self._failures.clear()

    def _trip(self, why: str) -> None:
        self.trips += 1
        self._failures.clear()
        self._open_until = self.scheduler.now + self.config.open_time
        self._transition(BREAKER_OPEN, why)

    def _transition(self, new_state: str, why: str) -> None:
        old_state = self._state
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(self, old_state, new_state, why)
