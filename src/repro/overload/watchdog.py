"""The per-PoP health watchdog: healthy → degraded → critical.

A :class:`HealthWatchdog` ticks on the simulated clock and condenses
one PoP's overload evidence — queue depth fraction, windowed shed
rate, circuit-breaker states — into a three-state health verdict:

``healthy``
    queues shallow, no recent shedding, all breakers closed;
``degraded``
    a breaker is half-open, queues past the degraded depth fraction,
    or announcements are being shed above the degraded rate;
``critical``
    a breaker is OPEN (a source is quarantined), queues essentially
    full, or the shed rate past the critical threshold.

Escalation is immediate; de-escalation needs ``recover_ticks``
consecutive calm ticks (hysteresis, so a PoP does not flap between
states at the overload boundary).  Every transition is published to
the telemetry station as a :class:`~repro.telemetry.station.
HealthEvent`, and the current state is exported as a scrape-time
gauge.  The ``peering health`` CLI and ``IntentController.apply`` (a
critical PoP refuses new plans) both read :attr:`state`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overload.governor import OverloadGovernor
    from repro.sim.scheduler import Scheduler
    from repro.telemetry import TelemetryHub

__all__ = [
    "CRITICAL",
    "DEGRADED",
    "HEALTHY",
    "HealthWatchdog",
    "WatchdogConfig",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
CRITICAL = "critical"

#: state → numeric severity (CLI exit codes and the telemetry gauge)
HEALTH_LEVEL = {HEALTHY: 0, DEGRADED: 1, CRITICAL: 2}


@dataclass
class WatchdogConfig:
    interval: float = 2.0              # seconds between evaluations
    degraded_depth_fraction: float = 0.5
    critical_depth_fraction: float = 0.95
    degraded_shed_rate: float = 1.0    # shed routes/s (windowed)
    critical_shed_rate: float = 50.0
    recover_ticks: int = 3             # calm ticks before de-escalating


class HealthWatchdog:
    """One PoP's health state machine over its overload governor."""

    def __init__(
        self,
        scheduler: "Scheduler",
        pop_name: str,
        governor: "OverloadGovernor",
        telemetry: Optional["TelemetryHub"] = None,
        config: Optional[WatchdogConfig] = None,
    ) -> None:
        self.scheduler = scheduler
        self.pop_name = pop_name
        self.governor = governor
        self.telemetry = telemetry
        self.config = config if config is not None else WatchdogConfig()
        self.state = HEALTHY
        self.transitions = 0
        self.last_detail = "no evaluation yet"
        self._calm_ticks = 0
        self._tick_event = None
        if telemetry is not None:
            telemetry.registry.gauge(
                "pop_health_state",
                "PoP health: 0 healthy, 1 degraded, 2 critical",
                labels=("pop",),
            ).labels(pop_name).set_function(
                lambda: float(HEALTH_LEVEL[self.state])
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._tick_event is None:
            self._tick_event = self.scheduler.call_later(
                self.config.interval, self._tick
            )

    def stop(self) -> None:
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    # -- evaluation --------------------------------------------------------

    def evaluate(self) -> tuple[str, str]:
        """Pure evaluation: (target state, evidence) — no side effects."""
        config = self.config
        depth = self.governor.depth_fraction()
        rate = self.governor.shed_rate()
        states = self.governor.breaker_states()
        open_breakers = sorted(
            peer for peer, state in states.items() if state == "open"
        )
        half_open = sorted(
            peer for peer, state in states.items() if state == "half-open"
        )
        evidence = (
            f"queues {depth:.0%} full, shed rate {rate:.2f}/s, "
            f"{len(open_breakers)} open / {len(half_open)} half-open "
            "breakers"
        )
        if open_breakers:
            return CRITICAL, (
                f"breaker(s) open: {', '.join(open_breakers)}; {evidence}"
            )
        if depth >= config.critical_depth_fraction:
            return CRITICAL, evidence
        if rate >= config.critical_shed_rate:
            return CRITICAL, evidence
        if half_open or depth >= config.degraded_depth_fraction or (
            rate >= config.degraded_shed_rate
        ):
            return DEGRADED, evidence
        return HEALTHY, evidence

    def _tick(self) -> None:
        self._tick_event = None
        target, detail = self.evaluate()
        current = HEALTH_LEVEL[self.state]
        wanted = HEALTH_LEVEL[target]
        if wanted > current:
            self._calm_ticks = 0
            self._set_state(target, detail)
        elif wanted < current:
            self._calm_ticks += 1
            if self._calm_ticks >= self.config.recover_ticks:
                self._calm_ticks = 0
                self._set_state(target, detail)
        else:
            self._calm_ticks = 0
        self.last_detail = detail
        self._tick_event = self.scheduler.call_later(
            self.config.interval, self._tick
        )

    def _set_state(self, new_state: str, detail: str) -> None:
        previous = self.state
        self.state = new_state
        self.transitions += 1
        if self.telemetry is not None:
            from repro.telemetry.station import HealthEvent

            self.telemetry.station.publish(HealthEvent(
                peer=f"pop:{self.pop_name}",
                time=self.scheduler.now,
                state=new_state,
                previous=previous,
                detail=detail,
            ))

    # -- observers ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything the ``peering health`` CLI prints for this PoP."""
        return {
            "state": self.state,
            "detail": self.last_detail,
            "transitions": self.transitions,
            "depth_fraction": self.governor.depth_fraction(),
            "shed_rate": self.governor.shed_rate(),
            "breakers": dict(sorted(
                self.governor.breaker_states().items()
            )),
        }
