"""The per-PoP overload governor: queues + breakers, one registry.

An :class:`OverloadGovernor` owns every :class:`~repro.overload.queues.
IngressQueue` and :class:`~repro.overload.breaker.CircuitBreaker` at
one PoP (or one standalone speaker), created lazily per ingress source.
It wires the pieces together:

* a queue's overflow sheds feed its source's breaker (sustained
  overflow trips it) and the governor's windowed shed-rate clock;
* a breaker transition is published to the telemetry station as a
  ``ResilienceEvent`` and, on OPEN, forwarded to ``on_breaker_open``
  (the vBGP node quarantines that neighbor's supervisor with it);
* ``backpressure`` (set by the node to "shard inboxes saturated")
  makes every queue hold delivery, pushing congestion to the shed
  point at the edge;
* scrape-time gauges for depth, sheds, and breaker state are
  registered per source.

The watchdog reads :meth:`depth_fraction`, :meth:`shed_rate`, and
:meth:`breaker_states`; the chaos runner reads :meth:`pending` (a
non-empty queue means the world has not settled) and
:meth:`shed_digest` (seed-stable shedding proofs).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.overload.breaker import (
    BREAKER_LEVEL,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.overload.queues import IngressQueue, QueuePolicy
from repro.overload.watchdog import WatchdogConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.scheduler import Scheduler
    from repro.telemetry import TelemetryHub

__all__ = ["OverloadGovernor", "OverloadPolicy"]


@dataclass
class OverloadPolicy:
    """The one knob a PoP config carries: all §6i tuning in one object."""

    queue: QueuePolicy = field(default_factory=QueuePolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    # Bound on each shard worker's inbox; beyond it announcement-only
    # work items are shed (None = unbounded, the pre-§6i behavior).
    shard_inbox_limit: Optional[int] = 512
    shed_rate_window: float = 10.0  # seconds for the shed-rate estimate


class OverloadGovernor:
    """One scope's (PoP's or speaker's) overload-control registry."""

    def __init__(
        self,
        scheduler: "Scheduler",
        scope: str,
        policy: Optional[OverloadPolicy] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.scope = scope
        self.policy = policy if policy is not None else OverloadPolicy()
        self.telemetry = telemetry
        self.queues: Dict[str, IngressQueue] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        # Set by the owner: () -> bool, True while downstream (the shard
        # executor) is congested and queues should hold delivery.
        self.backpressure: Optional[Callable[[], bool]] = None
        # Set by the owner: (peer_key, open_time) -> None on breaker trip.
        self.on_breaker_open: Optional[Callable[[str, float], None]] = None
        # Routes shed at the shard-inbox seam (engine reports them here).
        self.shard_sheds = 0
        self._shed_times: deque = deque()
        self._window_sheds = 0
        self._g_depth = None
        self._g_announce = None
        self._g_shed = None
        self._g_breaker = None
        if telemetry is not None:
            registry = telemetry.registry
            self._g_depth = registry.gauge(
                "overload_queue_depth",
                "Ingress queue depth (all classes), per source",
                labels=("node", "peer"),
            )
            self._g_announce = registry.gauge(
                "overload_queue_announce_depth",
                "Announcement-class queue depth (the bounded class)",
                labels=("node", "peer"),
            )
            self._g_shed = registry.gauge(
                "overload_shed_announcements",
                "Cumulative announced routes shed or refused, per source",
                labels=("node", "peer"),
            )
            self._g_breaker = registry.gauge(
                "overload_breaker_state",
                "Circuit breaker: 0 closed, 1 half-open, 2 open",
                labels=("node", "peer"),
            )

    # -- registry ----------------------------------------------------------

    def breaker_for(self, peer_key: str) -> CircuitBreaker:
        breaker = self.breakers.get(peer_key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.scheduler,
                peer_key,
                config=self.policy.breaker,
                on_transition=self._breaker_transition,
            )
            self.breakers[peer_key] = breaker
            if self._g_breaker is not None:
                self._g_breaker.labels(self.scope, peer_key).set_function(
                    lambda b=breaker: float(BREAKER_LEVEL[b.state])
                )
        return breaker

    def queue_for(self, peer_key: str) -> IngressQueue:
        queue = self.queues.get(peer_key)
        if queue is None:
            queue = IngressQueue(
                self.scheduler,
                peer_key,
                policy=self.policy.queue,
                breaker=self.breaker_for(peer_key),
                on_shed=self._note_shed,
                backpressure=self._downstream_congested,
            )
            self.queues[peer_key] = queue
            if self._g_depth is not None:
                self._g_depth.labels(self.scope, peer_key).set_function(
                    lambda q=queue: float(q.pending)
                )
                self._g_announce.labels(self.scope, peer_key).set_function(
                    lambda q=queue: float(q.announce_depth)
                )
                self._g_shed.labels(self.scope, peer_key).set_function(
                    lambda q=queue: float(
                        q.stats.shed_announcements
                        + q.stats.rejected_announcements
                    )
                )
        return queue

    # -- internal wiring ---------------------------------------------------

    def _downstream_congested(self) -> bool:
        fn = self.backpressure
        return bool(fn()) if fn is not None else False

    def _note_shed(self, peer_key: str, routes: int) -> None:
        now = self.scheduler.now
        self._shed_times.append((now, routes))
        self._window_sheds += routes
        self._prune(now)

    def record_shard_shed(self, routes: int) -> None:
        """The shard engine shed ``routes`` at a worker inbox."""
        self.shard_sheds += routes
        self._note_shed("shard", routes)

    def record_violations(self, peer_key: str, count: int) -> None:
        """Enforcer violations attributed to one source feed its breaker."""
        if count > 0:
            self.breaker_for(peer_key).record_failure(
                "enforcer-violation", count
            )

    def _prune(self, now: float) -> None:
        window = self.policy.shed_rate_window
        while self._shed_times and now - self._shed_times[0][0] > window:
            self._shed_times.popleft()

    def _breaker_transition(self, breaker: CircuitBreaker, old: str,
                            new: str, why: str) -> None:
        if self.telemetry is not None:
            from repro.telemetry.station import ResilienceEvent

            self.telemetry.station.publish(ResilienceEvent(
                peer=f"{self.scope}:{breaker.peer_key}",
                time=self.scheduler.now,
                event=f"breaker-{new}",
                detail=why,
            ))
        if new == BREAKER_OPEN and self.on_breaker_open is not None:
            self.on_breaker_open(breaker.peer_key,
                                 breaker.config.open_time)

    # -- observers (watchdog, chaos runner, CLI) ---------------------------

    def pending(self) -> int:
        return sum(queue.pending for queue in self.queues.values())

    def depth_fraction(self) -> float:
        if not self.queues:
            return 0.0
        return max(q.depth_fraction for q in self.queues.values())

    def shed_rate(self) -> float:
        """Routes shed per second over the configured window."""
        self._prune(self.scheduler.now)
        window = self.policy.shed_rate_window
        if window <= 0:
            return 0.0
        return sum(routes for _, routes in self._shed_times) / window

    def breaker_states(self) -> Dict[str, str]:
        return {
            peer: breaker.state
            for peer, breaker in self.breakers.items()
        }

    def open_breakers(self) -> list[str]:
        return sorted(
            peer for peer, breaker in self.breakers.items()
            if breaker.state == BREAKER_OPEN
        )

    def totals(self) -> Dict[str, int]:
        """Aggregate shed accounting across every queue plus the shard
        seam — what scenarios and the bench assert against."""
        totals = {
            "admitted": 0,
            "delivered": 0,
            "shed_updates": 0,
            "shed_announcements": 0,
            "shed_withdrawals": 0,
            "shed_control": 0,
            "rejected_updates": 0,
            "rejected_announcements": 0,
            "dropped_on_close": 0,
            "withdrawals_admitted": 0,
            "withdrawals_delivered": 0,
            "peak_depth": 0,
            "peak_announce_depth": 0,
        }
        for queue in self.queues.values():
            stats = queue.stats
            for key in totals:
                if key.startswith("peak_"):
                    totals[key] = max(totals[key], getattr(stats, key))
                else:
                    totals[key] += getattr(stats, key)
        totals["shard_routes_shed"] = self.shard_sheds
        return totals

    def shed_digest(self) -> str:
        """Order-independent digest over every queue's shed chain."""
        digest = hashlib.sha256()
        for peer in sorted(self.queues):
            digest.update(
                f"{peer}:{self.queues[peer].shed_digest()}\n".encode()
            )
        return digest.hexdigest()

    def reset_window_counters(self) -> int:
        """Post-heal hygiene: clear windowed shed history and every
        breaker's sub-threshold failure window, so back-to-back
        in-process scenario runs cannot cross-contaminate.  Cumulative
        stats (QueueStats, trips) are deliberately kept — they are
        lifetime telemetry, not window state.  Returns the number of
        shed routes forgotten from the window."""
        forgotten = self._window_sheds
        self._shed_times.clear()
        self._window_sheds = 0
        for breaker in self.breakers.values():
            breaker.reset_window()
        return forgotten

    def snapshot(self) -> Dict[str, dict]:
        """Per-source detail for the ``peering health`` CLI."""
        out: Dict[str, dict] = {}
        for peer in sorted(set(self.queues) | set(self.breakers)):
            queue = self.queues.get(peer)
            breaker = self.breakers.get(peer)
            entry: dict = {}
            if queue is not None:
                entry.update(
                    depth=queue.pending,
                    announce_depth=queue.announce_depth,
                    capacity=queue.capacity,
                    shed=queue.stats.shed_announcements,
                    rejected=queue.stats.rejected_announcements,
                    delivered=queue.stats.delivered,
                )
            if breaker is not None:
                entry["breaker"] = breaker.state
                entry["trips"] = breaker.trips
            out[peer] = entry
        return out
