"""Bounded per-neighbor ingress queues with class-aware load shedding.

An :class:`IngressQueue` sits between a BGP session's wire dispatch and
its owner: instead of processing every UPDATE inline, the session
offers it here and a scheduler-driven drain delivers a bounded batch
per tick.  That turns unbounded ingress into a fixed consumption rate
— and when the offered load exceeds it, the queue sheds by class:

========== ==========================================================
class      policy
========== ==========================================================
control    End-of-RIB and attribute-only UPDATEs — **never shed**
           (KEEPALIVE/NOTIFICATION/OPEN never reach the queue at all;
           the session FSM handles them inline, so liveness and error
           signaling survive any overload)
withdraw   any UPDATE carrying ≥1 withdrawn route — **never shed**,
           admitted even beyond capacity: losing a withdrawal would
           leave a stale route in a RIB forever
announce   announcement-only UPDATEs — shed **oldest-first** when the
           announce-class depth exceeds capacity
========== ==========================================================

Shedding oldest-first is state-convergent because BGP is last-message-
wins per (prefix, path_id): if ``announce(P, v1)`` is shed, a later
surviving ``announce(P, v2)`` or ``withdraw(P)`` yields the same final
state the full sequence would have.  Surviving updates are delivered
strictly in arrival order (FIFO), so shedding can drop but never
reorder a neighbor's stream.

Every shed is accounted exactly and folded into a SHA-256 digest chain,
so two runs at the same seed can be proven to shed identically.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bgp.messages import UpdateMessage
    from repro.overload.breaker import CircuitBreaker
    from repro.sim.scheduler import Scheduler

__all__ = [
    "CLASS_ANNOUNCE",
    "CLASS_CONTROL",
    "CLASS_WITHDRAW",
    "IngressQueue",
    "QueuePolicy",
    "QueueStats",
    "classify_update",
]

CLASS_CONTROL = "control"
CLASS_WITHDRAW = "withdraw"
CLASS_ANNOUNCE = "announce"


def classify_update(update: "UpdateMessage") -> str:
    """Shed class of one UPDATE (see the table in the module docstring)."""
    if update.withdrawn:
        return CLASS_WITHDRAW
    if update.nlri:
        return CLASS_ANNOUNCE
    return CLASS_CONTROL


@dataclass
class QueuePolicy:
    """Knobs for one neighbor's bounded ingress queue."""

    depth: int = 128              # max announcement-class entries queued
    drain_batch: int = 16         # updates delivered per drain tick
    drain_interval: float = 0.02  # seconds between drain ticks
    high_watermark: float = 0.75  # congestion threshold (depth fraction)


@dataclass
class QueueStats:
    """Exact accounting for one queue; everything the invariants need."""

    admitted: int = 0             # updates enqueued
    delivered: int = 0            # updates handed to the owner
    shed_updates: int = 0         # announcement-only updates shed
    shed_announcements: int = 0   # routes inside shed updates
    shed_withdrawals: int = 0     # must stay 0 (invariant-checked)
    shed_control: int = 0         # must stay 0 (invariant-checked)
    rejected_updates: int = 0     # refused at admission (breaker open)
    rejected_announcements: int = 0
    dropped_on_close: int = 0     # queued for a session that died
    withdrawals_admitted: int = 0
    withdrawals_delivered: int = 0
    withdrawals_dropped_on_close: int = 0
    peak_depth: int = 0
    peak_announce_depth: int = 0  # bounded by capacity, by construction


class IngressQueue:
    """One neighbor's bounded ingress queue (see module docstring).

    Entries are ``(session, update, shed_class)``.  Only the announce
    class counts against ``capacity``; withdraw/control entries are
    always admitted (the queue may transiently exceed capacity by the
    withdraw backlog — the price of never losing a withdrawal).

    ``backpressure`` is consulted before each drain tick: while it
    returns True (e.g. the shard executor's inboxes are saturated) the
    queue holds delivery, propagating congestion upstream to the shed
    point at the edge instead of into the fan-out.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        peer_key: str,
        policy: Optional[QueuePolicy] = None,
        breaker: Optional["CircuitBreaker"] = None,
        on_shed: Optional[Callable[[str, int], None]] = None,
        backpressure: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.scheduler = scheduler
        self.peer_key = peer_key
        self.policy = policy if policy is not None else QueuePolicy()
        self.breaker = breaker
        self.on_shed = on_shed
        self.backpressure = backpressure
        self.capacity = self.policy.depth
        self._base_capacity = self.policy.depth
        self._slow_factor = 1.0
        self._entries: deque = deque()
        self._announce_depth = 0
        self._drain_event = None
        self._digest = hashlib.sha256()
        self._shed_seq = 0
        self.stats = QueueStats()

    # -- observers ---------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._entries)

    @property
    def announce_depth(self) -> int:
        return self._announce_depth

    @property
    def congested(self) -> bool:
        threshold = max(1, int(self.policy.high_watermark * self.capacity))
        return self._announce_depth >= threshold

    @property
    def depth_fraction(self) -> float:
        if self.capacity <= 0:
            return 1.0 if self._announce_depth else 0.0
        return self._announce_depth / self.capacity

    def shed_digest(self) -> str:
        """Digest chain over every shed/rejection, for determinism proofs."""
        return self._digest.hexdigest()

    # -- admission ---------------------------------------------------------

    def offer(self, session, update: "UpdateMessage") -> bool:
        """Admit one UPDATE from ``session``; returns False if refused."""
        shed_class = classify_update(update)
        if (
            shed_class == CLASS_ANNOUNCE
            and self.breaker is not None
            and not self.breaker.allow()
        ):
            self.stats.rejected_updates += 1
            self.stats.rejected_announcements += len(update.nlri)
            self._chain("reject", update)
            self._note_shed(len(update.nlri))
            return False
        self._entries.append((session, update, shed_class))
        self.stats.admitted += 1
        if shed_class == CLASS_WITHDRAW:
            self.stats.withdrawals_admitted += len(update.withdrawn)
        elif shed_class == CLASS_ANNOUNCE:
            self._announce_depth += 1
            while self._announce_depth > self.capacity:
                if not self._shed_oldest_announcement():
                    break
        self.stats.peak_depth = max(self.stats.peak_depth,
                                    len(self._entries))
        self.stats.peak_announce_depth = max(
            self.stats.peak_announce_depth, self._announce_depth
        )
        self._arm()
        return True

    def _shed_oldest_announcement(self) -> bool:
        for index, (_, update, shed_class) in enumerate(self._entries):
            if shed_class != CLASS_ANNOUNCE:
                continue
            del self._entries[index]
            self._announce_depth -= 1
            self.stats.shed_updates += 1
            self.stats.shed_announcements += len(update.nlri)
            self._chain("shed", update)
            if self.breaker is not None:
                self.breaker.record_failure("queue-overflow")
            self._note_shed(len(update.nlri))
            return True
        return False

    def _note_shed(self, routes: int) -> None:
        if self.on_shed is not None:
            self.on_shed(self.peer_key, routes)

    def _chain(self, action: str, update: "UpdateMessage") -> None:
        self._shed_seq += 1
        token = ";".join(
            f"{prefix}|{'-' if path_id is None else path_id}"
            for prefix, path_id in update.nlri
        )
        self._digest.update(
            f"{self._shed_seq}:{action}:{self.peer_key}:{token}\n".encode()
        )

    # -- drain -------------------------------------------------------------

    def _arm(self) -> None:
        if self._drain_event is None and self._entries:
            self._drain_event = self.scheduler.call_later(
                self.policy.drain_interval * self._slow_factor, self._drain
            )

    def _drain(self) -> None:
        self._drain_event = None
        if self.backpressure is not None and self.backpressure():
            self._arm()  # downstream congested: hold, retry next tick
            return
        budget = max(1, self.policy.drain_batch)
        while budget > 0 and self._entries:
            session, update, shed_class = self._entries.popleft()
            if shed_class == CLASS_ANNOUNCE:
                self._announce_depth -= 1
            if not session.established:
                self._account_drop(update, shed_class)
                continue
            budget -= 1
            self.stats.delivered += 1
            if shed_class == CLASS_WITHDRAW:
                self.stats.withdrawals_delivered += len(update.withdrawn)
            if self.breaker is not None:
                self.breaker.record_success()
            session.deliver_update(update)
        self._arm()

    def _account_drop(self, update: "UpdateMessage",
                      shed_class: str) -> None:
        self.stats.dropped_on_close += 1
        if shed_class == CLASS_WITHDRAW:
            self.stats.withdrawals_dropped_on_close += len(update.withdrawn)

    def flush_session(self, session) -> int:
        """Discard entries for a session that closed (not a shed: the
        successor session re-learns state from scratch via BGP)."""
        kept: deque = deque()
        dropped = 0
        for entry in self._entries:
            if entry[0] is session:
                dropped += 1
                if entry[2] == CLASS_ANNOUNCE:
                    self._announce_depth -= 1
                self._account_drop(entry[1], entry[2])
            else:
                kept.append(entry)
        self._entries = kept
        return dropped

    # -- injector hooks ----------------------------------------------------

    def slowdown(self, factor: float) -> None:
        """Multiply the drain interval (the slow-consumer fault)."""
        self._slow_factor = max(factor, 0.001)

    def resize(self, capacity: int) -> int:
        """Shrink/grow the announce-class bound (the queue-exhaustion
        fault); returns how many entries the shrink shed immediately."""
        self.capacity = max(0, capacity)
        shed = 0
        while self._announce_depth > self.capacity:
            if not self._shed_oldest_announcement():
                break
            shed += 1
        return shed

    def restore(self) -> None:
        """Undo injector effects: base capacity, full drain speed."""
        self.capacity = self._base_capacity
        self._slow_factor = 1.0
