"""Overload resilience: bounded ingress, load shedding, breakers (§6i).

The mux multiplexes many experiments over shared BGP sessions; a
misbehaving experiment or a full-table churn burst must degrade the
platform *predictably*, not stall it.  This package provides the four
mechanisms DESIGN.md §6i threads through the ingress path:

* :class:`IngressQueue` — a bounded per-neighbor queue between a BGP
  session's wire dispatch and its owner, shedding by class
  (announcements oldest-first; withdrawals and control never);
* :class:`CircuitBreaker` — closed → open → half-open per neighbor or
  experiment, tripped by sustained queue overflow or enforcer
  violations;
* :class:`HealthWatchdog` — the per-PoP healthy/degraded/critical
  state machine driven by queue depth, shed rate, and breaker status;
* :class:`OverloadGovernor` — the per-PoP registry tying them together
  and feeding the telemetry station.

Everything here is opt-in and default-off: a platform built without an
:class:`OverloadPolicy` behaves byte-identically to one that predates
this package (the DifferentialHarness relies on that).
"""

from repro.overload.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.overload.governor import OverloadGovernor, OverloadPolicy
from repro.overload.queues import (
    CLASS_ANNOUNCE,
    CLASS_CONTROL,
    CLASS_WITHDRAW,
    IngressQueue,
    QueuePolicy,
    QueueStats,
    classify_update,
)
from repro.overload.watchdog import (
    CRITICAL,
    DEGRADED,
    HEALTHY,
    HealthWatchdog,
    WatchdogConfig,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerConfig",
    "CLASS_ANNOUNCE",
    "CLASS_CONTROL",
    "CLASS_WITHDRAW",
    "CRITICAL",
    "CircuitBreaker",
    "DEGRADED",
    "HEALTHY",
    "HealthWatchdog",
    "IngressQueue",
    "OverloadGovernor",
    "OverloadPolicy",
    "QueuePolicy",
    "QueueStats",
    "WatchdogConfig",
    "classify_update",
]
