"""fleet-pop-crash: SIGKILL a PoP process mid-churn, restart, re-heal.

The fleet analogue of the chaos catalog's PoP-failure scenarios
(DESIGN.md §6k): boot a compiled fleet as real OS processes, drive churn
and experiment announcements through it, then SIGKILL one PoP at the
worst moment.  The victim restarts **stateless** from its unchanged
artifact; recovery rests entirely on the protocol — driver speakers
re-advertise their local routes on session re-establishment (PR 3's
Graceful Restart machinery holds their stale state meanwhile), the
experiment client re-announces, and the surviving members' wall-clock
backbone redial reconnects the mesh.

Convergence is asserted at the prefix level: every external speaker's
Loc-RIB and every PoP's §3.2.1 export-expectation map must return to
the exact pre-fault state, and the full six-invariant catalog must hold
over the healed fleet.  Mid-outage churn is *balanced* (announce then
withdraw the same prefixes on survivors) so the pre-fault snapshot
remains the ground truth.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, List, Optional

from repro.bgp.attributes import local_route
from repro.chaos.runner import ScenarioResult
from repro.fleet.compiler import CompiledFleet, compile_world
from repro.fleet.differential import SocketFleetLeg
from repro.fleet.spec import demo_world_spec
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.netsim.addr import IPv4Prefix

__all__ = ["FleetPopCrashScenario", "run_fleet_pop_crash"]

SCENARIO_NAME = "fleet-pop-crash"


def _prefix_state(leg: SocketFleetLeg) -> Dict[str, object]:
    """Prefix-level ground truth: every external speaker's Loc-RIB as a
    sorted prefix list, plus each PoP's export-expectation map."""
    state: Dict[str, object] = {}
    for endpoint in leg.endpoints:
        state[f"upstream:{endpoint.key}"] = sorted(
            str(p) for p in endpoint.speaker.loc_rib.prefixes())
    for client in leg.clients.values():
        state[f"client:{client.key}"] = sorted(
            str(p) for p in client.speaker.loc_rib.prefixes())
    for pop_entry in leg.spec_pops:
        name = pop_entry["name"]
        state[f"expectations:{name}"] = leg.pop_call(name, "expectations")
    return state


class FleetPopCrashScenario:
    """One seeded run of the fleet-pop-crash chaos scenario."""

    def __init__(self, seed: int = 0, pops: int = 3,
                 updates: int = 12, prefix_count: int = 10,
                 outage_updates: int = 4,
                 port_base: Optional[int] = None,
                 heal_timeout: float = 30.0) -> None:
        self.seed = seed
        self.spec = demo_world_spec(pops=pops, port_base=port_base)
        self.updates = updates
        self.prefix_count = prefix_count
        self.outage_updates = outage_updates
        self.heal_timeout = heal_timeout

    # -- workload pieces ---------------------------------------------------

    def _warmup(self, leg: SocketFleetLeg) -> None:
        """Announce every experiment and churn every upstream so the
        victim dies holding real state from all three route sources."""
        for key in sorted(leg.clients):
            experiment, pop = key
            leg.announce(experiment, pop)
            leg.settle()
        count = len(leg.endpoints)
        per_endpoint = -(-self.updates // count)
        for index, endpoint in enumerate(leg.endpoints):
            generator = ChurnGenerator(
                AMSIX_PROFILE, prefix_count=self.prefix_count,
                seed=self.seed + index)
            endpoint.updates = generator.make_updates(per_endpoint)
        for step in range(self.updates):
            endpoint = leg.endpoints[step % count]
            leg.apply_update(endpoint, endpoint.updates[step // count])
            leg.settle()

    def _balanced_outage_churn(self, leg: SocketFleetLeg,
                               victim: str) -> int:
        """Announce-then-withdraw transient prefixes on survivors: the
        fleet keeps moving during the outage, yet the net prefix state is
        unchanged, so the pre-fault snapshot stays the ground truth."""
        survivors = [ep for ep in leg.endpoints if ep.pop != victim]
        applied = 0
        for index in range(self.outage_updates):
            endpoint = survivors[index % len(survivors)]
            prefix = IPv4Prefix.parse(f"61.{self.seed % 200}.{index}.0/24")
            endpoint.speaker.originate(local_route(prefix))
            leg.settle()
            endpoint.speaker.withdraw(prefix)
            leg.settle()
            applied += 1
        return applied

    def _reattach_driver(self, leg: SocketFleetLeg, victim: str) -> None:
        """Fresh sockets into the restarted PoP; the speakers keep their
        GR-stale state and resynchronize over the new channels."""
        for endpoint in leg.endpoints:
            if endpoint.pop != victim:
                continue
            channel = leg.open_channel(
                "upstream", endpoint.pop, endpoint.upstream)
            endpoint.speaker.reattach_neighbor(endpoint.key, channel)
            endpoint.channel = channel
        for (experiment, pop), client in leg.clients.items():
            if pop != victim:
                continue
            channel = leg.open_channel("experiment", pop, experiment)
            client.speaker.reattach_neighbor(client.key, channel)
            client.channel = channel

    def _wait_heal(self, leg: SocketFleetLeg) -> float:
        """Wall-clock barrier: backbone redial is throttled inside the
        surviving processes, so poll until every session (driver and
        mesh) is Established again.  Returns elapsed seconds."""
        start = time.monotonic()
        deadline = start + self.heal_timeout
        while True:
            leg.settle()
            pending = leg.unestablished()
            if not pending:
                return time.monotonic() - start
            if time.monotonic() > deadline:
                raise RuntimeError(
                    "fleet did not heal: still down after "
                    f"{self.heal_timeout:.0f}s: {', '.join(pending)}")
            time.sleep(0.05)

    # -- scenario ----------------------------------------------------------

    def run(self, workdir: Optional[str] = None) -> ScenarioResult:
        if workdir is None:
            with tempfile.TemporaryDirectory(prefix="fleet-crash-") as tmp:
                return self._run_in(tmp)
        return self._run_in(workdir)

    def _run_in(self, workdir: str) -> ScenarioResult:
        fleet = compile_world(self.spec, workdir)
        victim = fleet.pop_names()[self.seed % len(fleet.pop_names())]
        leg = SocketFleetLeg(fleet)
        try:
            return self._drive(leg, fleet, victim)
        finally:
            leg.close()

    def _drive(self, leg: SocketFleetLeg, fleet: CompiledFleet,
               victim: str) -> ScenarioResult:
        leg.wire_driver()
        pending = leg.unestablished()
        if pending:
            raise RuntimeError(
                f"fleet boot incomplete: {', '.join(pending)}")
        self._warmup(leg)
        pre_fault = _prefix_state(leg)

        leg.controller.kill_pop(victim)
        leg.settle()  # drain the connection-reset storm
        outage_churn = self._balanced_outage_churn(leg, victim)

        restart_at = time.monotonic()
        leg.controller.restart_pop(victim)
        self._reattach_driver(leg, victim)
        heal_time = self._wait_heal(leg)
        convergence_time = time.monotonic() - restart_at

        result = leg.collect()
        post_heal = _prefix_state(leg)
        diverged: List[str] = sorted(
            key for key in set(pre_fault) | set(post_heal)
            if pre_fault.get(key) != post_heal.get(key))
        invariants = {
            name: report["ok"] for name, report in result.invariants.items()
        }
        invariants["prefix_state_restored"] = not diverged
        details: Dict[str, float] = {
            "pops": float(len(fleet.pop_names())),
            "warmup_updates": float(self.updates),
            "outage_updates": float(outage_churn),
            "heal_time": heal_time,
            "diverged_keys": float(len(diverged)),
            "federation_events": float(leg.controller.federation_events),
        }
        return ScenarioResult(
            name=SCENARIO_NAME,
            seed=self.seed,
            converged=not diverged,
            convergence_time=convergence_time,
            invariants=invariants,
            details=details,
        )


def run_fleet_pop_crash(seed: int = 0, pops: int = 3, updates: int = 12,
                        prefix_count: int = 10,
                        port_base: Optional[int] = None,
                        workdir: Optional[str] = None) -> ScenarioResult:
    """One-call entry point used by the CLI, tests, and the CI soak."""
    return FleetPopCrashScenario(
        seed=seed, pops=pops, updates=updates, prefix_count=prefix_count,
        port_base=port_base).run(workdir)
