"""The per-PoP OS process: ``python -m repro.fleet.runpop <artifact>``.

One fleet PoP process owns exactly its own world slice: a frozen-time
scheduler, the PoP built by :func:`repro.fleet.runtime.build_fleet_pop`
from its compiled artifact, and a :class:`~repro.bgp.transport.SocketPoller`
driving real loopback TCP for every session the artifact names:

* one **listener per upstream and per experiment** — the driver dials in
  and the accepted socket becomes that session's channel;
* a **backbone listener + dial plan** — between two members the lower
  ``pop_id`` listens and the higher dials, sending a one-line
  ``bb <name>\\n`` preamble so the listener knows which mesh peer
  arrived; dials are retried from the main loop until the sibling is up;
* a **federation uplink** — the PoP's BMP station feed, serialized as
  JSON lines to the controller's central station (fault-tolerant: a
  missing or dead controller never blocks the datapath);
* a **control socket** speaking newline-delimited JSON RPC
  (``hello``/``step``/``snapshot``/``invariants``/``expectations``/
  ``summary``/``stop``).

Scheduler time stays frozen at 0: every timer (hold, keepalive,
GR-stale, supervisor backoff) is armed but never fires, exactly as in
the in-process reference leg, so no timer can make the legs diverge.
``step`` pumps the poller and drains same-time scheduler events until
quiescent — the driver's lockstep barrier.
"""

from __future__ import annotations

import json
import signal
import sys
import time
from collections import deque
from typing import Dict, Optional

from repro.bgp.transport import (
    SocketChannel,
    SocketListener,
    SocketPoller,
)
from repro.fleet.compiler import load_artifact
from repro.fleet.runtime import FleetPop, build_fleet_pop
from repro.sim.scheduler import Scheduler
from repro.telemetry import TelemetryHub
from repro.telemetry.station import (
    BmpMessage,
    HealthEvent,
    IntentEvent,
    PeerDown,
    PeerUp,
    ResilienceEvent,
    RouteMonitoring,
    StatsReport,
)

__all__ = ["PopProcess", "main", "serialize_event"]

# One ``step`` drains at most this many pump+drain rounds — a safety
# bound so a pathological event loop cannot wedge the control RPC.
MAX_STEP_ROUNDS = 10_000
# Wall-clock throttle between backbone/federation dial attempts.
REDIAL_INTERVAL = 0.2
# Blocking-pump window that confirms an all-quiet settle round: loopback
# TCP delivers asynchronously, so in-flight bytes need a moment to land.
SETTLE_CONFIRM = 0.01


def serialize_event(pop: str, event: BmpMessage) -> dict:
    """One station event as JSON-safe primitives.

    Route contents are federated as *counts*: the central station needs
    the peer lifecycle and activity feed, while byte-level state lives
    in the differential snapshot protocol, not the telemetry plane.
    """
    payload = {"pop": pop, "kind": event.kind, "peer": event.peer,
               "time": event.time}
    if isinstance(event, PeerUp):
        payload.update(
            local_asn=event.local_asn, peer_asn=event.peer_asn,
            local_id=event.local_id, addpath=event.addpath,
            hold_time=event.hold_time,
        )
    elif isinstance(event, PeerDown):
        payload.update(reason=event.reason)
    elif isinstance(event, RouteMonitoring):
        payload.update(
            announced=len(event.announced), withdrawn=len(event.withdrawn),
        )
    elif isinstance(event, ResilienceEvent):
        payload.update(event=event.event, detail=event.detail)
    elif isinstance(event, IntentEvent):
        payload.update(phase=event.phase, digest=event.digest,
                       detail=event.detail)
    elif isinstance(event, HealthEvent):
        payload.update(state=event.state, previous=event.previous,
                       detail=event.detail)
    elif isinstance(event, StatsReport):
        payload.update(stats=dict(event.stats))
    return payload


class _LineReader:
    """Accumulates a channel's bytes and yields newline-delimited lines."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer.extend(data)
        lines = []
        while True:
            index = self._buffer.find(b"\n")
            if index < 0:
                return lines
            lines.append(bytes(self._buffer[:index]))
            del self._buffer[:index + 1]


class PopProcess:
    """The long-running per-PoP server (one per OS process)."""

    def __init__(self, artifact: dict) -> None:
        self.artifact = artifact
        self.name = artifact["pop"]
        self.scheduler = Scheduler()
        self.poller = SocketPoller()
        self.telemetry = TelemetryHub(self.scheduler,
                                      name=f"fleet-{self.name}")
        self.fleet_pop: FleetPop = build_fleet_pop(
            self.scheduler, artifact, telemetry=self.telemetry
        )
        self.running = True
        # Activity accounting: everything processed, whether inside a
        # ``step`` RPC or autonomously in the main loop; ``step`` reports
        # the delta so the lockstep driver misses nothing.
        self.activity_total = 0
        self._last_step_total = 0
        # Control RPC arrivals are poller events too, but they are the
        # driver's own lockstep traffic — excluded from step deltas.
        self._control_events = 0
        self._last_control_events = 0
        self.listeners: list[SocketListener] = []
        # Control commands are only *enqueued* inside poller callbacks
        # and executed from the main loop — a snapshot RPC must never
        # run reentrantly inside a pump that is mid-delivery.
        self._control_queue: deque = deque()
        self._control_channels: list[SocketChannel] = []
        # Backbone dial state: peer name -> (channel | None, last attempt).
        self._dials: Dict[str, list] = {}
        self._federation: Optional[SocketChannel] = None
        self._federation_last_attempt = 0.0
        self._federation_dropped = 0
        self._my_ports = artifact["ports"]["pops"][self.name]
        self._federation_port = artifact["ports"]["federation"]
        self.telemetry.station.subscribe(self._federate)

    # -- wiring ------------------------------------------------------------

    def start(self) -> None:
        ports = self._my_ports
        self.listeners.append(SocketListener(
            self.poller, port=ports["control"],
            on_accept=self._accept_control,
        ))
        for upstream_name, port in ports["upstreams"].items():
            self.listeners.append(SocketListener(
                self.poller, port=port,
                on_accept=lambda ch, n=upstream_name: (
                    self.fleet_pop.attach_upstream_channel(n, ch)
                ),
            ))
        for exp_name, port in ports["experiments"].items():
            self.listeners.append(SocketListener(
                self.poller, port=port,
                on_accept=lambda ch, n=exp_name: (
                    self.fleet_pop.attach_experiment_channel(n, ch)
                ),
            ))
        backbone = self.artifact["backbone"]
        if backbone["address"] is not None and ports["backbone"] is not None:
            self.listeners.append(SocketListener(
                self.poller, port=ports["backbone"],
                on_accept=self._accept_backbone,
            ))
            for peer in backbone["peers"]:
                if peer["mode"] == "dial":
                    self._dials[peer["name"]] = [None, 0.0, peer["port"]]

    # -- backbone mesh -----------------------------------------------------

    def _accept_backbone(self, channel: SocketChannel) -> None:
        """Read the ``bb <name>\\n`` preamble, then hand the channel to
        the mesh; bytes that arrived after the newline (the peer's OPEN)
        are replayed into the session's handler."""
        buffer = bytearray()

        def on_preamble(data: bytes) -> None:
            # Everything after the first newline is binary BGP (the
            # peer's OPEN may already be coalesced into this read), so
            # only the preamble line is text-split.
            buffer.extend(data)
            index = buffer.find(b"\n")
            if index < 0:
                return
            words = bytes(buffer[:index]).decode("ascii", "replace").split()
            leftover = bytes(buffer[index + 1:])
            if len(words) != 2 or words[0] != "bb":
                channel.close()
                return
            self.fleet_pop.attach_backbone_channel(words[1], channel)
            if leftover and channel.on_data is not None:
                channel.on_data(leftover)

        channel.on_data = on_preamble

    def _maintain_backbone(self) -> None:
        now = time.monotonic()
        for peer, state in self._dials.items():
            channel, last_attempt, port = state
            if channel is not None and not channel.closed:
                continue
            if now - last_attempt < REDIAL_INTERVAL:
                continue
            state[1] = now
            try:
                channel = SocketChannel.connect(
                    self.poller, "127.0.0.1", port
                )
            except OSError:
                continue
            state[0] = channel
            channel.send(f"bb {self.name}\n".encode("ascii"))
            self.fleet_pop.attach_backbone_channel(peer, channel)

    # -- federation --------------------------------------------------------

    def _maintain_federation(self) -> None:
        if self._federation is not None and not self._federation.closed:
            return
        now = time.monotonic()
        if now - self._federation_last_attempt < REDIAL_INTERVAL:
            return
        self._federation_last_attempt = now
        try:
            channel = SocketChannel.connect(
                self.poller, "127.0.0.1", self._federation_port
            )
        except OSError:
            self._federation = None
            return
        channel.send(
            json.dumps({"pop": self.name, "kind": "hello"}).encode()
            + b"\n"
        )
        self._federation = channel

    def _federate(self, event: BmpMessage) -> None:
        channel = self._federation
        if channel is None or channel.closed:
            self._federation_dropped += 1
            return
        channel.send(
            json.dumps(serialize_event(self.name, event),
                       sort_keys=True).encode() + b"\n"
        )

    # -- control RPC -------------------------------------------------------

    def _accept_control(self, channel: SocketChannel) -> None:
        reader = _LineReader()
        self._control_channels.append(channel)

        def on_data(data: bytes) -> None:
            # Control traffic is the lockstep driver talking to us — it
            # must not count as fleet activity, or every `step` would
            # observe its own arrival and the sweep would never go quiet.
            self._control_events += 1
            self._control_queue.extend(
                (line, channel) for line in reader.feed(data)
            )

        channel.on_data = on_data

    def _reply(self, channel: SocketChannel, payload: dict) -> None:
        if not channel.closed:
            channel.send(
                json.dumps(payload, sort_keys=True).encode() + b"\n"
            )

    def _drain_control(self) -> None:
        while self._control_queue:
            line, channel = self._control_queue.popleft()
            try:
                request = json.loads(line)
                response = self._dispatch(request)
            except Exception as exc:  # a bad command must not kill the PoP
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            self._reply(channel, response)

    def _dispatch(self, request: dict) -> dict:
        command = request.get("cmd")
        if command == "hello":
            return {"ok": True, "pop": self.name,
                    "digest": self.artifact["spec_digest"]}
        if command == "step":
            return {"ok": True, "activity": self.step()}
        if command == "snapshot":
            return {"ok": True,
                    "snapshot": self.fleet_pop.structural_snapshot()}
        if command == "invariants":
            return {"ok": True,
                    "invariants": self.fleet_pop.local_invariants()}
        if command == "expectations":
            return {"ok": True,
                    "expectations": self.fleet_pop.community_expectations()}
        if command == "summary":
            summary = self.fleet_pop.summary()
            summary["federation_dropped"] = self._federation_dropped
            return {"ok": True, "summary": summary}
        if command == "stop":
            self.running = False
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown command {command!r}"}

    # -- event loop --------------------------------------------------------

    def settle(self) -> int:
        """Pump sockets + drain same-time events until quiescent.

        Loopback TCP delivery is *asynchronous*: ``send`` returns before
        the bytes reach the peer's receive queue, so a zero-timeout pump
        can report "nothing ready" while an UPDATE is still in flight
        from the driver or another PoP.  A quiet round therefore only
        counts after a short *blocking* pump confirms it — waiting
        longer is always safe under frozen time (no timer can fire).
        """
        total = 0
        for _ in range(MAX_STEP_ROUNDS):
            activity = self.poller.pump(0)
            activity += self.scheduler.run_until(self.scheduler.now)
            total += activity
            if activity == 0:
                confirm = self.poller.pump(SETTLE_CONFIRM)
                confirm += self.scheduler.run_until(self.scheduler.now)
                total += confirm
                if confirm == 0:
                    break
        self.activity_total += total
        return total

    def step(self) -> int:
        """Settle, then report all activity since the previous ``step``.

        The main loop also processes I/O between control commands; that
        autonomous work must count toward the driver's quiescence sweep,
        or the controller could declare the fleet converged while a PoP
        was still digesting late-arriving bytes.
        """
        self.settle()
        control = self._control_events - self._last_control_events
        delta = self.activity_total - self._last_step_total - control
        self._last_step_total = self.activity_total
        self._last_control_events = self._control_events
        return max(0, delta)

    def run(self) -> None:
        self.start()
        signal.signal(signal.SIGTERM, lambda *_: setattr(
            self, "running", False
        ))
        while self.running:
            activity = self.poller.pump(0.05)
            activity += self.scheduler.run_until(self.scheduler.now)
            self.activity_total += activity
            self._drain_control()
            self._maintain_backbone()
            self._maintain_federation()
        self.close()

    def close(self) -> None:
        self.fleet_pop.close()
        for listener in self.listeners:
            listener.close()
        for channel in self._control_channels:
            channel.close()
        for state in self._dials.values():
            if state[0] is not None:
                state[0].close()
        if self._federation is not None:
            self._federation.close()
        for session in list(self.node_sessions()):
            channel = getattr(session, "channel", None)
            if channel is not None:
                channel.close()
        self.poller.close()

    def node_sessions(self):
        node = self.fleet_pop.node
        for upstream in node.upstreams.values():
            if upstream.session is not None:
                yield upstream.session
        for exp in node.experiments.values():
            if exp.session is not None:
                yield exp.session
        yield from node.backbone_peers.values()


def main(argv: Optional[list] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.fleet.runpop <pop-artifact.json>",
              file=sys.stderr)
        return 2
    artifact = load_artifact(argv[0])
    if artifact.get("artifact") != "pop":
        print(f"error: {argv[0]} is not a PoP artifact", file=sys.stderr)
        return 2
    process = PopProcess(artifact)
    process.run()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())
