"""Declarative world specifications for the PoP fleet (DESIGN.md §6k).

A :class:`WorldSpec` describes a whole deployment — PoPs, their upstream
neighbors, the experiments attached at each PoP, and the backbone — the
way the seed-emulator describes an emulation: data first, runnable
artifacts second.  The spec serializes to canonical sorted-key JSON and
carries a sha256 digest (the same discipline as ``repro.intent``
ChangeSets), and *everything* derived from it is a pure function of that
canonical form:

* the fleet-wide global-id map (gids in spec order, matching what an
  in-process deployment would allocate on first attach),
* every pinned address (upstream LAN addresses, backbone member
  addresses, experiment tunnel endpoints),
* the loopback port map — ports are carved deterministically from the
  digest, so two different worlds land on different port ranges while
  the same world always compiles to the same sockets.

Determinism here is not cosmetic: the fleet differential harness runs
one spec both in-process and as separate OS processes and compares wire
bytes, so every value that can reach the wire must be pinned by the
compiler rather than allocated per-process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ExperimentSpec",
    "PopSpec",
    "UpstreamSpec",
    "WorldSpec",
    "demo_world_spec",
]

PLATFORM_ASN = 47065
PORT_RANGE_BASE = 21000
PORT_RANGE_SPAN = 20000


@dataclass(frozen=True)
class UpstreamSpec:
    """One external AS peering with the platform at one PoP."""

    name: str
    asn: int
    kind: str = "peer"  # "peer" | "transit" | "route-server"


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: a leased prefix announced from client machines
    attached (via tunnel) at ``pops``."""

    name: str
    prefix: str
    pops: Tuple[str, ...]


@dataclass(frozen=True)
class PopSpec:
    """One Point of Presence; ``pop_id`` is its index in the world."""

    name: str
    kind: str = "university"  # "university" | "ixp"
    backbone: bool = True
    upstreams: Tuple[UpstreamSpec, ...] = ()


@dataclass(frozen=True)
class WorldSpec:
    """A complete declarative deployment description."""

    name: str
    pops: Tuple[PopSpec, ...]
    experiments: Tuple[ExperimentSpec, ...] = ()
    platform_asn: int = PLATFORM_ASN
    # Explicit port base pins the loopback port range; None derives it
    # from the digest so distinct worlds avoid each other's ports.
    port_base: Optional[int] = None

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        if not self.pops:
            raise ValueError("a world needs at least one PoP")
        pop_names = [pop.name for pop in self.pops]
        if len(set(pop_names)) != len(pop_names):
            raise ValueError("duplicate PoP names in world spec")
        for pop in self.pops:
            upstream_names = [up.name for up in pop.upstreams]
            if len(set(upstream_names)) != len(upstream_names):
                raise ValueError(
                    f"duplicate upstream names at PoP {pop.name!r}"
                )
        exp_names = [exp.name for exp in self.experiments]
        if len(set(exp_names)) != len(exp_names):
            raise ValueError("duplicate experiment names in world spec")
        for exp in self.experiments:
            for pop_name in exp.pops:
                if pop_name not in pop_names:
                    raise ValueError(
                        f"experiment {exp.name!r} references unknown PoP "
                        f"{pop_name!r}"
                    )

    # -- canonical serialization ------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "platform_asn": self.platform_asn,
            "port_base": self.port_base,
            "pops": [
                {
                    "name": pop.name,
                    "kind": pop.kind,
                    "backbone": pop.backbone,
                    "upstreams": [
                        {"name": up.name, "asn": up.asn, "kind": up.kind}
                        for up in pop.upstreams
                    ],
                }
                for pop in self.pops
            ],
            "experiments": [
                {
                    "name": exp.name,
                    "prefix": exp.prefix,
                    "pops": list(exp.pops),
                }
                for exp in self.experiments
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorldSpec":
        spec = cls(
            name=payload["name"],
            platform_asn=payload.get("platform_asn", PLATFORM_ASN),
            port_base=payload.get("port_base"),
            pops=tuple(
                PopSpec(
                    name=pop["name"],
                    kind=pop.get("kind", "university"),
                    backbone=pop.get("backbone", True),
                    upstreams=tuple(
                        UpstreamSpec(
                            name=up["name"],
                            asn=up["asn"],
                            kind=up.get("kind", "peer"),
                        )
                        for up in pop.get("upstreams", ())
                    ),
                )
                for pop in payload["pops"]
            ),
            experiments=tuple(
                ExperimentSpec(
                    name=exp["name"],
                    prefix=exp["prefix"],
                    pops=tuple(exp["pops"]),
                )
                for exp in payload.get("experiments", ())
            ),
        )
        spec.validate()
        return spec

    def canonical_json(self) -> str:
        """Canonical form: sorted keys, no whitespace (intent discipline)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @property
    def digest(self) -> str:
        return hashlib.sha256(
            self.canonical_json().encode()
        ).hexdigest()[:12]

    # -- derived, deterministic allocations --------------------------------

    def global_ids(self) -> List[Tuple[str, str, int]]:
        """The fleet-wide gid map: ``(pop, upstream, gid)`` in spec order.

        Matches what a single-process deployment's
        :class:`~repro.vbgp.allocator.GlobalNeighborRegistry` would hand
        out when PoPs attach their upstreams in spec order — so a fleet
        of processes, each pinning this map, agrees with the in-process
        reference on every virtual MAC / global IP / kernel table.
        """
        assignments: List[Tuple[str, str, int]] = []
        gid = 1
        for pop in self.pops:
            for upstream in pop.upstreams:
                assignments.append((pop.name, upstream.name, gid))
                gid += 1
        return assignments

    def backbone_members(self) -> List[str]:
        return [pop.name for pop in self.pops if pop.backbone]

    def pop_id(self, pop_name: str) -> int:
        for index, pop in enumerate(self.pops):
            if pop.name == pop_name:
                return index
        raise KeyError(pop_name)

    def experiments_at(self, pop_name: str) -> List[ExperimentSpec]:
        """Experiments attached at one PoP, in spec order."""
        return [exp for exp in self.experiments if pop_name in exp.pops]

    def port_map(self) -> Dict[str, object]:
        """Deterministic loopback port assignment from the spec digest.

        One federation port for the whole fleet, then per PoP in spec
        order: a control port, a backbone port (when the PoP is a
        backbone member), one port per upstream, one per attached
        experiment.  The base is carved from the digest so two distinct
        worlds land on distinct ranges; an explicit ``port_base`` pins
        it for tests.
        """
        if self.port_base is not None:
            base = self.port_base
        else:
            base = PORT_RANGE_BASE + (
                int(self.digest[:8], 16) % PORT_RANGE_SPAN
            )
        cursor = iter(range(base, base + 1000))
        ports: Dict[str, object] = {
            "base": base,
            "federation": next(cursor),
            "pops": {},
        }
        for pop in self.pops:
            entry: Dict[str, object] = {"control": next(cursor)}
            entry["backbone"] = next(cursor) if pop.backbone else None
            entry["upstreams"] = {
                up.name: next(cursor) for up in pop.upstreams
            }
            entry["experiments"] = {
                exp.name: next(cursor) for exp in self.experiments_at(pop.name)
            }
            ports["pops"][pop.name] = entry
        return ports


def demo_world_spec(pops: int = 3, name: str = "demo",
                    port_base: Optional[int] = None) -> WorldSpec:
    """The canonical small fleet: ``pops`` backbone PoPs, one transit
    upstream each, experiment ``alpha`` attached everywhere and ``beta``
    at the first PoP only (the CI 3-PoP world)."""
    pop_specs = tuple(
        PopSpec(
            name=f"pop{index}",
            kind="ixp" if index % 2 else "university",
            backbone=True,
            upstreams=(
                UpstreamSpec(
                    name=f"up{index}", asn=65010 + 10 * index, kind="transit"
                ),
            ),
        )
        for index in range(pops)
    )
    pop_names = tuple(pop.name for pop in pop_specs)
    experiments = (
        ExperimentSpec(
            name="alpha", prefix="184.164.224.0/24", pops=pop_names
        ),
        ExperimentSpec(
            name="beta", prefix="184.164.225.0/24", pops=pop_names[:1]
        ),
    )
    spec = WorldSpec(
        name=name, pops=pop_specs, experiments=experiments,
        port_base=port_base,
    )
    spec.validate()
    return spec
