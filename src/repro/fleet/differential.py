"""Fleet differential harness: in-process vs real multi-process (§6k).

The proof obligation of the fleet subsystem: one :class:`WorldSpec`,
one churn workload, run twice —

* the **reference leg** builds every PoP from its compiled artifact in
  one process over in-memory channel pairs;
* the **fleet leg** boots the same artifacts as one OS process per PoP
  (:class:`~repro.fleet.controller.FleetController`) and drives them
  over real loopback TCP.

Afterwards the harness diffs, byte-for-byte: every PoP's canonical
structural snapshot (Adj-RIB-Ins, remote RIBs, ADD-PATH announcements,
kernel tables, install counters), every external speaker's Loc-RIB, and
the raw UPDATE wire bytes each external endpoint received — plus the
full six-invariant catalog evaluated over the *fleet* (four invariants
inside each PoP process via the control RPC, two driver-side against
the external speakers).

Determinism rests on the frozen-time lockstep protocol: scheduler time
never advances in either leg (all sessions negotiate hold time 0, so no
timer ever arms), every churn step fully settles before the next, and
each endpoint's wire stream is compared per-channel so cross-channel
arrival order — the one thing real sockets cannot pin — never enters
the comparison.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.attributes import Route, local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import SocketChannel, connect_pair
from repro.conformance.differential import (
    WireTap,
    changes_from_frames,
    loc_rib_snapshot,
)
from repro.fleet.compiler import CompiledFleet, compile_world
from repro.fleet.controller import FleetController
from repro.fleet.runtime import LOCAL_INVARIANTS, build_fleet_pop
from repro.fleet.spec import WorldSpec, demo_world_spec
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.sim.scheduler import Scheduler
from repro.telemetry import TelemetryHub
from repro.vbgp.communities import (
    announce_to_neighbor,
    block_neighbor,
    is_control,
)

__all__ = [
    "FleetDifferentialHarness",
    "FleetDifferentialReport",
    "InProcessFleetLeg",
    "SocketFleetLeg",
    "run_fleet_differential",
]


@dataclass
class _Endpoint:
    """One external upstream AS: a real BGP speaker the PoP peers with."""

    pop: str
    upstream: str
    key: str  # "pop/upstream" — comparison key across legs
    speaker: BgpSpeaker
    channel: object
    tap: WireTap
    updates: list = field(default_factory=list)

    @property
    def established(self) -> bool:
        return self.speaker.neighbors[self.key].established


@dataclass
class _Client:
    """One experiment's client speaker at one PoP (over its tunnel)."""

    experiment: str
    pop: str
    key: str  # "experiment@pop"
    prefix: str
    tunnel_ip: str
    speaker: BgpSpeaker
    channel: object
    tap: WireTap

    @property
    def established(self) -> bool:
        return self.speaker.neighbors[self.key].established


@dataclass
class LegResult:
    """Everything one leg produced, canonicalised for comparison."""

    snapshots: Dict[str, str]  # pop -> structural snapshot
    expectations: Dict[str, dict]  # pop -> per-upstream §3.2.1 map
    summaries: Dict[str, dict]
    driver_ribs: Dict[str, str]  # endpoint/client key -> Loc-RIB repr
    wire: Dict[str, bytes]  # key -> raw UPDATE frames received
    changes: Dict[str, str]  # key -> decoded change stream repr
    invariants: Dict[str, dict]  # six invariant reports
    federation_events: int = 0


class _DriverLeg:
    """Shared driver-side wiring and workload; subclasses supply the
    transport (:meth:`open_channel`), the settle barrier, and the PoP
    introspection path (in-process call vs control RPC)."""

    def __init__(self, fleet: CompiledFleet) -> None:
        self.fleet = fleet
        self.spec_pops: List[dict] = fleet.world["spec"]["pops"]
        self.spec_experiments: List[dict] = fleet.world["spec"]["experiments"]
        self.endpoints: List[_Endpoint] = []
        self.clients: Dict[Tuple[str, str], _Client] = {}
        self.scheduler: Scheduler  # set by subclass before wire_driver()

    # -- subclass hooks ----------------------------------------------------

    def open_channel(self, kind: str, pop: str, name: str):
        raise NotImplementedError

    def settle(self) -> None:
        raise NotImplementedError

    def pop_call(self, pop: str, what: str):
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- driver construction (identical across legs) -----------------------

    def wire_driver(self) -> None:
        """Attach every external speaker, settling after each attach so
        per-PoP neighbor insertion order is the spec order in both legs."""
        for pop_entry in self.spec_pops:
            pop_name = pop_entry["name"]
            artifact = self.fleet.artifacts[pop_name]
            for up_name in artifact["upstream_order"]:
                info = artifact["upstreams"][up_name]
                key = f"{pop_name}/{up_name}"
                speaker = BgpSpeaker(self.scheduler, SpeakerConfig(
                    asn=info["asn"],
                    router_id=IPv4Address.parse(info["address"]),
                    hold_time=0,  # frozen time: no timers on either side
                ))
                channel = self.open_channel("upstream", pop_name, up_name)
                speaker.attach_neighbor(NeighborConfig(
                    name=key,
                    peer_asn=None,
                    local_address=IPv4Address.parse(info["address"]),
                    graceful_restart=True,
                ), channel)
                tap = WireTap(channel)
                self.endpoints.append(_Endpoint(
                    pop=pop_name, upstream=up_name, key=key,
                    speaker=speaker, channel=channel, tap=tap,
                ))
                self.settle()
        platform_asn = self.fleet.world["spec"]["platform_asn"]
        for exp_entry in self.spec_experiments:
            for pop_name in exp_entry["pops"]:
                artifact = self.fleet.artifacts[pop_name]
                info = next(e for e in artifact["experiments"]
                            if e["name"] == exp_entry["name"])
                key = f"{exp_entry['name']}@{pop_name}"
                speaker = BgpSpeaker(self.scheduler, SpeakerConfig(
                    asn=platform_asn,
                    router_id=IPv4Address.parse(info["tunnel_ip"]),
                    hold_time=0,
                ))
                # Fan-out paths carry the platform ASN; the client must
                # not drop them as loops (same as the toolkit client).
                speaker.allow_own_asn_in = True
                channel = self.open_channel(
                    "experiment", pop_name, exp_entry["name"])
                speaker.attach_neighbor(NeighborConfig(
                    name=key,
                    peer_asn=None,
                    local_address=IPv4Address.parse(info["tunnel_ip"]),
                    addpath=True,
                ), channel)
                tap = WireTap(channel)
                self.clients[(exp_entry["name"], pop_name)] = _Client(
                    experiment=exp_entry["name"], pop=pop_name, key=key,
                    prefix=info["prefix"], tunnel_ip=info["tunnel_ip"],
                    speaker=speaker, channel=channel, tap=tap,
                )
                self.settle()

    def unestablished(self) -> List[str]:
        """Session names not (yet) Established — must be empty post-boot."""
        out = [ep.key for ep in self.endpoints if not ep.established]
        out += [c.key for c in self.clients.values() if not c.established]
        for pop_entry in self.spec_pops:
            summary = self.pop_call(pop_entry["name"], "summary")
            for section in ("upstreams", "experiments", "backbone_peers"):
                for name, up in summary[section].items():
                    if not up:
                        out.append(
                            f"{pop_entry['name']}:{section}:{name}")
        return sorted(out)

    # -- workload ----------------------------------------------------------

    def apply_update(self, endpoint: _Endpoint, update) -> None:
        for prefix, _path_id in update.withdrawn:
            endpoint.speaker.withdraw(prefix)
        if update.attributes is not None:
            for prefix, _path_id in update.nlri:
                endpoint.speaker.originate(
                    Route(prefix=prefix, attributes=update.attributes))

    def announce(self, experiment: str, pop: str, communities=()) -> None:
        client = self.clients[(experiment, pop)]
        client.speaker.originate(local_route(
            IPv4Prefix.parse(client.prefix),
            next_hop=IPv4Address.parse(client.tunnel_ip),
            communities=communities,
        ))

    # -- collection --------------------------------------------------------

    def collect(self) -> LegResult:
        self.settle()
        snapshots: Dict[str, str] = {}
        expectations: Dict[str, dict] = {}
        summaries: Dict[str, dict] = {}
        local_reports: Dict[str, dict] = {
            name: {"ok": True, "checked": 0, "violations": []}
            for name in LOCAL_INVARIANTS
        }
        for pop_entry in self.spec_pops:
            pop = pop_entry["name"]
            snapshots[pop] = self.pop_call(pop, "snapshot")
            expectations[pop] = self.pop_call(pop, "expectations")
            summaries[pop] = self.pop_call(pop, "summary")
            for name, report in self.pop_call(pop, "invariants").items():
                merged = local_reports[name]
                merged["ok"] = merged["ok"] and report["ok"]
                merged["checked"] += report["checked"]
                merged["violations"] += [
                    f"{pop}: {v}" for v in report["violations"]]
        driver_ribs: Dict[str, str] = {}
        wire: Dict[str, bytes] = {}
        changes: Dict[str, str] = {}
        for ep in self.endpoints:
            driver_ribs[ep.key] = repr(loc_rib_snapshot(ep.speaker))
            wire[ep.key] = b"".join(ep.tap.frames)
            changes[ep.key] = repr(
                changes_from_frames(ep.tap.frames, addpath=False))
        for client in self.clients.values():
            driver_ribs[client.key] = repr(loc_rib_snapshot(client.speaker))
            wire[client.key] = b"".join(client.tap.frames)
            changes[client.key] = repr(
                changes_from_frames(client.tap.frames, addpath=True))
        invariants = dict(local_reports)
        invariants["community_propagation"] = (
            self._check_community_propagation(expectations))
        invariants["no_cross_experiment_leakage"] = (
            self._check_no_cross_experiment_leakage())
        return LegResult(
            snapshots=snapshots,
            expectations=expectations,
            summaries=summaries,
            driver_ribs=driver_ribs,
            wire=wire,
            changes=changes,
            invariants=invariants,
        )

    def _check_community_propagation(self, expectations) -> dict:
        """Driver half of the §3.2.1 invariant: each PoP exported its
        expectation map (via RPC in the fleet leg); the external speakers
        are in this process, so presence/absence and control-community
        hygiene are checked here."""
        report = {"ok": True, "checked": 0, "violations": []}
        for ep in self.endpoints:
            per_upstream = expectations[ep.pop].get(ep.upstream)
            if per_upstream is None:
                continue
            for prefix_str, expected in per_upstream.items():
                report["checked"] += 1
                best = ep.speaker.best_route(IPv4Prefix.parse(prefix_str))
                if expected and best is None:
                    report["violations"].append(
                        f"{ep.key}: expected export of {prefix_str} "
                        "but the neighbor does not hold it")
                elif not expected and best is not None:
                    report["violations"].append(
                        f"{ep.key}: holds {prefix_str} although control "
                        "communities exclude it")
                if best is not None:
                    leaked = sorted(
                        str(c) for c in best.communities if is_control(c))
                    if leaked:
                        report["violations"].append(
                            f"{ep.key}: export of {prefix_str} leaks "
                            f"control communities {', '.join(leaked)}")
        report["ok"] = not report["violations"]
        return report

    def _check_no_cross_experiment_leakage(self) -> dict:
        allocated: Dict[str, set] = {
            exp["name"]: {exp["prefix"]} for exp in self.spec_experiments
        }
        report = {"ok": True, "checked": 0, "violations": []}
        for client in self.clients.values():
            foreign = set()
            for other, prefixes in allocated.items():
                if other != client.experiment:
                    foreign |= prefixes
            for prefix in client.speaker.loc_rib.prefixes():
                report["checked"] += 1
                if str(prefix) in foreign:
                    report["violations"].append(
                        f"{client.key}: holds {prefix}, allocated to "
                        "another experiment")
        report["ok"] = not report["violations"]
        return report


class InProcessFleetLeg(_DriverLeg):
    """Reference leg: every PoP built from its artifact in this process,
    all transports in-memory channel pairs on one frozen scheduler."""

    def __init__(self, fleet: CompiledFleet) -> None:
        super().__init__(fleet)
        self.scheduler = Scheduler()
        self.pops = {}
        for name in fleet.pop_names():
            hub = TelemetryHub(self.scheduler, name=f"fleet-{name}")
            self.pops[name] = build_fleet_pop(
                self.scheduler, fleet.artifacts[name], telemetry=hub)
        members = [
            name for name in fleet.pop_names()
            if fleet.artifacts[name]["backbone"]["address"] is not None
        ]
        for index, a in enumerate(members):
            for b in members[index + 1:]:
                end_a, end_b = connect_pair(self.scheduler, rtt=0.0)
                self.pops[a].attach_backbone_channel(b, end_a)
                self.pops[b].attach_backbone_channel(a, end_b)
                self.settle()

    def open_channel(self, kind: str, pop: str, name: str):
        ours, theirs = connect_pair(self.scheduler, rtt=0.0)
        if kind == "upstream":
            self.pops[pop].attach_upstream_channel(name, ours)
        else:
            self.pops[pop].attach_experiment_channel(name, ours)
        return theirs

    def settle(self) -> None:
        # Frozen time: drain every event scheduled at the current instant
        # (delivery cascades schedule more at the same instant).
        while self.scheduler.run_until(self.scheduler.now):
            pass

    def pop_call(self, pop: str, what: str):
        fleet_pop = self.pops[pop]
        if what == "snapshot":
            return fleet_pop.structural_snapshot()
        if what == "invariants":
            return fleet_pop.local_invariants()
        if what == "expectations":
            return fleet_pop.community_expectations()
        if what == "summary":
            return fleet_pop.summary()
        raise ValueError(what)

    def close(self) -> None:
        for fleet_pop in self.pops.values():
            fleet_pop.close()


class SocketFleetLeg(_DriverLeg):
    """Fleet leg: one OS process per PoP over loopback TCP, driven via
    the controller; external speakers live here on their own frozen
    scheduler and dial the PoPs' compiled ports."""

    #: Consecutive all-quiet sweeps before declaring convergence; each
    #: quiet sweep is confirmed with a short blocking pump because
    #: loopback TCP delivers asynchronously (bytes can be in flight when
    #: a zero-timeout pump reports nothing ready).
    QUIET_SWEEPS = 2
    MAX_SWEEPS = 10_000

    def __init__(self, fleet: CompiledFleet,
                 boot_timeout: float = 30.0) -> None:
        super().__init__(fleet)
        self.scheduler = Scheduler()
        self.controller = FleetController(fleet)
        self.controller.up()
        self._wait_boot(boot_timeout)

    def _wait_boot(self, timeout: float) -> None:
        """Wall-clock barrier: backbone mesh full and federation joined.

        Backbone dials and federation connects are wall-clock throttled
        inside each PoP process, so a pure sweep loop could go quiet
        before they happen; poll until every member sees every other
        member and every PoP said hello to the federation listener.
        """
        members = [
            name for name in self.fleet.pop_names()
            if self.fleet.artifacts[name]["backbone"]["address"] is not None
        ]
        expected_hellos = len(self.fleet.pop_names())
        deadline = time.monotonic() + timeout
        while True:
            self.settle()
            missing: List[str] = []
            for name in members:
                peers = self.pop_call(name, "summary")["backbone_peers"]
                for other in members:
                    if other != name and not peers.get(other):
                        missing.append(f"{name}->{other}")
            if not missing and (
                    self.controller.federation_events >= expected_hellos):
                return
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"fleet boot did not converge: backbone {missing}, "
                    f"federation events "
                    f"{self.controller.federation_events}/{expected_hellos}")
            time.sleep(0.05)

    def open_channel(self, kind: str, pop: str, name: str):
        ports = self.fleet.world["ports"]["pops"][pop]
        port = ports["upstreams" if kind == "upstream" else
                     "experiments"][name]
        return SocketChannel.connect(self.controller.poller,
                                     "127.0.0.1", port)

    def _drain_driver(self) -> int:
        fired = 0
        while True:
            step = self.scheduler.run_until(self.scheduler.now)
            if not step:
                return fired
            fired += step

    def settle(self) -> None:
        quiet = 0
        for _sweep in range(self.MAX_SWEEPS):
            activity = self._drain_driver()
            activity += self.controller.step_all()
            activity += self._drain_driver()
            if activity == 0:
                # Confirm quiet with a blocking pump: gives in-flight
                # bytes (pop -> driver, pop -> pop) time to land.
                activity = self.controller.poller.pump(0.01)
                activity += self._drain_driver()
            if activity == 0:
                quiet += 1
                if quiet >= self.QUIET_SWEEPS:
                    return
            else:
                quiet = 0
        raise RuntimeError("fleet settle did not quiesce")

    def pop_call(self, pop: str, what: str):
        return self.controller.clients[pop].call(what)[
            {"snapshot": "snapshot", "invariants": "invariants",
             "expectations": "expectations", "summary": "summary"}[what]]

    def collect(self) -> LegResult:
        result = super().collect()
        result.federation_events = self.controller.federation_events
        return result

    def close(self) -> None:
        for ep in self.endpoints:
            ep.channel.close()
        for client in self.clients.values():
            client.channel.close()
        self.controller.down()


@dataclass
class FleetDifferentialReport:
    """Outcome of one spec + workload run both ways."""

    spec_digest: str
    pops: int
    updates: int
    mismatches: List[str]
    invariants: Dict[str, dict]  # fleet-leg six-invariant catalog
    reference_invariants: Dict[str, dict]
    federation_events: int

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and all(r["ok"] for r in self.invariants.values())
            and all(r["ok"] for r in self.reference_invariants.values())
            and self.federation_events > 0
        )

    def format(self) -> str:
        lines = [
            f"fleet differential: spec {self.spec_digest}, "
            f"{self.pops} PoPs, {self.updates} updates — "
            f"{'OK' if self.ok else 'FAIL'}",
            f"  federation events: {self.federation_events}",
        ]
        for name in sorted(self.invariants):
            report = self.invariants[name]
            lines.append(
                f"  invariant {name}: "
                f"{'ok' if report['ok'] else 'VIOLATED'} "
                f"({report['checked']} checked)")
            lines.extend(f"    {v}" for v in report["violations"][:5])
        if self.mismatches:
            lines.append(f"  {len(self.mismatches)} mismatch(es):")
            lines.extend(f"    {m}" for m in self.mismatches[:10])
        return "\n".join(lines)


class FleetDifferentialHarness:
    """Run one WorldSpec + churn workload in both legs and diff them."""

    def __init__(self, pops: int = 3, updates: int = 90,
                 prefix_count: int = 40, seed: int = 0,
                 port_base: Optional[int] = None) -> None:
        if pops < 2:
            raise ValueError("fleet differential needs at least 2 PoPs")
        self.spec = demo_world_spec(pops=pops, port_base=port_base)
        self.updates = updates
        self.prefix_count = prefix_count
        self.seed = seed

    # -- workload (identical object stream in both legs) -------------------

    def _checkpoints(self, fleet: CompiledFleet) -> Dict[int, tuple]:
        """Experiment announcements interleaved into the churn, exercising
        plain announce, ANNOUNCE-whitelist, and BLOCK communities."""
        pops = fleet.pop_names()
        first = pops[0]
        first_artifact = fleet.artifacts[first]
        second_artifact = fleet.artifacts[pops[1]]
        gid_here = first_artifact["upstreams"][
            first_artifact["upstream_order"][0]]["gid"]
        gid_there = second_artifact["upstreams"][
            second_artifact["upstream_order"][0]]["gid"]
        total = self.updates
        return {
            total // 6: ("beta", first, ()),
            total // 3: ("alpha", first, (announce_to_neighbor(gid_there),)),
            (2 * total) // 3: ("alpha", first, (block_neighbor(gid_here),)),
        }

    def _drive(self, leg: _DriverLeg, fleet: CompiledFleet,
               mismatches: List[str], label: str) -> Optional[LegResult]:
        leg.wire_driver()
        pending = leg.unestablished()
        if pending:
            mismatches.append(f"{label}: sessions not established "
                              f"after boot: {', '.join(pending)}")
            return None
        count = len(leg.endpoints)
        per_endpoint = -(-self.updates // count)
        for index, endpoint in enumerate(leg.endpoints):
            generator = ChurnGenerator(
                AMSIX_PROFILE, prefix_count=self.prefix_count,
                seed=self.seed + index)
            endpoint.updates = generator.make_updates(per_endpoint)
        checkpoints = self._checkpoints(fleet)
        for step in range(self.updates):
            checkpoint = checkpoints.get(step)
            if checkpoint is not None:
                experiment, pop, communities = checkpoint
                leg.announce(experiment, pop, communities)
                leg.settle()
            endpoint = leg.endpoints[step % count]
            leg.apply_update(endpoint, endpoint.updates[step // count])
            leg.settle()
        return leg.collect()

    # -- comparison --------------------------------------------------------

    @staticmethod
    def _diff(reference: LegResult, fleet: LegResult) -> List[str]:
        mismatches: List[str] = []
        for pop, snapshot in reference.snapshots.items():
            if fleet.snapshots.get(pop) != snapshot:
                mismatches.append(f"structural snapshot differs at {pop}")
        for pop, expected in reference.expectations.items():
            if fleet.expectations.get(pop) != expected:
                mismatches.append(f"export expectations differ at {pop}")
        for key, rib in reference.driver_ribs.items():
            if fleet.driver_ribs.get(key) != rib:
                mismatches.append(f"external Loc-RIB differs at {key}")
        for key, frames in reference.wire.items():
            got = fleet.wire.get(key, b"")
            if got != frames:
                mismatches.append(
                    f"wire bytes differ at {key}: reference "
                    f"{len(frames)}B, fleet {len(got)}B")
        for key, stream in reference.changes.items():
            if fleet.changes.get(key) != stream:
                mismatches.append(f"decoded change stream differs at {key}")
        return mismatches

    def run(self, workdir: Optional[str] = None) -> FleetDifferentialReport:
        if workdir is None:
            with tempfile.TemporaryDirectory(prefix="fleet-diff-") as tmp:
                return self._run_in(tmp)
        return self._run_in(workdir)

    def _run_in(self, workdir: str) -> FleetDifferentialReport:
        fleet = compile_world(self.spec, workdir)
        mismatches: List[str] = []

        reference_leg = InProcessFleetLeg(fleet)
        try:
            reference = self._drive(
                reference_leg, fleet, mismatches, "reference")
        finally:
            reference_leg.close()

        fleet_result = None
        if reference is not None:
            fleet_leg = SocketFleetLeg(fleet)
            try:
                fleet_result = self._drive(
                    fleet_leg, fleet, mismatches, "fleet")
            finally:
                fleet_leg.close()

        if reference is not None and fleet_result is not None:
            mismatches.extend(self._diff(reference, fleet_result))
        empty = {name: {"ok": False, "checked": 0,
                        "violations": ["leg did not run"]}
                 for name in (*LOCAL_INVARIANTS, "community_propagation",
                              "no_cross_experiment_leakage")}
        return FleetDifferentialReport(
            spec_digest=fleet.digest,
            pops=len(self.spec.pops),
            updates=self.updates,
            mismatches=mismatches,
            invariants=(fleet_result.invariants
                        if fleet_result is not None else dict(empty)),
            reference_invariants=(reference.invariants
                                  if reference is not None else dict(empty)),
            federation_events=(fleet_result.federation_events
                               if fleet_result is not None else 0),
        )


def run_fleet_differential(pops: int = 3, updates: int = 90,
                           prefix_count: int = 40, seed: int = 0,
                           port_base: Optional[int] = None,
                           workdir: Optional[str] = None,
                           ) -> FleetDifferentialReport:
    """One-call entry point used by the CLI and CI."""
    return FleetDifferentialHarness(
        pops=pops, updates=updates, prefix_count=prefix_count, seed=seed,
        port_base=port_base).run(workdir)
