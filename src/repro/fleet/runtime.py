"""Build one PoP from a compiled fleet artifact (DESIGN.md §6k).

:func:`build_fleet_pop` is the shared construction path of the fleet: the
per-PoP OS process (:mod:`repro.fleet.runpop`) and the in-process
reference leg of the fleet differential harness both call it, so "the
same PoP" means *the same code built it from the same artifact* — the
only difference between the legs is the transport under the BGP
sessions (loopback TCP vs in-memory channel pairs).

Everything nondeterministic about multi-process construction is resolved
here from the artifact's pinned values: global ids are preassigned into
the process-local registry, the backbone address is pinned rather than
counter-allocated, and upstream LAN addresses/MACs come from the
compiler.  The node's own allocators (local VIPs, ADD-PATH ids) stay
untouched — they are functions of route arrival order, which the fleet
protocol makes identical across legs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bgp.transport import Channel
from repro.conformance.differential import attr_fingerprint, route_fingerprint
from repro.conformance.invariants import (
    ConformanceContext,
    community_export_expectations,
    run_invariants,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.platform.backbone import Backbone
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.capabilities import ExperimentProfile
from repro.security.state import EnforcerState
from repro.sim.scheduler import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry

__all__ = ["FleetPop", "LOCAL_INVARIANTS", "build_fleet_pop"]

#: The invariants a PoP can evaluate over its own state, without seeing
#: the driver's speakers (those run driver-side in the harness).
LOCAL_INVARIANTS = (
    "vmac_bijectivity",
    "addpath_completeness",
    "kernel_consistency",
    "no_withdrawal_loss_under_shed",
)


class FleetPop:
    """One artifact-built PoP plus its attachment/introspection surface.

    ``.pop``/``.node`` are the ordinary platform objects; the methods
    here are what the run-pop control protocol (and the reference leg)
    drive: attach a transport channel to a named upstream / experiment /
    backbone peer, snapshot canonical state, evaluate local invariants.
    """

    def __init__(self, scheduler: Scheduler, artifact: dict,
                 pop: PointOfPresence,
                 backbone: Optional[Backbone]) -> None:
        self.scheduler = scheduler
        self.artifact = artifact
        self.pop = pop
        self.backbone = backbone

    @property
    def node(self):
        return self.pop.node

    @property
    def name(self) -> str:
        return self.artifact["pop"]

    # -- attachment (channels come from sockets or connect_pair) ----------

    def attach_upstream_channel(self, name: str, channel: Channel) -> None:
        """Attach (or re-attach, when the driver re-dials) an upstream.

        First attach registers the neighbor with the artifact's pinned
        address/MAC/gid; a later attach rebuilds only the session on the
        new channel — Graceful Restart state and the Adj-RIB-In survive,
        which is what lets a crash-restarted driver connection recover
        the session without a withdraw storm.
        """
        endpoint = self.artifact["upstreams"][name]
        node = self.node
        existing = node.upstreams.get(name)
        if existing is None:
            node.attach_upstream(
                name=name,
                peer_asn=endpoint["asn"],
                peer_address=IPv4Address.parse(endpoint["address"]),
                peer_mac=MacAddress.parse(endpoint["mac"]),
                channel=channel,
                kind=endpoint["kind"],
                graceful_restart=True,
            )
            attached = node.upstreams[name]
            if attached.virtual.global_id != endpoint["gid"]:
                raise RuntimeError(
                    f"{self.name}/{name}: registry allocated gid "
                    f"{attached.virtual.global_id}, artifact pins "
                    f"{endpoint['gid']}"
                )
            return
        old = existing.session
        if old is not None:
            old.shutdown()
        session = node._upstream_session(existing, channel)
        session.start()

    def attach_experiment_channel(self, name: str, channel: Channel) -> None:
        """Attach an experiment client connection over its tunnel."""
        for entry in self.artifact["experiments"]:
            if entry["name"] == name:
                break
        else:
            raise KeyError(f"experiment {name!r} not at {self.name}")
        node = self.node
        existing = node.experiments.get(name)
        if existing is not None and existing.session is not None:
            # A re-dial replaces the transport; tearing down via the
            # node would withdraw the experiment's announcements, so
            # only the session is rebuilt.
            existing.session.shutdown()
            node.experiments.pop(name, None)
        node.attach_experiment(
            name=name,
            asn=self.artifact["platform_asn"],
            prefixes=(IPv4Prefix.parse(entry["prefix"]),),
            tunnel_ip=IPv4Address.parse(entry["tunnel_ip"]),
            tunnel_mac=MacAddress.parse(entry["tunnel_mac"]),
            channel=channel,
        )

    def attach_backbone_channel(self, peer: str, channel: Channel) -> None:
        """Join the backbone mesh with another PoP over ``channel``."""
        old = self.node.backbone_peers.get(peer)
        if old is not None:
            old.shutdown()
        self.node.attach_backbone_peer(peer, channel)

    # -- canonical state ---------------------------------------------------

    def structural_snapshot(self) -> str:
        """Canonical structural state, as a stable ``repr`` string.

        Same canonicalisation discipline as the perf differential
        harness: everything is sorted tuples of primitives, so two PoPs
        holding the same state produce the same bytes regardless of
        dict/set iteration order.  ADD-PATH ids of ``None`` sort as -1
        so upstream (non-ADD-PATH) and backbone (ADD-PATH) RIBs share
        one shape.
        """
        node = self.node
        def rib_rows(rib) -> list:
            return sorted(
                (
                    str(prefix),
                    -1 if source_id is None else source_id,
                    attr_fingerprint(route.attributes),
                )
                for (prefix, source_id), route in rib.items()
            )

        upstreams = [
            (name, rib_rows(node.upstreams[name].rib))
            for name in sorted(node.upstreams)
        ]
        remotes = [
            (gid, rib_rows(node.remote_neighbors[gid].rib))
            for gid in sorted(node.remote_neighbors)
        ]
        remote_exp = sorted(
            (str(prefix), route_fingerprint(route))
            for prefix, route in node.remote_exp_routes.items()
        )
        announced = []
        for exp_name in sorted(node.experiments):
            exp = node.experiments[exp_name]
            announced.append((exp_name, sorted(
                (str(prefix), -1 if path_id is None else path_id,
                 route_fingerprint(route))
                for (prefix, path_id), route in exp.announced.items()
            )))
        kernel = []
        for table_id in sorted(self.pop.stack.tables):
            table = self.pop.stack.tables[table_id]
            kernel.append((table_id, sorted(
                (str(entry.prefix), str(entry.value.next_hop),
                 entry.value.out_iface)
                for entry in table.entries()
            )))
        return repr((
            ("pop", self.name),
            ("upstreams", upstreams),
            ("remote_neighbors", remotes),
            ("remote_exp_routes", remote_exp),
            ("exp_announced", announced),
            ("kernel", kernel),
            ("installed", node.counters["routes_installed"]),
            ("removed", node.counters["routes_removed"]),
        ))

    def local_invariants(self) -> Dict[str, dict]:
        """The invariant subset evaluable inside this process."""
        ctx = ConformanceContext(pops={self.name: self.pop})
        reports = run_invariants(ctx, LOCAL_INVARIANTS)
        return {
            name: {
                "ok": report.ok,
                "checked": report.checked,
                "violations": list(report.violations),
            }
            for name, report in reports.items()
        }

    def community_expectations(self) -> Dict[str, Optional[dict]]:
        """Per-upstream §3.2.1 export expectations (for the driver-side
        ``community_propagation`` check against its external speakers)."""
        out: Dict[str, Optional[dict]] = {}
        for name in sorted(self.node.upstreams):
            expectations = community_export_expectations(self.node, name)
            if expectations is None:
                out[name] = None
            else:
                out[name] = {
                    str(prefix): expected
                    for prefix, expected in expectations.items()
                }
        return out

    def summary(self) -> dict:
        node = self.node
        return {
            "pop": self.name,
            "upstreams": {
                name: bool(up.session is not None
                           and up.session.established)
                for name, up in node.upstreams.items()
            },
            "experiments": {
                name: bool(exp.session is not None
                           and exp.session.established)
                for name, exp in node.experiments.items()
            },
            "backbone_peers": {
                name: session.established
                for name, session in node.backbone_peers.items()
            },
            "remote_neighbors": len(node.remote_neighbors),
            "routes": len(node.known_routes()),
            "counters": dict(node.counters),
        }

    def close(self) -> None:
        self.node.close_shard_engine()


def build_fleet_pop(scheduler: Scheduler, artifact: dict,
                    telemetry=None) -> FleetPop:
    """Construct one PoP from its compiled artifact.

    Order matters and is fixed: registry preassignment (so any attach
    order yields the pinned gids), then the platform objects, then the
    backbone interface (pinned address), then experiment security
    profiles.  Channels are attached afterwards by the caller — the
    run-pop process attaches accepted sockets, the reference leg
    attaches in-memory pairs.
    """
    registry = GlobalNeighborRegistry()
    for pop_name, upstream_name, gid in artifact["gids"]:
        registry.preassign(pop_name, upstream_name, gid)
    platform_asn = artifact["platform_asn"]
    config = PopConfig(
        name=artifact["pop"],
        pop_id=artifact["pop_id"],
        kind=artifact["kind"],
        backbone=artifact["backbone"]["address"] is not None,
    )
    pop = PointOfPresence(
        scheduler,
        config,
        platform_asn=platform_asn,
        platform_asns=frozenset({platform_asn}),
        registry=registry,
        enforcer_state=EnforcerState(),
        telemetry=telemetry,
    )
    backbone = None
    if artifact["backbone"]["address"] is not None:
        backbone = Backbone(scheduler, name=f"bb-{artifact['pop']}")
        pop.enable_backbone(
            backbone,
            address=IPv4Address.parse(artifact["backbone"]["address"]),
        )
    for entry in artifact["experiments"]:
        pop.control_enforcer.register_experiment(ExperimentProfile(
            name=entry["name"],
            asns=frozenset({platform_asn}),
            prefixes=(IPv4Prefix.parse(entry["prefix"]),),
        ))
    return FleetPop(scheduler, artifact, pop, backbone)
