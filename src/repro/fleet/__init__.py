"""repro.fleet — compile a declarative world into a PoP fleet (§6k).

The subsystem has three layers:

* :mod:`repro.fleet.spec` — the declarative :class:`WorldSpec` with
  canonical JSON + digest and every deterministic derived allocation;
* :mod:`repro.fleet.compiler` — :func:`compile_world` turning a spec
  into self-contained per-PoP artifacts plus a world manifest;
* :mod:`repro.fleet.runtime` / :mod:`repro.fleet.runpop` /
  :mod:`repro.fleet.controller` — the same artifact booted either
  in-process (the reference leg) or as one OS process per PoP over real
  loopback TCP, launched and federated by :class:`FleetController`.

:mod:`repro.fleet.differential` carries the proof obligation: one
WorldSpec plus one churn workload, run both ways, byte-identical state.
:mod:`repro.fleet.crash` is the fleet-pop-crash chaos scenario.
"""

from repro.fleet.compiler import CompiledFleet, compile_world, load_fleet
from repro.fleet.controller import (
    ControlClient,
    FleetController,
    live_fleet_process_count,
    shutdown_all_fleets,
)
from repro.fleet.crash import FleetPopCrashScenario, run_fleet_pop_crash
from repro.fleet.differential import (
    FleetDifferentialHarness,
    FleetDifferentialReport,
    run_fleet_differential,
)
from repro.fleet.runtime import FleetPop, build_fleet_pop
from repro.fleet.spec import (
    ExperimentSpec,
    PopSpec,
    UpstreamSpec,
    WorldSpec,
    demo_world_spec,
)

__all__ = [
    "CompiledFleet",
    "ControlClient",
    "ExperimentSpec",
    "FleetController",
    "FleetDifferentialHarness",
    "FleetDifferentialReport",
    "FleetPop",
    "FleetPopCrashScenario",
    "PopSpec",
    "UpstreamSpec",
    "WorldSpec",
    "build_fleet_pop",
    "compile_world",
    "demo_world_spec",
    "live_fleet_process_count",
    "load_fleet",
    "run_fleet_differential",
    "run_fleet_pop_crash",
    "shutdown_all_fleets",
]
