"""Launch, monitor, federate, and stop a fleet of PoP processes.

The :class:`FleetController` is the driver-side half of DESIGN.md §6k's
runtime layer: it spawns one ``python -m repro.fleet.runpop`` OS process
per compiled artifact, speaks the newline-JSON control protocol to each
(:class:`ControlClient`), accepts every PoP's federation uplink into one
central :class:`~repro.telemetry.station.MonitoringStation` (peers named
``<pop>/<peer>``), and tears the processes down with the same reaper
discipline as :mod:`repro.parallel.backends` — a ``weakref.finalize``
per controller plus a module-level live-process registry swept at
``atexit``, so an aborted test can never strand a PoP process.

State for the stateless CLI (``peering fleet up`` in one invocation,
``status``/``down`` in later ones) lives in ``state.json`` next to the
artifacts: the spec digest plus the per-PoP pids.
"""

from __future__ import annotations

import atexit
import json
import os
import signal
import socket
import subprocess
import sys
import time
import weakref
from pathlib import Path
from typing import Dict, Optional

from repro.bgp.transport import SocketChannel, SocketListener, SocketPoller
from repro.fleet.compiler import CompiledFleet
from repro.telemetry.station import (
    MonitoringStation,
    PeerDown,
    PeerUp,
    ResilienceEvent,
    RouteMonitoring,
)

__all__ = [
    "ControlClient",
    "FleetController",
    "fleet_down",
    "fleet_status",
    "live_fleet_process_count",
    "shutdown_all_fleets",
]

_LIVE_PROCESSES: "weakref.WeakSet[subprocess.Popen]" = weakref.WeakSet()

STATE_FILE = "state.json"
DEFAULT_TIMEOUT = 15.0


def live_fleet_process_count() -> int:
    """Fleet PoP processes spawned by this process and still alive."""
    return sum(1 for proc in _LIVE_PROCESSES if proc.poll() is None)


def shutdown_all_fleets() -> int:
    """Kill every live fleet PoP process (leak-guard / atexit sweep)."""
    killed = 0
    for proc in list(_LIVE_PROCESSES):
        if proc.poll() is None:
            proc.kill()
            killed += 1
        try:
            proc.wait(timeout=5)
        except Exception:
            pass
    return killed


atexit.register(shutdown_all_fleets)


def _reap(procs: Dict[str, subprocess.Popen]) -> None:
    for proc in procs.values():
        if proc.poll() is None:
            proc.kill()
            try:
                proc.wait(timeout=5)
            except Exception:
                pass


def _runpop_env() -> dict:
    """Child environment with ``repro``'s source root on PYTHONPATH."""
    env = dict(os.environ)
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    if existing:
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + os.pathsep + existing
    else:
        env["PYTHONPATH"] = src
    return env


class ControlClient:
    """Blocking newline-JSON RPC client for one PoP's control socket."""

    def __init__(self, port: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    def connect(self, retry_for: float = DEFAULT_TIMEOUT) -> None:
        """Dial the control port, retrying until the process listens."""
        deadline = time.monotonic() + retry_for
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                sock = socket.create_connection(
                    ("127.0.0.1", self.port), timeout=self.timeout
                )
            except OSError as exc:
                last_error = exc
                time.sleep(0.05)
                continue
            sock.settimeout(self.timeout)
            self._sock = sock
            self._file = sock.makefile("rb")
            return
        raise TimeoutError(
            f"control port {self.port} never answered: {last_error}"
        )

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def call(self, cmd: str, **kwargs) -> dict:
        if self._sock is None:
            raise RuntimeError("control client is not connected")
        request = {"cmd": cmd, **kwargs}
        self._sock.sendall(json.dumps(request).encode() + b"\n")
        line = self._file.readline()
        if not line:
            raise ConnectionError(
                f"control connection to port {self.port} closed"
            )
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(
                f"control command {cmd!r} failed: "
                f"{response.get('error', 'unknown error')}"
            )
        return response

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None


class FleetController:
    """Drive one compiled fleet as real OS processes on loopback."""

    def __init__(self, fleet: CompiledFleet,
                 poller: Optional[SocketPoller] = None) -> None:
        self.fleet = fleet
        self.poller = poller if poller is not None else SocketPoller()
        self._own_poller = poller is None
        self.processes: Dict[str, subprocess.Popen] = {}
        self.clients: Dict[str, ControlClient] = {}
        self.station = MonitoringStation(
            name="fleet-central", mirror_ribs=False
        )
        self.federation_events = 0
        self._federation_listener: Optional[SocketListener] = None
        self._federation_channels: list[SocketChannel] = []
        self._finalizer = weakref.finalize(self, _reap, self.processes)

    # -- lifecycle ---------------------------------------------------------

    def start_federation(self) -> None:
        if self._federation_listener is not None:
            return
        self._federation_listener = SocketListener(
            self.poller,
            port=self.fleet.world["ports"]["federation"],
            on_accept=self._accept_federation,
        )

    def launch_pop(self, name: str) -> subprocess.Popen:
        if name not in self.fleet.artifacts:
            raise KeyError(f"unknown PoP {name!r}")
        existing = self.processes.get(name)
        if existing is not None and existing.poll() is None:
            raise RuntimeError(f"PoP {name!r} is already running")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.fleet.runpop",
             str(self.fleet.artifact_path(name))],
            env=_runpop_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.processes[name] = proc
        _LIVE_PROCESSES.add(proc)
        return proc

    def wait_ready(self, name: str,
                   timeout: float = DEFAULT_TIMEOUT) -> ControlClient:
        """Block until the PoP's control socket answers ``hello``."""
        old = self.clients.pop(name, None)
        if old is not None:
            old.close()
        client = ControlClient(
            self.fleet.world["ports"]["pops"][name]["control"],
        )
        client.connect(retry_for=timeout)
        hello = client.call("hello")
        if hello["digest"] != self.fleet.digest:
            client.close()
            raise RuntimeError(
                f"PoP {name!r} runs digest {hello['digest']}, "
                f"controller expects {self.fleet.digest}"
            )
        self.clients[name] = client
        return client

    def up(self, timeout: float = DEFAULT_TIMEOUT) -> None:
        """Boot the whole fleet and wait until every PoP answers."""
        self.start_federation()
        for name in self.fleet.pop_names():
            self.launch_pop(name)
        for name in self.fleet.pop_names():
            self.wait_ready(name, timeout=timeout)
        self.save_state()

    def status(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for name in self.fleet.pop_names():
            proc = self.processes.get(name)
            row = {
                "pid": proc.pid if proc is not None else None,
                "running": proc is not None and proc.poll() is None,
            }
            client = self.clients.get(name)
            if row["running"] and client is not None and client.connected:
                try:
                    row["summary"] = client.call("summary")["summary"]
                except Exception as exc:
                    row["summary_error"] = str(exc)
            out[name] = row
        return out

    def kill_pop(self, name: str) -> None:
        """SIGKILL one PoP process (the chaos fault injector)."""
        proc = self.processes.get(name)
        if proc is None:
            raise KeyError(f"PoP {name!r} was never launched")
        client = self.clients.pop(name, None)
        if client is not None:
            client.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=5)

    def restart_pop(self, name: str,
                    timeout: float = DEFAULT_TIMEOUT) -> ControlClient:
        """Relaunch a dead PoP from its (unchanged) artifact."""
        self.launch_pop(name)
        return self.wait_ready(name, timeout=timeout)

    def down(self) -> None:
        """Stop every PoP (polite ``stop``, then terminate, then kill)."""
        for name, client in list(self.clients.items()):
            try:
                client.call("stop")
            except Exception:
                pass
            client.close()
        self.clients.clear()
        for proc in self.processes.values():
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.terminate()
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5)
        self.close()
        state = self.fleet.directory / STATE_FILE
        if state.exists():
            state.unlink()

    def close(self) -> None:
        """Release sockets without touching the processes."""
        for channel in self._federation_channels:
            channel.close()
        self._federation_channels.clear()
        if self._federation_listener is not None:
            self._federation_listener.close()
            self._federation_listener = None
        for client in self.clients.values():
            client.close()
        if self._own_poller:
            self.poller.close()

    # -- lockstep ----------------------------------------------------------

    def step_all(self) -> int:
        """One sweep: step every PoP, pump federation; total activity."""
        total = 0
        for name in self.fleet.pop_names():
            client = self.clients.get(name)
            if client is not None and client.connected:
                total += client.call("step")["activity"]
        total += self.poller.pump(0)
        return total

    def settle(self, quiet_sweeps: int = 2, max_sweeps: int = 10_000) -> int:
        """Sweep until ``quiet_sweeps`` consecutive all-quiet rounds.

        An all-quiet sweep is confirmed with a short blocking pump:
        loopback TCP delivers asynchronously, so bytes a PoP sent during
        its ``step`` may not be readable here (or at another PoP) until
        a moment later.  Each PoP's own settle applies the same
        confirmation, and ``step`` reports autonomous work done between
        sweeps, so nothing in flight can slip past the barrier.
        """
        total = 0
        quiet = 0
        for _ in range(max_sweeps):
            activity = self.step_all()
            if activity == 0:
                activity = self.poller.pump(0.01)
            total += activity
            quiet = quiet + 1 if activity == 0 else 0
            if quiet >= quiet_sweeps:
                return total
        raise RuntimeError("fleet failed to settle (activity never quiesced)")

    # -- federation --------------------------------------------------------

    def _accept_federation(self, channel: SocketChannel) -> None:
        self._federation_channels.append(channel)
        buffer = bytearray()

        def on_data(data: bytes) -> None:
            buffer.extend(data)
            while True:
                index = buffer.find(b"\n")
                if index < 0:
                    return
                line = bytes(buffer[:index])
                del buffer[:index + 1]
                self._federation_event(line)

        channel.on_data = on_data

    def _federation_event(self, line: bytes) -> None:
        try:
            payload = json.loads(line)
        except ValueError:
            return
        kind = payload.get("kind")
        if kind == "hello":
            return
        self.federation_events += 1
        peer = f"{payload.get('pop', '?')}/{payload.get('peer', '?')}"
        at = float(payload.get("time", 0.0))
        if kind == "peer-up":
            self.station.publish(PeerUp(
                peer=peer, time=at,
                local_asn=payload.get("local_asn", 0),
                peer_asn=payload.get("peer_asn"),
                local_id=payload.get("local_id", ""),
                addpath=payload.get("addpath", False),
                hold_time=payload.get("hold_time", 0),
            ))
        elif kind == "peer-down":
            self.station.publish(PeerDown(
                peer=peer, time=at, reason=payload.get("reason", ""),
            ))
        elif kind == "route-monitoring":
            # Route contents stay in the PoPs; the central feed carries
            # the activity (an empty RouteMonitoring still counts).
            self.station.publish(RouteMonitoring(peer=peer, time=at))
        elif kind == "resilience":
            self.station.publish(ResilienceEvent(
                peer=peer, time=at,
                event=payload.get("event", ""),
                detail=payload.get("detail", ""),
            ))
        # Other kinds (stats, health, intent) are counted but not
        # re-published: the central station models the BMP core.

    # -- CLI state ---------------------------------------------------------

    def save_state(self) -> None:
        state = {
            "digest": self.fleet.digest,
            "pids": {
                name: proc.pid for name, proc in self.processes.items()
                if proc.poll() is None
            },
        }
        (self.fleet.directory / STATE_FILE).write_text(
            json.dumps(state, sort_keys=True, indent=2) + "\n"
        )


# ---------------------------------------------------------------------------
# Stateless CLI helpers (operate on a compiled directory's state.json)
# ---------------------------------------------------------------------------


def _load_state(directory: Path) -> Optional[dict]:
    path = Path(directory) / STATE_FILE
    if not path.exists():
        return None
    try:
        state = json.loads(path.read_text())
    except ValueError:
        return None
    return state if isinstance(state, dict) else None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def fleet_status(fleet: CompiledFleet) -> Dict[str, dict]:
    """Status of a fleet booted by an earlier ``peering fleet up``."""
    state = _load_state(fleet.directory) or {"pids": {}}
    out: Dict[str, dict] = {}
    for name in fleet.pop_names():
        pid = state["pids"].get(name)
        row = {"pid": pid, "running": pid is not None and _pid_alive(pid)}
        if row["running"]:
            client = ControlClient(
                fleet.world["ports"]["pops"][name]["control"]
            )
            try:
                client.connect(retry_for=2.0)
                row["summary"] = client.call("summary")["summary"]
            except Exception as exc:
                row["summary_error"] = str(exc)
            finally:
                client.close()
        out[name] = row
    return out


def fleet_down(fleet: CompiledFleet, timeout: float = 10.0) -> Dict[str, str]:
    """Stop a fleet booted by an earlier ``peering fleet up``."""
    state = _load_state(fleet.directory) or {"pids": {}}
    outcome: Dict[str, str] = {}
    for name in fleet.pop_names():
        pid = state["pids"].get(name)
        if pid is None or not _pid_alive(pid):
            outcome[name] = "not running"
            continue
        client = ControlClient(
            fleet.world["ports"]["pops"][name]["control"]
        )
        try:
            client.connect(retry_for=2.0)
            client.call("stop")
            outcome[name] = "stopped"
        except Exception:
            try:
                os.kill(pid, signal.SIGTERM)
                outcome[name] = "terminated"
            except OSError:
                outcome[name] = "gone"
        finally:
            client.close()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and _pid_alive(pid):
            time.sleep(0.05)
        if _pid_alive(pid):
            try:
                os.kill(pid, signal.SIGKILL)
                outcome[name] = "killed"
            except OSError:
                pass
    path = Path(fleet.directory) / STATE_FILE
    if path.exists():
        path.unlink()
    return outcome
