"""Compile a :class:`~repro.fleet.spec.WorldSpec` into per-PoP artifacts.

The compiler is a pure function of the spec's canonical JSON: it
pre-computes every allocation a PoP process would otherwise draw from a
process-local counter — upstream LAN addresses and MACs, backbone member
addresses, experiment tunnel endpoints, the fleet-wide gid map, and the
loopback port map — and writes one self-contained JSON artifact per PoP
plus a world manifest.  ``peering fleet run-pop <artifact>`` (or
``python -m repro.fleet.runpop <artifact>``) can then boot that PoP in
its own OS process with zero shared state, and still agree with every
sibling — and with the in-process reference — on every byte that
reaches the wire.

Artifacts are byte-identical across runs and across
``PYTHONHASHSEED`` values (all maps are emitted through sorted-key JSON,
all orderings come from the spec, never from set/dict iteration).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.fleet.spec import WorldSpec

__all__ = ["CompiledFleet", "compile_world", "load_artifact"]

# Upstream LAN hosts start at .10, mirroring PointOfPresence._lan_hosts.
UPSTREAM_HOST_BASE = 10
# Per-(pop, experiment) tunnel endpoints live in 100.125.<pop_id>.0/24.
TUNNEL_HOST_BASE = 10


class CompiledFleet:
    """Paths + parsed content of one compilation's outputs."""

    def __init__(self, directory: Path, world: dict,
                 artifacts: Dict[str, dict]) -> None:
        self.directory = directory
        self.world = world
        self.artifacts = artifacts

    @property
    def digest(self) -> str:
        return self.world["spec_digest"]

    @property
    def world_path(self) -> Path:
        return self.directory / "world.json"

    def artifact_path(self, pop_name: str) -> Path:
        return self.directory / f"pop-{pop_name}.json"

    def pop_names(self) -> List[str]:
        return [pop["name"] for pop in self.world["spec"]["pops"]]


def _upstream_endpoints(spec: WorldSpec, pop_index: int) -> dict:
    """Pinned LAN address/MAC per upstream at one PoP.

    Addresses mirror what ``provision_neighbor`` would allocate from the
    PoP's ``100.{64+pop_id}.0.0/24`` subnet (hosts from .10 in attach
    order); MACs are carved from a fleet-reserved locally-administered
    range keyed on (pop_id, upstream index) so every process computes
    the same value without a shared counter.
    """
    pop = spec.pops[pop_index]
    gid_map = {
        (pop_name, up_name): gid
        for pop_name, up_name, gid in spec.global_ids()
    }
    endpoints = {}
    for index, upstream in enumerate(pop.upstreams):
        endpoints[upstream.name] = {
            "asn": upstream.asn,
            "kind": upstream.kind,
            "address": f"100.{64 + pop_index}.0.{UPSTREAM_HOST_BASE + index}",
            "mac": f"02:fe:00:00:{pop_index:02x}:{index + 1:02x}",
            "gid": gid_map[(pop.name, upstream.name)],
        }
    return endpoints


def _experiment_attachments(spec: WorldSpec, pop_index: int) -> list:
    """Pinned tunnel endpoints for the experiments attached at one PoP."""
    pop = spec.pops[pop_index]
    attachments = []
    for index, exp in enumerate(spec.experiments_at(pop.name)):
        attachments.append({
            "name": exp.name,
            "prefix": exp.prefix,
            "tunnel_ip": f"100.125.{pop_index}.{TUNNEL_HOST_BASE + index}",
            "tunnel_mac": f"02:aa:00:00:{pop_index:02x}:{index + 1:02x}",
        })
    return attachments


def _backbone_plan(spec: WorldSpec, pop_index: int, ports: dict) -> dict:
    """This PoP's backbone attachment: pinned address + peer dial plan.

    Between two backbone members the lower ``pop_id`` listens on its
    backbone port and the higher dials it — a deterministic orientation
    so exactly one TCP connection carries each peering.
    """
    pop = spec.pops[pop_index]
    if not pop.backbone:
        return {"address": None, "peers": []}
    members = spec.backbone_members()
    address = f"100.126.0.{1 + members.index(pop.name)}"
    peers = []
    for other in members:
        if other == pop.name:
            continue
        other_index = spec.pop_id(other)
        if other_index < pop_index:
            peers.append({
                "name": other,
                "mode": "dial",
                "port": ports["pops"][other]["backbone"],
            })
        else:
            peers.append({"name": other, "mode": "listen"})
    return {"address": address, "peers": peers}


def compile_world(spec: WorldSpec, out_dir: Path) -> CompiledFleet:
    """Compile ``spec`` into ``out_dir``: a world manifest plus one
    self-contained artifact per PoP.  Idempotent; overwrites stale
    outputs from a previous compilation of a different spec."""
    spec.validate()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ports = spec.port_map()
    gids = [list(entry) for entry in spec.global_ids()]
    world = {
        "artifact": "world",
        "spec_digest": spec.digest,
        "spec": spec.to_dict(),
        "ports": ports,
        "gids": gids,
    }
    artifacts: Dict[str, dict] = {}
    for pop_index, pop in enumerate(spec.pops):
        artifacts[pop.name] = {
            "artifact": "pop",
            "spec_digest": spec.digest,
            "world_name": spec.name,
            "pop": pop.name,
            "pop_id": pop_index,
            "kind": pop.kind,
            "platform_asn": spec.platform_asn,
            "ports": ports,
            "gids": gids,
            "upstreams": _upstream_endpoints(spec, pop_index),
            "upstream_order": [up.name for up in pop.upstreams],
            "experiments": _experiment_attachments(spec, pop_index),
            "backbone": _backbone_plan(spec, pop_index, ports),
        }
    fleet = CompiledFleet(out_dir, world, artifacts)
    _write_json(fleet.world_path, world)
    for pop_name, artifact in artifacts.items():
        _write_json(fleet.artifact_path(pop_name), artifact)
    return fleet


def _write_json(path: Path, payload: dict) -> None:
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n"
    )


def load_artifact(path: Path) -> dict:
    """Read one compiled artifact (world or pop) back from disk."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "artifact" not in payload:
        raise ValueError(f"{path}: not a fleet artifact")
    return payload


def load_fleet(directory: Path) -> CompiledFleet:
    """Re-hydrate a :class:`CompiledFleet` from a compiled directory."""
    directory = Path(directory)
    world = load_artifact(directory / "world.json")
    artifacts = {}
    for pop in world["spec"]["pops"]:
        artifacts[pop["name"]] = load_artifact(
            directory / f"pop-{pop['name']}.json"
        )
    return CompiledFleet(directory, world, artifacts)
