"""OpenVPN-style tunnels between experiments and PoPs (§4.5, §4.6).

A tunnel is a point-to-point link between an interface created on the
experiment's stack and a port on the PoP's experiment-facing switch. It
adds latency (the paper's §7.4 notes tunnels impact latency-sensitive
experiments) and carries both the BGP session and the data plane.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.link import Link, Switch
from repro.netsim.stack import NetworkStack
from repro.sim.scheduler import Scheduler

TUNNEL_SUBNET = IPv4Prefix.parse("100.125.0.0/16")


@dataclass
class Tunnel:
    """One established experiment↔PoP tunnel."""

    name: str
    experiment: str
    pop: str
    client_stack: NetworkStack
    client_iface: str
    client_ip: IPv4Address
    client_mac: MacAddress
    server_ip: IPv4Address
    server_mac: MacAddress
    link: Link
    up: bool = True

    def status(self) -> dict:
        return {
            "name": self.name,
            "experiment": self.experiment,
            "pop": self.pop,
            "up": self.up,
            "client_ip": str(self.client_ip),
            "server_ip": str(self.server_ip),
            "latency": self.link.latency,
        }

    def set_up(self, up: bool) -> None:
        self.up = up
        iface = self.client_stack.interfaces.get(self.client_iface)
        if iface is not None:
            iface.up = up


class TunnelManager:
    """Creates and tracks tunnels at one PoP."""

    _mac_counter = itertools.count(0x02AA00000000)

    def __init__(
        self,
        scheduler: Scheduler,
        pop_name: str,
        pop_id: int,
        exp_switch: Switch,
        server_mac: MacAddress,
        latency: float = 0.010,
    ) -> None:
        self.scheduler = scheduler
        self.pop_name = pop_name
        self.pop_id = pop_id
        self.exp_switch = exp_switch
        self.server_mac = server_mac
        self.latency = latency
        self.tunnels: dict[str, Tunnel] = {}
        self._host_counter = itertools.count(2)
        # Per-PoP /24 slice of the tunnel supernet.
        self.subnet = IPv4Prefix.from_address(
            TUNNEL_SUBNET.address_at(pop_id * 256), 24
        )
        self.server_ip = self.subnet.address_at(1)

    def open(
        self,
        experiment: str,
        client_stack: NetworkStack,
        latency: Optional[float] = None,
    ) -> Tunnel:
        """Establish a tunnel for an experiment (its ``tapN`` device)."""
        name = f"tap-{self.pop_name}-{experiment}"
        if name in self.tunnels:
            raise ValueError(f"tunnel {name!r} already open")
        client_ip = self.subnet.address_at(next(self._host_counter))
        client_mac = MacAddress(next(self._mac_counter))
        iface_name = f"tap{len(client_stack.interfaces)}"
        port = self.exp_switch.add_port(name)
        from repro.netsim.link import Port

        client_port = Port(f"{iface_name}@{client_stack.name}")
        link = Link(
            self.scheduler, client_port, port,
            latency=latency if latency is not None else self.latency,
        )
        client_stack.add_interface(iface_name, client_mac, client_port)
        client_stack.add_address(iface_name, client_ip, 24)
        # Point-to-point: both ends know each other without ARP.
        client_stack.add_static_arp(self.server_ip, self.server_mac,
                                    iface_name)
        tunnel = Tunnel(
            name=name,
            experiment=experiment,
            pop=self.pop_name,
            client_stack=client_stack,
            client_iface=iface_name,
            client_ip=client_ip,
            client_mac=client_mac,
            server_ip=self.server_ip,
            server_mac=self.server_mac,
            link=link,
        )
        self.tunnels[name] = tunnel
        return tunnel

    def close(self, name: str) -> None:
        tunnel = self.tunnels.pop(name, None)
        if tunnel is not None:
            tunnel.set_up(False)

    def status(self) -> list[dict]:
        return [tunnel.status() for tunnel in self.tunnels.values()]
