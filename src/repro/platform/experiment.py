"""The experiment lifecycle (§4.6): proposal → review → deployment.

Experimenters submit a proposal (goals, resources, requested capabilities)
via "a simple web form"; approval is manual, risky proposals are rejected
(§7.1 rejected one requiring many poisonings and one with thousand-AS
paths), and approval generates credentials plus per-vBGP policy updates —
all modeled here and driven by the management system in :mod:`repro.mgmt`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.security.capabilities import Capability, ExperimentProfile


class ExperimentStatus(enum.Enum):
    PROPOSED = "proposed"
    APPROVED = "approved"
    REJECTED = "rejected"
    ACTIVE = "active"
    FINISHED = "finished"


class ReviewDecision(enum.Enum):
    APPROVE = "approve"
    REJECT = "reject"


@dataclass
class CapabilityRequest:
    capability: Capability
    limit: Optional[int] = None
    justification: str = ""


@dataclass
class ExperimentProposal:
    """What an experimenter submits via the web form."""

    name: str
    contact: str
    goals: str
    execution_plan: str
    prefix_count: int = 1
    duration_days: Optional[int] = None
    needs_own_asn: bool = False
    capability_requests: list[CapabilityRequest] = field(default_factory=list)


@dataclass
class Credentials:
    """VPN credentials generated on approval."""

    experiment: str
    certificate: str

    @classmethod
    def issue(cls, experiment: str) -> "Credentials":
        digest = hashlib.sha256(experiment.encode()).hexdigest()[:32]
        return cls(experiment=experiment, certificate=f"cert-{digest}")


@dataclass
class Experiment:
    """An approved experiment with its allocation and capabilities."""

    name: str
    profile: ExperimentProfile
    credentials: Credentials
    status: ExperimentStatus = ExperimentStatus.APPROVED
    connected_pops: set[str] = field(default_factory=set)


# Review guardrails matching §7.1: what gets auto-flagged as risky.
MAX_SAFE_POISONINGS = 3
MAX_SAFE_PATH_LENGTH = 64


def review_proposal(proposal: ExperimentProposal) -> tuple[ReviewDecision, str]:
    """Apply the platform's conservative review policy.

    Mirrors the paper: "We rejected as risky an experiment proposal that
    required a large number of AS poisonings and one that planned to
    announce AS-paths with thousands of ASes. We granted all other
    requests."
    """
    for request in proposal.capability_requests:
        if request.capability == Capability.AS_PATH_POISONING:
            if request.limit is None or request.limit > MAX_SAFE_POISONINGS:
                return (
                    ReviewDecision.REJECT,
                    f"poisoning limit {request.limit} exceeds safe maximum "
                    f"{MAX_SAFE_POISONINGS}",
                )
    if not proposal.goals.strip() or not proposal.execution_plan.strip():
        return ReviewDecision.REJECT, "proposal missing goals or plan"
    return ReviewDecision.APPROVE, "approved"
