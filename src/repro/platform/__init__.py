"""The PEERING platform (§4): PoPs, resources, experiments, federation.

Builds a complete, runnable platform on top of vBGP: points of presence at
simulated IXPs and universities, numbered resources (ASNs and prefixes),
the experiment proposal/approval workflow, OpenVPN-style tunnels, the
AL2S-provisioned backbone, and CloudLab federation.
"""

from repro.platform.resources import (
    PLATFORM_ASN,
    PLATFORM_ASNS,
    ResourcePool,
    default_prefix_allocations,
)
from repro.platform.tunnels import Tunnel, TunnelManager
from repro.platform.backbone import Backbone, BackboneLinkSpec
from repro.platform.experiment import (
    Experiment,
    ExperimentProposal,
    ExperimentStatus,
    ReviewDecision,
)
from repro.platform.pop import PopConfig, PointOfPresence
from repro.platform.peering import PeeringPlatform, default_pop_configs
from repro.platform.federation import CloudLabSite

__all__ = [
    "Backbone",
    "BackboneLinkSpec",
    "CloudLabSite",
    "Experiment",
    "ExperimentProposal",
    "ExperimentStatus",
    "PLATFORM_ASN",
    "PLATFORM_ASNS",
    "PeeringPlatform",
    "PointOfPresence",
    "PopConfig",
    "ResourcePool",
    "ReviewDecision",
    "Tunnel",
    "TunnelManager",
    "default_pop_configs",
    "default_prefix_allocations",
]
