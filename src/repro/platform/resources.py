"""Numbered resources (§4.2): ASNs and prefixes, with allocation.

PEERING holds 8 ASNs (three of them 4-byte), 40 IPv4 /24s, and one IPv6
/32. Experiments are allocated one or more prefixes (and optionally an
ASN) for a lease duration; IPv4 scarcity is the practical concurrency
limit the paper discusses (§4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.addr import IPv4Prefix, IPv6Prefix, Prefix

PLATFORM_ASN = 47065
# Eight ASNs, three of them 4-byte — mirroring the paper's numbers.
PLATFORM_ASNS = (
    47065, 61574, 61575, 61576, 33207,
    263842, 263843, 263844,
)
IPV6_ALLOCATION = IPv6Prefix.parse("2804:269c::/32")


def default_prefix_allocations() -> list[IPv4Prefix]:
    """The platform's 40 IPv4 /24s."""
    prefixes = list(IPv4Prefix.parse("184.164.224.0/19").subnets(24))  # 32
    prefixes += list(IPv4Prefix.parse("204.9.168.0/21").subnets(24))  # 8
    return prefixes


@dataclass
class Lease:
    """One allocation of resources to an experiment."""

    experiment: str
    prefixes: tuple[IPv4Prefix, ...]
    asn: int
    granted_at: float
    duration: Optional[float] = None  # None: until released

    def expired(self, now: float) -> bool:
        return self.duration is not None and now > self.granted_at + self.duration


class ResourcePool:
    """Allocator for the platform's ASNs and IPv4 prefixes."""

    def __init__(
        self,
        prefixes: Optional[list[IPv4Prefix]] = None,
        asns: tuple[int, ...] = PLATFORM_ASNS,
    ) -> None:
        self._free_prefixes = (
            list(prefixes) if prefixes is not None
            else default_prefix_allocations()
        )
        self._asns = asns
        self._leases: dict[str, Lease] = {}
        self.ipv6 = IPV6_ALLOCATION

    @property
    def free_prefix_count(self) -> int:
        return len(self._free_prefixes)

    @property
    def active_leases(self) -> int:
        return len(self._leases)

    def allocate(
        self,
        experiment: str,
        prefix_count: int = 1,
        now: float = 0.0,
        duration: Optional[float] = None,
        asn: Optional[int] = None,
    ) -> Lease:
        """Lease ``prefix_count`` /24s (and an ASN) to an experiment."""
        if experiment in self._leases:
            raise ValueError(f"experiment {experiment!r} already has a lease")
        if prefix_count > len(self._free_prefixes):
            raise RuntimeError(
                f"insufficient IPv4 space: {prefix_count} requested, "
                f"{len(self._free_prefixes)} free"
            )
        granted = tuple(self._free_prefixes[:prefix_count])
        del self._free_prefixes[:prefix_count]
        lease = Lease(
            experiment=experiment,
            prefixes=granted,
            asn=asn if asn is not None else PLATFORM_ASN,
            granted_at=now,
            duration=duration,
        )
        self._leases[experiment] = lease
        return lease

    def release(self, experiment: str) -> None:
        lease = self._leases.pop(experiment, None)
        if lease is not None:
            self._free_prefixes.extend(lease.prefixes)

    def lease_for(self, experiment: str) -> Optional[Lease]:
        return self._leases.get(experiment)

    def reap_expired(self, now: float) -> list[str]:
        """Release expired leases; returns the affected experiments."""
        expired = [
            name for name, lease in self._leases.items()
            if lease.expired(now)
        ]
        for name in expired:
            self.release(name)
        return expired

    def owner_of(self, prefix: Prefix) -> Optional[str]:
        for name, lease in self._leases.items():
            if any(p.contains_prefix(prefix) for p in lease.prefixes):
                return name
        return None
