"""The provisioned backbone (§4.3.1): AL2S/RNP layer-2 circuits.

PEERING's backbone is VLANs provisioned across educational networks
(Internet2 AL2S in the US, RNP in Brazil), bridging PoPs into one layer-2
domain with per-circuit capacity. We model it as a VLAN-aware switch whose
member links carry the provisioned latency/bandwidth, so iperf-style
measurements between PoPs produce §6-shaped numbers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.link import Link, Port, Switch
from repro.netsim.stack import NetworkStack
from repro.sim.scheduler import Scheduler

BACKBONE_SUBNET = IPv4Prefix.parse("100.126.0.0/24")


@dataclass(frozen=True)
class BackboneLinkSpec:
    """Provisioned circuit characteristics for one PoP's attachment."""

    latency: float = 0.020  # one-way to the backbone fabric
    bandwidth_bps: float = 1_000_000_000.0  # provisioned capacity
    loss: float = 0.0
    queue_limit: int = 4096  # deep buffers on provisioned circuits


class Backbone:
    """The layer-2 backbone fabric connecting vBGP routers."""

    _mac_counter = itertools.count(0x02BB00000000)

    def __init__(self, scheduler: Scheduler, name: str = "al2s") -> None:
        self.scheduler = scheduler
        self.name = name
        self.switch = Switch(scheduler, name=name)
        self.members: dict[str, IPv4Address] = {}
        self._host_counter = itertools.count(1)

    def attach(
        self,
        pop_name: str,
        stack: NetworkStack,
        spec: Optional[BackboneLinkSpec] = None,
        iface_name: str = "bb0",
        address: Optional[IPv4Address] = None,
    ) -> IPv4Address:
        """Provision a circuit from a PoP server into the fabric.

        Creates the ``bb0`` interface on the PoP stack, assigns it an
        address from the backbone subnet, and returns that address (used
        as the node's backbone BGP next hop for experiment prefixes).

        ``address`` pins the assignment instead of drawing from this
        fabric instance's counter: a fleet PoP process (DESIGN.md §6k)
        holds its *own* ``Backbone`` whose counter would hand every PoP
        ``100.126.0.1``, so the compiler pre-computes each member's
        address from the world spec and pins it here — the backbone next
        hop of experiment routes is on the wire, where byte-identity
        with the in-process reference is checked.
        """
        spec = spec or BackboneLinkSpec()
        if address is None:
            address = BACKBONE_SUBNET.address_at(next(self._host_counter))
        mac = MacAddress(next(self._mac_counter))
        fabric_port = self.switch.add_port(f"{self.name}-{pop_name}")
        pop_port = Port(f"{iface_name}@{pop_name}")
        Link(
            self.scheduler, pop_port, fabric_port,
            latency=spec.latency,
            bandwidth_bps=spec.bandwidth_bps,
            loss=spec.loss,
            queue_limit=spec.queue_limit,
        )
        stack.add_interface(iface_name, mac, pop_port)
        stack.add_address(iface_name, address, 24)
        self.members[pop_name] = address
        return address

    def address_of(self, pop_name: str) -> Optional[IPv4Address]:
        return self.members.get(pop_name)
