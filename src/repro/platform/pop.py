"""A PEERING Point of Presence (§4.2).

One PoP is a commodity server running vBGP, attached to either an IXP LAN
(with tens-to-hundreds of members and route servers) or a university
network (with a single transit interconnection). The PoP owns the
experiment-facing switch, the tunnel manager, and its security enforcers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.bgp.supervisor import SupervisorConfig
from repro.bgp.transport import Channel, connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.link import Link, Port, Switch
from repro.netsim.stack import NetworkStack
from repro.security.control import ControlPlaneEnforcer
from repro.security.data import DataPlaneEnforcer
from repro.security.state import EnforcerState
from repro.sim.scheduler import Scheduler
from repro.platform.tunnels import TunnelManager
from repro.vbgp.allocator import GlobalNeighborRegistry
from repro.vbgp.node import VbgpNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub


@dataclass
class PopConfig:
    """Static description of one PoP."""

    name: str
    pop_id: int
    kind: str = "university"  # "ixp" | "university"
    region: str = "us"
    backbone: bool = False
    lan_latency: float = 0.0005
    tunnel_latency: float = 0.010
    bandwidth_limit_bps: Optional[float] = None  # §4.7: two sites have caps
    # Sharded fan-out overrides (None ⇒ follow the global perf.FLAGS
    # knobs; see repro.shard and DESIGN.md §6f).
    shards: Optional[int] = None
    shard_partition: Optional[str] = None
    # Overload-resilience policy (None ⇒ unbounded ingress, the
    # pre-§6i behavior).  An ``repro.overload.OverloadPolicy`` here
    # builds the governor + watchdog at construction time.
    overload: Optional[object] = None


@dataclass
class NeighborPort:
    """Everything an external AS needs to plug into this PoP."""

    pop: str
    name: str
    asn: int
    kind: str
    address: IPv4Address
    mac: MacAddress
    lan_port: Port
    channel: Channel  # the neighbor's end of the BGP transport
    subnet_length: int
    global_id: int
    # Resilient provisioning: when the PoP's supervisor re-dials, a fresh
    # channel pair replaces ``channel`` and ``on_redial`` (set by the
    # neighbor's operator) is invoked with the new neighbor-side end.
    resilient: bool = False
    on_redial: Optional[Callable[[Channel], None]] = field(
        default=None, repr=False
    )


class PointOfPresence:
    """A built, running PoP."""

    _mac_counter = itertools.count(0x02CC00000000)

    def __init__(
        self,
        scheduler: Scheduler,
        config: PopConfig,
        platform_asn: int,
        platform_asns: frozenset[int],
        registry: GlobalNeighborRegistry,
        enforcer_state: EnforcerState,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.platform_asn = platform_asn
        # LAN addressing: one /24 per PoP.
        self.lan_subnet = IPv4Prefix.parse(f"100.{64 + config.pop_id}.0.0/24")
        self._lan_hosts = itertools.count(10)
        self.lan_switch = Switch(
            scheduler, name=f"{config.name}-lan", latency=config.lan_latency
        )
        self.exp_switch = Switch(scheduler, name=f"{config.name}-exp")
        self.stack = NetworkStack(scheduler, name=f"pop-{config.name}")
        # Server interfaces: upstream (IXP/LAN) and experiment-facing.
        self.server_lan_mac = MacAddress(next(self._mac_counter))
        lan_port = Port(f"ixp0@{config.name}")
        lan_switch_port = self.lan_switch.add_port(f"server-{config.name}")
        Link(scheduler, lan_port, lan_switch_port, latency=config.lan_latency)
        self.stack.add_interface("ixp0", self.server_lan_mac, lan_port)
        self.server_address = self.lan_subnet.address_at(1)
        self.stack.add_address("ixp0", self.server_address, 24)

        self.server_exp_mac = MacAddress(next(self._mac_counter))
        exp_port = Port(f"exp0@{config.name}")
        exp_switch_port = self.exp_switch.add_port(f"server-{config.name}")
        Link(scheduler, exp_port, exp_switch_port)
        self.stack.add_interface("exp0", self.server_exp_mac, exp_port)

        self.tunnels = TunnelManager(
            scheduler,
            pop_name=config.name,
            pop_id=config.pop_id,
            exp_switch=self.exp_switch,
            server_mac=self.server_exp_mac,
            latency=config.tunnel_latency,
        )
        self.stack.add_address("exp0", self.tunnels.server_ip, 24)

        self.telemetry = telemetry
        self.control_enforcer = ControlPlaneEnforcer(
            scheduler, platform_asns=platform_asns, state=enforcer_state,
            telemetry=telemetry,
        )
        self.data_enforcer = DataPlaneEnforcer(
            scheduler, pop=config.name, telemetry=telemetry
        )
        self.node = VbgpNode(
            scheduler,
            name=config.name,
            pop_id=config.pop_id,
            platform_asn=platform_asn,
            router_id=self.server_address,
            stack=self.stack,
            registry=registry,
            upstream_iface="ixp0",
            exp_iface="exp0",
            control_enforcer=self.control_enforcer,
            data_enforcer=self.data_enforcer,
            telemetry=telemetry,
            shards=config.shards,
            shard_partition=config.shard_partition,
        )
        self.neighbor_ports: dict[str, NeighborPort] = {}
        # Overload resilience (repro.overload, §6i): opt-in via
        # PopConfig.overload or a later enable_overload() call.
        self.overload = None
        self.watchdog = None
        if config.overload is not None:
            self.enable_overload(config.overload)

    # ------------------------------------------------------------------

    def enable_overload(self, policy=None):
        """Install the §6i overload layer on this PoP (idempotent).

        Builds an :class:`~repro.overload.OverloadGovernor` scoped to
        this PoP, wires it through the vBGP node (bounded ingress
        queues, breaker-quarantine coupling, shard backpressure), and
        starts the health watchdog.  Returns the governor.
        """
        if self.overload is not None:
            return self.overload
        from repro.overload import HealthWatchdog, OverloadGovernor

        governor = OverloadGovernor(
            self.scheduler,
            scope=self.config.name,
            policy=policy,
            telemetry=self.telemetry,
        )
        self.node.enable_overload(governor)
        self.overload = governor
        self.watchdog = HealthWatchdog(
            self.scheduler,
            pop_name=self.config.name,
            governor=governor,
            telemetry=self.telemetry,
            config=governor.policy.watchdog,
        )
        self.watchdog.start()
        return governor

    def provision_neighbor(
        self,
        name: str,
        asn: int,
        kind: str = "peer",
        resilient: bool = False,
        graceful_restart: bool = False,
        restart_time: int = 120,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> NeighborPort:
        """Provision LAN presence + a BGP session slot for a neighbor AS.

        Returns the neighbor-side plug (address, MAC, switch port, BGP
        channel end). The vBGP side is attached immediately.

        With ``resilient=True`` the vBGP side supervises the session:
        after a non-administrative loss it re-dials through a fresh
        channel pair; the returned port's ``channel`` is updated and its
        ``on_redial`` hook (if the neighbor's operator set one) receives
        the new neighbor-side end so the remote speaker can re-attach.
        With ``graceful_restart=True`` the session offers RFC 4724 and
        resets retain routes instead of storming withdrawals.
        """
        if name in self.neighbor_ports:
            raise ValueError(f"neighbor {name!r} already at {self.config.name}")
        address = self.lan_subnet.address_at(next(self._lan_hosts))
        mac = MacAddress(next(self._mac_counter))
        lan_port = self.lan_switch.add_port(f"{name}@{self.config.name}")
        ours, theirs = connect_pair(
            self.scheduler, rtt=4 * self.config.lan_latency
        )
        port = NeighborPort(
            pop=self.config.name,
            name=name,
            asn=asn,
            kind=kind,
            address=address,
            mac=mac,
            lan_port=lan_port,
            channel=theirs,
            subnet_length=24,
            global_id=0,
            resilient=resilient,
        )

        channel_factory = None
        if resilient:
            def channel_factory() -> Channel:
                new_ours, new_theirs = connect_pair(
                    self.scheduler, rtt=4 * self.config.lan_latency
                )
                port.channel = new_theirs
                if port.on_redial is not None:
                    port.on_redial(new_theirs)
                return new_ours

        self.node.attach_upstream(
            name=name,
            peer_asn=asn,
            peer_address=address,
            peer_mac=mac,
            channel=ours,
            kind=kind,
            graceful_restart=graceful_restart,
            restart_time=restart_time,
            channel_factory=channel_factory,
            supervisor_config=supervisor_config,
        )
        port.global_id = self.node.upstreams[name].virtual.global_id
        self.neighbor_ports[name] = port
        return port

    def provision_lan_host(
        self, name: str
    ) -> tuple[IPv4Address, MacAddress, Port]:
        """LAN presence without a bilateral vBGP session.

        Used for IXP members that are reachable only via the route server
        (§4.2: 129 bilateral peers, the rest via route servers) — they
        still exchange *traffic* with the platform over the shared fabric.
        """
        address = self.lan_subnet.address_at(next(self._lan_hosts))
        mac = MacAddress(next(self._mac_counter))
        lan_port = self.lan_switch.add_port(f"{name}@{self.config.name}")
        return address, mac, lan_port

    def enable_backbone(self, backbone, spec=None,
                        address: Optional[IPv4Address] = None) -> IPv4Address:
        """Attach this PoP to the backbone fabric (creates ``bb0``).

        ``address`` pins the backbone address (fleet compiler, §6k)
        instead of drawing from the fabric's allocation counter.
        """
        address = backbone.attach(
            self.config.name, self.stack, spec, address=address
        )
        self.node.enable_backbone("bb0", address)
        return address

    def shard_status(self) -> list[dict]:
        """Per-shard fan-out status rows (empty when unsharded)."""
        return self.node.shard_status()

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def neighbor_count(self) -> int:
        return len(self.node.upstreams)
