"""The PEERING platform orchestrator (§4).

Builds the full deployment — PoPs, backbone mesh, resources, enforcement —
and runs the experiment workflow end-to-end: proposal review, allocation,
credential issuance, tunnel establishment, and vBGP attachment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bgp.transport import Channel, connect_pair
from repro.netsim.stack import NetworkStack
from repro.platform.backbone import Backbone, BackboneLinkSpec
from repro.platform.experiment import (
    Credentials,
    Experiment,
    ExperimentProposal,
    ExperimentStatus,
    ReviewDecision,
    review_proposal,
)
from repro.platform.federation import CloudLabSite
from repro.platform.pop import PointOfPresence, PopConfig
from repro.platform.resources import (
    PLATFORM_ASN,
    PLATFORM_ASNS,
    ResourcePool,
)
from repro.platform.tunnels import Tunnel
from repro.security.capabilities import ExperimentProfile
from repro.security.state import EnforcerState
from repro.sim.scheduler import Scheduler
from repro.telemetry import TelemetryHub
from repro.vbgp.allocator import GlobalNeighborRegistry


def default_pop_configs() -> list[PopConfig]:
    """The thirteen-PoP deployment of §4.2 (four IXPs, nine universities).

    Backbone membership mirrors §4.3.1: US PoPs on AL2S plus the Brazilian
    site on RNP's equivalent; European IXP integration is future work in
    the paper and stays off here too.
    """
    descriptors = [
        ("amsterdam", "ixp", "eu", False),
        ("seattle", "ixp", "us", True),
        ("phoenix", "ixp", "us", True),
        ("saopaulo", "ixp", "br", True),
        ("gatech", "university", "us", True),
        ("clemson", "university", "us", True),
        ("columbia", "university", "us", True),
        ("ufmg", "university", "br", True),
        ("usc", "university", "us", True),
        ("uw", "university", "us", True),
        ("wisconsin", "university", "us", True),
        ("utah", "university", "us", True),
        ("cornell", "university", "us", False),
    ]
    return [
        PopConfig(name=name, pop_id=index, kind=kind, region=region,
                  backbone=backbone)
        for index, (name, kind, region, backbone) in enumerate(descriptors)
    ]


def _backbone_spec(config: PopConfig) -> BackboneLinkSpec:
    """Deterministic per-PoP circuit characteristics.

    Varies latency and provisioned capacity across sites so that measured
    PoP-pair TCP throughput spreads the way §6 reports (≈60–750 Mbps,
    average ≈400 Mbps).
    """
    # Spread one-way latencies 2–14 ms across US sites (AL2S segment
    # distances) and 0.4–1.0 Gbps provisioned capacities; the Brazilian
    # RNP bridge adds intercontinental latency.
    latency = 0.002 + (config.pop_id * 7 % 13) * 0.001
    if config.region == "br":
        latency += 0.055
    bandwidth = 1_000_000_000.0 - (config.pop_id * 5 % 9) * 75_000_000.0
    return BackboneLinkSpec(latency=latency, bandwidth_bps=bandwidth)


@dataclass
class ExperimentConnection:
    """What an experiment gets for one PoP attachment."""

    experiment: str
    pop: str
    tunnel: Tunnel
    channel: Channel  # client end of the BGP transport


class PeeringPlatform:
    """A built PEERING deployment."""

    def __init__(
        self,
        scheduler: Scheduler,
        pop_configs: Optional[list[PopConfig]] = None,
        platform_asn: int = PLATFORM_ASN,
        telemetry: Optional[TelemetryHub] = None,
    ) -> None:
        self.scheduler = scheduler
        self.platform_asn = platform_asn
        self.telemetry = telemetry
        self.platform_asns = frozenset(PLATFORM_ASNS)
        self.resources = ResourcePool()
        self.registry = GlobalNeighborRegistry()
        self.enforcer_state = EnforcerState()
        self.backbone = Backbone(scheduler)
        self.pops: dict[str, PointOfPresence] = {}
        self.experiments: dict[str, Experiment] = {}
        self.cloudlab_sites: dict[str, CloudLabSite] = {}
        self.rejected_proposals: list[tuple[ExperimentProposal, str]] = []
        for config in pop_configs or default_pop_configs():
            self.add_pop(config)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_pop(self, config: PopConfig) -> PointOfPresence:
        if config.name in self.pops:
            raise ValueError(f"duplicate PoP {config.name!r}")
        pop = PointOfPresence(
            self.scheduler,
            config,
            platform_asn=self.platform_asn,
            platform_asns=self.platform_asns,
            registry=self.registry,
            enforcer_state=self.enforcer_state,
            telemetry=self.telemetry,
        )
        self.pops[config.name] = pop
        if config.backbone:
            pop.enable_backbone(self.backbone, _backbone_spec(config))
            self._join_backbone_mesh(pop)
        if config.kind == "university" and config.region in ("us",):
            # CloudLab federation sites colocate with US university PoPs.
            self.cloudlab_sites[config.name] = CloudLabSite(
                self.scheduler, name=f"cloudlab-{config.name}", pop=pop
            )
        return pop

    def _join_backbone_mesh(self, pop: PointOfPresence) -> None:
        """Full iBGP-style mesh among backbone members (§4.3.1)."""
        for other in self.pops.values():
            if other is pop or not other.config.backbone:
                continue
            rtt = 2 * (
                _backbone_spec(pop.config).latency
                + _backbone_spec(other.config).latency
            )
            a, b = connect_pair(self.scheduler, rtt=rtt)
            pop.node.attach_backbone_peer(other.name, a)
            other.node.attach_backbone_peer(pop.name, b)

    # ------------------------------------------------------------------
    # Experiment workflow (§4.6)
    # ------------------------------------------------------------------

    def submit_proposal(
        self, proposal: ExperimentProposal
    ) -> tuple[ReviewDecision, str]:
        """Review a proposal; approval allocates resources and pushes the
        experiment's policy to every vBGP instance."""
        decision, reason = review_proposal(proposal)
        if decision == ReviewDecision.REJECT:
            self.rejected_proposals.append((proposal, reason))
            return decision, reason
        self._deploy_experiment(proposal)
        return decision, reason

    def _deploy_experiment(self, proposal: ExperimentProposal) -> Experiment:
        duration = (
            proposal.duration_days * 86400.0
            if proposal.duration_days is not None else None
        )
        # Assign a dedicated ASN when requested: pick the first platform ASN
        # not already leased; default experiments share the platform ASN.
        chosen_asn = None
        if proposal.needs_own_asn:
            leased = {
                lease.asn
                for lease in (
                    self.resources.lease_for(name)
                    for name in self.experiments
                )
                if lease is not None
            }
            for candidate in self.platform_asns:
                if candidate != self.platform_asn and candidate not in leased:
                    chosen_asn = candidate
                    break
        lease = self.resources.allocate(
            proposal.name,
            prefix_count=proposal.prefix_count,
            now=self.scheduler.now,
            duration=duration,
            asn=chosen_asn,
        )
        profile = ExperimentProfile(
            name=proposal.name,
            asns=frozenset({lease.asn, self.platform_asn}),
            prefixes=lease.prefixes,
        )
        for request in proposal.capability_requests:
            profile.grant(request.capability, request.limit)
        experiment = Experiment(
            name=proposal.name,
            profile=profile,
            credentials=Credentials.issue(proposal.name),
        )
        self.experiments[proposal.name] = experiment
        # Push policy to every vBGP instance without touching sessions (§5).
        for pop in self.pops.values():
            pop.control_enforcer.register_experiment(profile)
        return experiment

    def finish_experiment(self, name: str) -> None:
        experiment = self.experiments.pop(name, None)
        if experiment is None:
            return
        experiment.status = ExperimentStatus.FINISHED
        self.resources.release(name)
        for pop in self.pops.values():
            pop.control_enforcer.deregister_experiment(name)

    # ------------------------------------------------------------------
    # Experiment attachment
    # ------------------------------------------------------------------

    def connect_experiment(
        self,
        name: str,
        pop_name: str,
        client_stack: NetworkStack,
        tunnel_latency: Optional[float] = None,
    ) -> ExperimentConnection:
        """Open the VPN tunnel and the ADD-PATH BGP session at one PoP."""
        experiment = self.experiments.get(name)
        if experiment is None:
            raise KeyError(f"no approved experiment {name!r}")
        pop = self.pops[pop_name]
        tunnel = pop.tunnels.open(name, client_stack, latency=tunnel_latency)
        pop.data_enforcer.register_experiment(
            tunnel.client_mac,
            tuple(p for p in experiment.profile.prefixes),
        )
        ours, theirs = connect_pair(
            self.scheduler, rtt=2 * tunnel.link.latency
        )
        lease = self.resources.lease_for(name)
        pop.node.attach_experiment(
            name=name,
            asn=lease.asn if lease is not None else self.platform_asn,
            prefixes=experiment.profile.prefixes,
            tunnel_ip=tunnel.client_ip,
            tunnel_mac=tunnel.client_mac,
            channel=ours,
        )
        experiment.connected_pops.add(pop_name)
        experiment.status = ExperimentStatus.ACTIVE
        return ExperimentConnection(
            experiment=name, pop=pop_name, tunnel=tunnel, channel=theirs
        )

    def reconnect_bgp(self, name: str, pop_name: str) -> Channel:
        """A fresh BGP transport over an existing tunnel.

        Mirrors restarting BIRD on the experiment side: the tunnel stays
        up, a new TCP connection reaches the vBGP router, and the session
        re-attaches (the prior attachment, if any, is torn down first).
        """
        experiment = self.experiments.get(name)
        if experiment is None:
            raise KeyError(f"no approved experiment {name!r}")
        pop = self.pops[pop_name]
        tunnel = pop.tunnels.tunnels.get(f"tap-{pop_name}-{name}")
        if tunnel is None or not tunnel.up:
            raise RuntimeError(f"tunnel to {pop_name} is not up")
        stale = pop.node.experiments.get(name)
        if stale is not None and stale.session is not None:
            stale.session.shutdown()
        ours, theirs = connect_pair(self.scheduler, rtt=2 * tunnel.link.latency)
        lease = self.resources.lease_for(name)
        pop.node.attach_experiment(
            name=name,
            asn=lease.asn if lease is not None else self.platform_asn,
            prefixes=experiment.profile.prefixes,
            tunnel_ip=tunnel.client_ip,
            tunnel_mac=tunnel.client_mac,
            channel=ours,
        )
        return theirs

    def disconnect_experiment(self, name: str, pop_name: str) -> None:
        pop = self.pops[pop_name]
        attachment = pop.node.experiments.get(name)
        if attachment is not None and attachment.session is not None:
            attachment.session.shutdown()
        pop.tunnels.close(f"tap-{pop_name}-{name}")
        experiment = self.experiments.get(name)
        if experiment is not None:
            experiment.connected_pops.discard(pop_name)
