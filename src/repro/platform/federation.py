"""Federation with CloudLab (§4.3.2).

PEERING colocates PoPs at CloudLab sites: experiments running on CloudLab
bare-metal nodes reach the platform over the local network (no VPN
latency) and can route across the backbone to any PoP. We model a site as
a small pool of compute nodes whose stacks attach to the colocated PoP's
experiment switch directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.netsim.stack import NetworkStack
from repro.platform.pop import PointOfPresence
from repro.sim.scheduler import Scheduler


@dataclass
class ComputeNode:
    """One allocated bare-metal node."""

    name: str
    stack: NetworkStack
    site: str


class CloudLabSite:
    """A CloudLab cluster colocated with a PEERING PoP."""

    _mac_counter = itertools.count(0x02DD00000000)

    def __init__(self, scheduler: Scheduler, name: str,
                 pop: PointOfPresence, capacity: int = 4) -> None:
        self.scheduler = scheduler
        self.name = name
        self.pop = pop
        self.capacity = capacity
        self.nodes: dict[str, ComputeNode] = {}

    def allocate_node(self, experiment: str) -> ComputeNode:
        """Provision a bare-metal node wired to the colocated PoP.

        The node's stack is created but not addressed; the experiment
        toolkit opens a (near-zero-latency) tunnel over the local wire.
        """
        if len(self.nodes) >= self.capacity:
            raise RuntimeError(f"CloudLab site {self.name} is full")
        node_name = f"{self.name}-node{len(self.nodes)}"
        stack = NetworkStack(self.scheduler, name=node_name)
        node = ComputeNode(name=node_name, stack=stack, site=self.name)
        self.nodes[node_name] = node
        return node

    def release_node(self, node_name: str) -> None:
        self.nodes.pop(node_name, None)
