"""The compact picklable op protocol between the engine and its workers.

A real-parallel shard backend (DESIGN.md §6j) splits one drain of the
:class:`~repro.shard.engine.ShardedFanout` pipeline into two phases:

* the **control phase** runs in the parent, in global ingress (``seq``)
  order: Adj-RIB-In mutation, kernel route ops, and — crucially —
  ADD-PATH path-id allocation, whose sequential counter makes its
  results order-dependent.  Running it in arrival order keeps every
  allocated id identical to the sync reference.
* the **encode phase** is the expensive, *pure* part: turning each
  resolved :class:`~repro.bgp.messages.UpdateMessage` into wire bytes.
  It carries no shared state, so it fans out to workers and the results
  merge back by :class:`~repro.shard.engine.MergeKey`.

This module defines the job objects exchanged across that seam and the
(de)serialisation used by the ``mp`` backend.  Jobs are packed as plain
tuples — ``(job_index, addpath, attributes, nlri, withdrawn)`` — rather
than pickling whole :class:`UpdateMessage` objects: the tuple form
strips the per-message ``_wire_cache`` memo dict, and pickle's memo
table then deduplicates the interned :class:`PathAttributes` shared by
a batch, keeping one dispatch's payload compact.  Results flow back as
raw wire frames — produced by the same (zero-copy, when enabled)
encode buffers the in-process path uses — so the parent never decodes
or re-encodes anything a worker already paid for.

Session objects never cross the process boundary: the parent keeps the
job list and workers address results by ``job_index``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bgp.messages import UpdateMessage
from repro.shard.engine import MergeKey

__all__ = [
    "EncodeJob",
    "EncodeResult",
    "encode_packed_batch",
    "pack_job",
    "unpack_job",
]


@dataclass
class EncodeJob:
    """One pending wire encode, resolved by the control phase.

    ``session`` stays parent-side (it is not picklable and must not
    cross the fork); ``addpath`` is captured from the session at emit
    time so the worker encodes exactly the bytes
    ``session.send_update`` would have produced.
    """

    key: MergeKey
    session: object
    addpath: bool
    update: UpdateMessage
    counter: Optional[str]


@dataclass
class EncodeResult:
    """One completed encode: the job's index and its wire frame."""

    index: int
    frame: bytes


def pack_job(index: int, job: EncodeJob) -> tuple:
    """Compact picklable form of one job (parent → worker)."""
    update = job.update
    return (
        index,
        job.addpath,
        update.attributes,
        update.nlri,
        update.withdrawn,
    )


def unpack_job(packed: tuple) -> Tuple[int, bool, UpdateMessage]:
    """Rebuild ``(index, addpath, update)`` from :func:`pack_job`."""
    index, addpath, attributes, nlri, withdrawn = packed
    return index, addpath, UpdateMessage(
        attributes=attributes, nlri=nlri, withdrawn=withdrawn
    )


def encode_packed_batch(
    packed_jobs: Sequence[tuple],
    fault_countdown: Optional[int] = None,
) -> Tuple[List[Tuple[int, bytes]], Optional[int]]:
    """Encode a packed batch; shared by the mp worker loop and tests.

    Returns ``(results, remaining_fault_countdown)``.  When
    ``fault_countdown`` reaches zero mid-batch the caller is expected
    to crash (the mp worker calls ``os._exit``) — the countdown is
    threaded through so the crash-injection seam lives in one place.
    """
    results: List[Tuple[int, bytes]] = []
    for packed in packed_jobs:
        if fault_countdown is not None:
            if fault_countdown <= 0:
                return results, 0
            fault_countdown -= 1
        index, addpath, update = unpack_job(packed)
        results.append((index, update.encode(addpath=addpath)))
    return results, fault_countdown
