"""Real execution backends for the shard layer (DESIGN.md §6j).

``repro.parallel`` turns the PR 5 *modeled* shard executor into real
concurrency behind the same seam: an asyncio event-loop backend and a
``multiprocessing`` worker pool, both proven byte-identical to the sync
reference by the differential harness (``FLAGS.shard_backend``).
"""

from repro.parallel.backends import (
    BACKEND_NAMES,
    AsyncShardBackend,
    DispatchOutcome,
    MpShardBackend,
    live_worker_count,
    make_backend,
    shutdown_all,
)
from repro.parallel.protocol import (
    EncodeJob,
    EncodeResult,
    encode_packed_batch,
    pack_job,
    unpack_job,
)

__all__ = [
    "BACKEND_NAMES",
    "AsyncShardBackend",
    "DispatchOutcome",
    "EncodeJob",
    "EncodeResult",
    "MpShardBackend",
    "encode_packed_batch",
    "live_worker_count",
    "make_backend",
    "pack_job",
    "shutdown_all",
    "unpack_job",
]
