"""Real execution backends behind the ``ShardedFanout`` executor seam.

PR 5's shard layer *modeled* parallelism: work ran serially with
wall-clock attributed to shards.  This module makes the same seam
actually parallel (DESIGN.md §6j), gated by the
``perf.FLAGS.shard_backend`` knob:

* :class:`AsyncShardBackend` (``"async"``) — one asyncio task per shard
  worker on a private event loop.  Encode jobs are processed
  cooperatively (one yield per op), exercising the full dispatch/merge
  protocol in-process with zero IPC — the stepping stone the ROADMAP
  names toward a socket-driving ``Channel`` transport.
* :class:`MpShardBackend` (``"mp"``) — a ``multiprocessing`` worker
  pool, one OS process per shard.  Batches cross the pipe in the
  compact packed-tuple protocol (:mod:`repro.parallel.protocol`);
  workers encode with the same (zero-copy, when enabled) buffers the
  in-process path uses and return raw wire frames plus their measured
  busy time, so per-shard accounting is *real*, not attributed.

Both backends are pure with respect to platform state: the control
phase already ran in the parent, so a worker crash can lose only
not-yet-merged frames.  The engine handles that through the existing
kill/resurrect path — a failed shard is marked dead, its undelivered
jobs are retained here, and :meth:`resurrect_shard` re-dispatches them
on a fresh worker before the inbox backlog replays.

Every pool registers in a module-level weak set; :func:`live_worker_count`
/ :func:`shutdown_all` back the test-suite leak guard and an ``atexit``
hook so no test run (or interpreter exit) can leave orphaned worker
processes behind.
"""

from __future__ import annotations

import asyncio
import atexit
import multiprocessing
import os
import time as _time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.parallel.protocol import (
    EncodeJob,
    encode_packed_batch,
    pack_job,
)

__all__ = [
    "BACKEND_NAMES",
    "AsyncShardBackend",
    "DispatchOutcome",
    "MpShardBackend",
    "live_worker_count",
    "make_backend",
    "shutdown_all",
]

_perf_counter = _time.perf_counter

#: Every selectable backend, ``"model"`` being the PR 5 in-process
#: reference (no backend object — the engine runs its original path).
BACKEND_NAMES = ("model", "async", "mp")

#: How long one dispatch may wait on a worker process before the engine
#: declares it dead (hung-worker fail-fast; the CI mp tests add
#: ``pytest-timeout`` on top as a second line of defence).
DEFAULT_DISPATCH_TIMEOUT_S = 60.0

_LIVE_BACKENDS: "weakref.WeakSet[MpShardBackend]" = weakref.WeakSet()


@dataclass
class DispatchOutcome:
    """What one dispatch round produced.

    ``completed`` pairs each finished job with its wire frame,
    ``shard_busy`` carries the measured per-shard encode seconds, and
    ``failed_shards`` names workers that died (or hung) mid-batch —
    their unfinished jobs stay retained in the backend for replay.
    """

    completed: List[Tuple[EncodeJob, bytes]] = field(default_factory=list)
    shard_busy: Dict[int, float] = field(default_factory=dict)
    failed_shards: List[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# asyncio backend
# ---------------------------------------------------------------------------


class AsyncShardBackend:
    """One asyncio task per shard worker on a private event loop.

    The loop is owned by this backend (never the running thread's
    default loop) so it composes with any host application.  Workers
    cannot die — a task failure would propagate — so the kill/resurrect
    surface is a no-op beyond the engine's own inbox semantics.
    """

    name = "async"

    def __init__(self, shard_count: int) -> None:
        self.shard_count = shard_count
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._retained: Dict[int, List[EncodeJob]] = {}
        self.dispatches = 0

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    async def _shard_task(
        self, jobs: List[EncodeJob]
    ) -> Tuple[float, List[Tuple[EncodeJob, bytes]]]:
        busy = 0.0
        results: List[Tuple[EncodeJob, bytes]] = []
        for job in jobs:
            started = _perf_counter()
            frame = job.update.encode(addpath=job.addpath)
            busy += _perf_counter() - started
            results.append((job, frame))
            # Cooperative pump: yield between ops so shard tasks
            # interleave on the loop instead of monopolising it.
            await asyncio.sleep(0)
        return busy, results

    async def _run(
        self, jobs_by_shard: Dict[int, List[EncodeJob]]
    ) -> DispatchOutcome:
        shards = sorted(jobs_by_shard)
        tasks = [
            asyncio.ensure_future(self._shard_task(jobs_by_shard[shard]))
            for shard in shards
        ]
        outcome = DispatchOutcome()
        for shard, task in zip(shards, tasks):
            busy, results = await task
            outcome.shard_busy[shard] = busy
            outcome.completed.extend(results)
        return outcome

    def dispatch(
        self, jobs_by_shard: Dict[int, List[EncodeJob]]
    ) -> DispatchOutcome:
        self.dispatches += 1
        return self._ensure_loop().run_until_complete(
            self._run(jobs_by_shard)
        )

    def pending_jobs(self, shard_id: int) -> int:
        return len(self._retained.get(shard_id, ()))

    def retain_jobs(self, shard_id: int, jobs: List[EncodeJob]) -> None:
        """Hold jobs stranded by an engine-level kill for later replay."""
        self._retained.setdefault(shard_id, []).extend(jobs)

    def on_kill(self, shard_id: int) -> None:  # in-process: nothing to reap
        return None

    def resurrect_shard(self, shard_id: int) -> DispatchOutcome:
        retained = self._retained.pop(shard_id, [])
        if not retained:
            return DispatchOutcome()
        return self.dispatch({shard_id: retained})

    def live_workers(self) -> int:
        return 0

    def close(self) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.close()
        self._loop = None


# ---------------------------------------------------------------------------
# multiprocessing backend
# ---------------------------------------------------------------------------


def _worker_main(conn, shard_id: int) -> None:
    """The worker-process loop: recv a batch, encode, reply, repeat.

    A ``("fault", n)`` control message arms the crash-injection seam:
    the worker hard-exits (``os._exit``) after ``n`` more jobs *without
    replying*, which is exactly what a real mid-batch crash looks like
    from the parent (EOF on the pipe).
    """
    fault_countdown: Optional[int] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "fault":
            fault_countdown = message[1]
            conn.send(("ok",))
            continue
        started = _perf_counter()
        results, fault_countdown = encode_packed_batch(
            message[1], fault_countdown
        )
        if fault_countdown == 0:
            os._exit(17)  # crash mid-batch: no reply, parent sees EOF
        conn.send(("done", _perf_counter() - started, results))


@dataclass
class _MpWorker:
    process: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection


def _continue_stopped(process) -> None:
    """Deliver SIGCONT so a stopped (wedged) worker can receive the
    pending SIGTERM — ``terminate()`` alone never kills a SIGSTOPped
    process."""
    import signal

    if process.pid is None:
        return
    try:
        os.kill(process.pid, signal.SIGCONT)
    except (OSError, ProcessLookupError):
        pass


def _reap(workers: List[Optional[_MpWorker]]) -> None:
    """Terminate and join every live worker (finalizer / atexit path)."""
    for worker in workers:
        if worker is None:
            continue
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)


class MpShardBackend:
    """A ``multiprocessing`` pool: one worker process per shard.

    Workers spawn lazily on first dispatch (``fork`` start method when
    the platform offers it — workers only encode, so inheriting parent
    state is safe and start-up stays cheap).  Jobs lost to a dead or
    hung worker are retained per shard and replayed on
    :meth:`resurrect_shard`.
    """

    name = "mp"

    def __init__(
        self,
        shard_count: int,
        dispatch_timeout_s: float = DEFAULT_DISPATCH_TIMEOUT_S,
    ) -> None:
        self.shard_count = shard_count
        self.dispatch_timeout_s = dispatch_timeout_s
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: List[Optional[_MpWorker]] = [None] * shard_count
        self._retained: Dict[int, List[EncodeJob]] = {}
        self.dispatches = 0
        self.worker_restarts = 0
        self._closed = False
        _LIVE_BACKENDS.add(self)
        # Safety net: a pool dropped without close() still reaps its
        # processes when garbage-collected (the list object is shared,
        # so the finalizer sees workers spawned after registration).
        self._finalizer = weakref.finalize(self, _reap, self._workers)

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, shard_id: int) -> _MpWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, shard_id),
            name=f"repro-shard-worker-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _MpWorker(process=process, conn=parent_conn)
        self._workers[shard_id] = worker
        return worker

    def _ensure_worker(self, shard_id: int) -> _MpWorker:
        if self._closed:
            raise RuntimeError("backend is closed")
        worker = self._workers[shard_id]
        if worker is None or not worker.process.is_alive():
            if worker is not None:
                self._discard(shard_id)
                self.worker_restarts += 1
            worker = self._spawn(shard_id)
        return worker

    def _discard(self, shard_id: int) -> None:
        worker = self._workers[shard_id]
        if worker is None:
            return
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            _continue_stopped(worker.process)
        worker.process.join(timeout=5)
        if worker.process.is_alive():  # last resort for a wedged worker
            worker.process.kill()
            worker.process.join(timeout=5)
        self._workers[shard_id] = None

    # -- dispatch ----------------------------------------------------------

    def dispatch(
        self, jobs_by_shard: Dict[int, List[EncodeJob]]
    ) -> DispatchOutcome:
        """Ship every shard's batch, then collect replies.

        All sends complete before the first receive so workers run
        concurrently; a shard whose worker dies (EOF) or wedges past
        ``dispatch_timeout_s`` is reported failed and its whole batch is
        retained for replay — batches are all-or-nothing, so a partial
        crash can never half-apply.
        """
        self.dispatches += 1
        outcome = DispatchOutcome()
        sent: List[Tuple[int, List[EncodeJob], _MpWorker]] = []
        for shard in sorted(jobs_by_shard):
            jobs = jobs_by_shard[shard]
            if not jobs:
                continue
            try:
                worker = self._ensure_worker(shard)
                worker.conn.send(
                    ("batch", [pack_job(i, job)
                               for i, job in enumerate(jobs)])
                )
            except (OSError, ValueError, BrokenPipeError):
                self._fail_shard(shard, jobs, outcome)
                continue
            sent.append((shard, jobs, worker))
        for shard, jobs, worker in sent:
            try:
                if not worker.conn.poll(self.dispatch_timeout_s):
                    raise EOFError(
                        f"worker {shard} hung past "
                        f"{self.dispatch_timeout_s}s"
                    )
                reply = worker.conn.recv()
            except (EOFError, OSError):
                self._fail_shard(shard, jobs, outcome)
                continue
            _kind, busy, results = reply
            outcome.shard_busy[shard] = busy
            for index, frame in results:
                outcome.completed.append((jobs[index], frame))
        return outcome

    def _fail_shard(
        self,
        shard: int,
        jobs: List[EncodeJob],
        outcome: DispatchOutcome,
    ) -> None:
        self._discard(shard)
        self._retained.setdefault(shard, []).extend(jobs)
        outcome.failed_shards.append(shard)
        self.worker_restarts += 1  # the replay path will respawn it

    # -- fault surface -----------------------------------------------------

    def inject_crash(self, shard_id: int, after_jobs: int = 0) -> None:
        """Test seam: make the shard's worker crash mid-batch.

        The worker hard-exits after processing ``after_jobs`` more jobs
        of the *next* batch, without replying — indistinguishable from
        a real worker-process crash.
        """
        worker = self._ensure_worker(shard_id)
        worker.conn.send(("fault", after_jobs))
        if not worker.conn.poll(self.dispatch_timeout_s):
            raise RuntimeError("worker did not acknowledge fault arm")
        worker.conn.recv()

    def pending_jobs(self, shard_id: int) -> int:
        return len(self._retained.get(shard_id, ()))

    def retain_jobs(self, shard_id: int, jobs: List[EncodeJob]) -> None:
        """Hold jobs stranded by an engine-level kill for later replay."""
        self._retained.setdefault(shard_id, []).extend(jobs)

    def on_kill(self, shard_id: int) -> None:
        """Engine kill: reap the process now — no orphans, no zombies."""
        self._discard(shard_id)

    def resurrect_shard(self, shard_id: int) -> DispatchOutcome:
        """Respawn the worker and replay its retained jobs, in order."""
        retained = self._retained.pop(shard_id, [])
        if not retained:
            return DispatchOutcome()
        return self.dispatch({shard_id: retained})

    # -- lifecycle ---------------------------------------------------------

    def live_workers(self) -> int:
        return sum(
            1 for worker in self._workers
            if worker is not None and worker.process.is_alive()
        )

    def close(self) -> None:
        """Stop every worker: polite stop first, then terminate+join."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for shard_id in range(self.shard_count):
            self._discard(shard_id)
        self._retained.clear()


# ---------------------------------------------------------------------------
# factory + leak guard
# ---------------------------------------------------------------------------


def make_backend(
    name: str,
    shard_count: int,
    dispatch_timeout_s: float = DEFAULT_DISPATCH_TIMEOUT_S,
):
    """Build the backend for ``perf.FLAGS.shard_backend``.

    ``"model"`` returns ``None`` — the engine runs its original
    in-process path with modeled attribution.
    """
    if name == "model":
        return None
    if name == "async":
        return AsyncShardBackend(shard_count)
    if name == "mp":
        return MpShardBackend(
            shard_count, dispatch_timeout_s=dispatch_timeout_s
        )
    raise ValueError(
        f"unknown shard backend {name!r} (expected one of {BACKEND_NAMES})"
    )


def live_worker_count() -> int:
    """Live worker processes across every pool (the test leak guard)."""
    return sum(backend.live_workers() for backend in _LIVE_BACKENDS)


def shutdown_all() -> int:
    """Close every live pool; returns how many workers were reaped."""
    reaped = 0
    for backend in list(_LIVE_BACKENDS):
        reaped += backend.live_workers()
        backend.close()
    return reaped


atexit.register(shutdown_all)
