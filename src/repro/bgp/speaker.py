"""A complete BGP speaker: sessions + RIBs + decision + policy + MRAI.

:class:`BgpSpeaker` is the routing-engine core used across the
reproduction: the BIRD-like router wraps one, every synthetic Internet AS
runs one, and experiment-side toolkits embed one. vBGP uses the same
sessions and RIB primitives but with its own per-neighbor fan-out logic
(:mod:`repro.vbgp`), since its job is precisely *not* to pick one best path.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro import perf
from repro.bgp.attributes import Route
from repro.bgp.decision import PeerContext, best_path
from repro.bgp.errors import CeaseSubcode, ErrorCode, NotificationError
from repro.bgp.messages import UpdateMessage
from repro.bgp.policy import RouteMap
from repro.bgp.rib import AdjRibIn, AdjRibOut, RibEntry, make_loc_rib
from repro.bgp.session import BgpSession, SessionConfig, SessionState
from repro.bgp.supervisor import SessionSupervisor, SupervisorConfig
from repro.bgp.transport import Channel
from repro.netsim.addr import IPv4Address, Prefix
from repro.shard.engine import ShardCostModel
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub

LOCAL_PEER = "__local__"


@dataclass
class SpeakerConfig:
    """Global speaker configuration."""

    asn: int
    router_id: IPv4Address
    hold_time: int = 90
    mrai: float = 0.0  # minimum route advertisement interval (seconds)


@dataclass
class NeighborConfig:
    """Per-neighbor configuration."""

    name: str
    peer_asn: Optional[int] = None
    peer_address: IPv4Address = IPv4Address(0)
    local_address: IPv4Address = IPv4Address(0)
    addpath: bool = False
    is_ibgp: bool = False
    import_policy: Optional[RouteMap] = None
    export_policy: Optional[RouteMap] = None
    next_hop_self: bool = True
    max_prefixes: Optional[int] = None
    rtt: float = 0.01
    # Route-server style: do not prepend our ASN and preserve the original
    # next hop when exporting to this neighbor (RFC 7947 transparency).
    transparent: bool = False
    # Graceful Restart (RFC 4724): offer the capability; ``restart_time``
    # is how long we ask the peer to retain our routes after a reset.
    graceful_restart: bool = False
    restart_time: int = 120


class Neighbor:
    """Runtime state for one configured neighbor."""

    def __init__(self, config: NeighborConfig) -> None:
        self.config = config
        self.session: Optional[BgpSession] = None
        self.adj_rib_in = AdjRibIn(config.name)
        self.adj_rib_out = AdjRibOut(config.name)
        self.context = PeerContext(
            is_ebgp=not config.is_ibgp,
            peer_address=config.peer_address,
        )
        # Outbound ADD-PATH id allocation: stable per source candidate.
        self._path_ids: dict[tuple[Prefix, str, Optional[int]], int] = {}
        self._path_id_counter = itertools.count(1)
        # MRAI batching state.
        self.pending_announce: dict[tuple[Prefix, Optional[int]], Route] = {}
        self.pending_withdraw: set[tuple[Prefix, Optional[int]]] = set()
        self.mrai_event = None
        # Graceful Restart receiver state: keys retained as stale after a
        # non-administrative close, flushed on timer expiry or End-of-RIB.
        self.stale_keys: set[tuple[Prefix, Optional[int]]] = set()
        self.stale_event = None
        # Optional auto-reconnect supervision.
        self.supervisor: Optional[SessionSupervisor] = None

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def established(self) -> bool:
        return self.session is not None and self.session.established

    def path_id_for(self, prefix: Prefix, source_peer: str,
                    source_path_id: Optional[int]) -> int:
        key = (prefix, source_peer, source_path_id)
        if key not in self._path_ids:
            self._path_ids[key] = next(self._path_id_counter)
        return self._path_ids[key]

    def release_path_id(self, prefix: Prefix, source_peer: str,
                        source_path_id: Optional[int]) -> Optional[int]:
        return self._path_ids.pop((prefix, source_peer, source_path_id), None)


BestChangeCallback = Callable[[Prefix, Optional[RibEntry]], None]
RouteCallback = Callable[[str, Route], None]


class BgpSpeaker:
    """One BGP routing process."""

    def __init__(self, scheduler: Scheduler, config: SpeakerConfig,
                 telemetry: Optional["TelemetryHub"] = None) -> None:
        self.scheduler = scheduler
        self.config = config
        self.neighbors: dict[str, Neighbor] = {}
        self.loc_rib = make_loc_rib(select=self._select)
        self.local_routes: dict[Prefix, Route] = {}
        self.on_best_change: list[BestChangeCallback] = []
        self.on_route_received: list[RouteCallback] = []
        self.updates_processed = 0
        self.allow_own_asn_in = False  # loop-check override (poisoning tests)
        # Shard-attributed export cost (repro.shard): with shards>1 each
        # neighbor's flush wall-clock is charged to the shard that would
        # own that neighbor — modeling only, no emitted byte changes.
        self._shard_costs: Optional[ShardCostModel] = None
        # Optional overload governor (repro.overload, §6i): when set via
        # enable_overload(), every neighbor session routes its received
        # UPDATEs through a bounded per-neighbor ingress queue.
        self.overload = None
        self.telemetry = telemetry
        self.telemetry_name = f"as{config.asn}/{config.router_id}"
        self._m_updates = None
        if telemetry is not None:
            self._register_telemetry(telemetry)

    def _register_telemetry(self, telemetry: "TelemetryHub") -> None:
        """Declare this speaker's instruments on the shared registry.

        RIB sizes and decision-process tallies are *function gauges*:
        evaluated only at scrape time, so they cost nothing per update.
        """
        registry = telemetry.registry
        name = self.telemetry_name
        self._m_updates = registry.counter(
            "bgp_speaker_updates",
            "UPDATE messages processed by the routing engine",
            labels=("speaker",),
        ).labels(name)
        rib_gauges = (
            ("bgp_rib_loc_routes", "Loc-RIB candidate routes",
             lambda: len(self.loc_rib)),
            ("bgp_rib_loc_prefixes", "Loc-RIB distinct prefixes",
             lambda: self.loc_rib.prefix_count),
            ("bgp_rib_best_changes", "Cumulative best-path changes",
             lambda: self.loc_rib.stats.best_changes),
            ("bgp_rib_reselects", "Cumulative decision-process runs",
             lambda: self.loc_rib.stats.reselects),
            ("bgp_speaker_neighbors_established",
             "Neighbors with an ESTABLISHED session",
             lambda: sum(
                 1 for n in self.neighbors.values() if n.established
             )),
        )
        for metric, help_text, fn in rib_gauges:
            registry.gauge(metric, help_text, labels=("speaker",)).labels(
                name
            ).set_function(fn)

    # ------------------------------------------------------------------
    # Neighbor management
    # ------------------------------------------------------------------

    def attach_neighbor(
        self,
        config: NeighborConfig,
        channel: Channel,
        channel_factory: Optional[Callable[[], Optional[Channel]]] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> Neighbor:
        """Create a neighbor and start its session over ``channel``.

        When ``channel_factory`` is given, a :class:`SessionSupervisor`
        adopts the session and re-dials through the factory after every
        non-administrative close (exponential backoff, deterministic
        jitter, flap damping) — the neighbor heals without operator help.
        """
        if config.name in self.neighbors:
            raise ValueError(f"duplicate neighbor {config.name!r}")
        neighbor = Neighbor(config)
        self.neighbors[config.name] = neighbor
        session = self._make_session(neighbor, channel)
        if channel_factory is not None:
            neighbor.supervisor = SessionSupervisor(
                self.scheduler,
                peer_key=config.name,
                channel_factory=channel_factory,
                session_factory=lambda ch, n=neighbor: (
                    self._make_session(n, ch)
                ),
                config=supervisor_config,
                telemetry=self.telemetry,
            )
            neighbor.supervisor.adopt(session)
        session.start()
        return neighbor

    def _make_session(self, neighbor: Neighbor,
                      channel: Channel) -> BgpSession:
        """Build (or rebuild, on supervisor re-dial) a neighbor session."""
        config = neighbor.config
        session_config = SessionConfig(
            local_asn=self.config.asn,
            local_id=self.config.router_id,
            peer_asn=config.peer_asn,
            hold_time=self.config.hold_time,
            addpath=config.addpath,
            description=config.name,
            graceful_restart=config.graceful_restart,
            restart_time=config.restart_time,
        )
        neighbor.session = BgpSession(
            self.scheduler,
            session_config,
            channel,
            on_update=lambda session, update, n=config.name: (
                self._update_received(n, update)
            ),
            on_established=lambda session, n=config.name: (
                self._session_established(n)
            ),
            on_close=lambda session, reason, n=config.name: (
                self._session_closed(n, reason)
            ),
            on_end_of_rib=lambda session, n=config.name: (
                self._end_of_rib(n)
            ),
            telemetry=self.telemetry,
        )
        if self.overload is not None:
            neighbor.session.set_ingress_queue(
                self.overload.queue_for(config.name)
            )
        return neighbor.session

    def enable_overload(self, governor) -> None:
        """Bound this speaker's ingress with an
        :class:`~repro.overload.OverloadGovernor`: existing neighbor
        sessions are re-wired immediately; re-dialed sessions inherit
        their neighbor's queue through :meth:`_make_session`."""
        self.overload = governor
        for neighbor in self.neighbors.values():
            if neighbor.session is not None:
                neighbor.session.set_ingress_queue(
                    governor.queue_for(neighbor.config.name)
                )

    def reattach_neighbor(self, name: str, channel: Channel) -> Neighbor:
        """Rebuild an existing neighbor's session over a fresh transport.

        This is the remote side of resilient provisioning: the peer
        re-dialed and handed us a new channel end.  Any prior session
        that is still open is shut down administratively first (so GR
        retention and supervision do not trigger on *that* close), then
        a replacement session starts over ``channel``.  GR stale state,
        if armed, survives the swap and is flushed by the new session's
        End-of-RIB as RFC 4724 intends.
        """
        neighbor = self.neighbors[name]
        old = neighbor.session
        if old is not None and old.state is not SessionState.CLOSED:
            old.shutdown()
        session = self._make_session(neighbor, channel)
        if neighbor.supervisor is not None:
            neighbor.supervisor.adopt(session)
        session.start()
        return neighbor

    def remove_neighbor(self, name: str) -> None:
        neighbor = self.neighbors.pop(name, None)
        if neighbor is None:
            return
        if neighbor.supervisor is not None:
            neighbor.supervisor.stop()
        if neighbor.stale_event is not None:
            neighbor.stale_event.cancel()
            neighbor.stale_event = None
        if neighbor.session is not None:
            neighbor.session.shutdown(CeaseSubcode.PEER_DECONFIGURED)
        self._flush_peer_routes(name)

    def neighbor(self, name: str) -> Neighbor:
        return self.neighbors[name]

    # ------------------------------------------------------------------
    # Local route origination
    # ------------------------------------------------------------------

    def originate(self, route: Route) -> None:
        """Originate a local route (empty AS path; exported with our ASN)."""
        self.local_routes[route.prefix] = route
        if self.loc_rib.replace(LOCAL_PEER, route):
            self._best_changed(route.prefix)
        self._schedule_export(route.prefix)

    def withdraw(self, prefix: Prefix) -> None:
        route = self.local_routes.pop(prefix, None)
        if route is None:
            return
        if self.loc_rib.remove(LOCAL_PEER, prefix, route.path_id):
            self._best_changed(prefix)
        self._schedule_export(prefix)

    # ------------------------------------------------------------------
    # Inbound processing
    # ------------------------------------------------------------------

    def _update_received(self, neighbor_name: str,
                         update: UpdateMessage) -> None:
        neighbor = self.neighbors.get(neighbor_name)
        if neighbor is None:
            return
        self.updates_processed += 1
        tele = self.telemetry
        if tele is None:
            self._apply_update(neighbor, neighbor_name, update)
            return
        self._m_updates.inc()
        token = tele.tracer.begin(
            "bgp.speaker.update", speaker=self.telemetry_name,
            peer=neighbor_name,
        )
        try:
            self._apply_update(neighbor, neighbor_name, update)
        finally:
            tele.tracer.end(token)

    def _apply_update(self, neighbor: Neighbor, neighbor_name: str,
                      update: UpdateMessage) -> None:
        changed: set[Prefix] = set()
        for prefix, path_id in update.withdrawn:
            removed = neighbor.adj_rib_in.withdraw(prefix, path_id)
            if removed is not None and self.loc_rib.remove(
                neighbor_name, prefix, path_id
            ):
                changed.add(prefix)
        for route in update.routes():
            for callback in self.on_route_received:
                callback(neighbor_name, route)
            if (
                route.as_path.contains(self.config.asn)
                and not self.allow_own_asn_in
            ):
                continue  # loop prevention
            imported = route
            if neighbor.config.import_policy is not None:
                maybe = neighbor.config.import_policy.apply(route)
                if maybe is None:
                    # Policy-rejected routes still occupy Adj-RIB-In space
                    # conceptually; we model post-policy RIBs only.
                    neighbor.adj_rib_in.withdraw(route.prefix, route.path_id)
                    if self.loc_rib.remove(
                        neighbor_name, route.prefix, route.path_id
                    ):
                        changed.add(route.prefix)
                    continue
                imported = maybe
            neighbor.adj_rib_in.update(imported)
            # A refreshed route is no longer stale (RFC 4724 receiver).
            if neighbor.stale_keys:
                neighbor.stale_keys.discard((route.prefix, route.path_id))
            if neighbor.config.max_prefixes is not None and (
                len(neighbor.adj_rib_in) > neighbor.config.max_prefixes
            ):
                self._max_prefixes_exceeded(neighbor)
                return
            if self.loc_rib.replace(neighbor_name, imported):
                changed.add(imported.prefix)
        for prefix in changed:
            self._best_changed(prefix)
        touched = set(
            prefix for prefix, _ in update.withdrawn
        ) | set(prefix for prefix, _ in update.nlri)
        for prefix in touched:
            self._schedule_export(prefix)

    def _max_prefixes_exceeded(self, neighbor: Neighbor) -> None:
        if neighbor.session is not None:
            neighbor.session.notify_and_close(
                NotificationError(
                    ErrorCode.CEASE, CeaseSubcode.MAX_PREFIXES_REACHED,
                    message="max prefixes exceeded",
                )
            )

    def _session_established(self, neighbor_name: str) -> None:
        """Advertise the full desired state to a newly established peer."""
        neighbor = self.neighbors.get(neighbor_name)
        if neighbor is None:
            return
        for prefix in list(self.loc_rib.prefixes()):
            self._enqueue_prefix(neighbor, prefix)
        self._flush(neighbor)
        session = neighbor.session
        if session is not None and session.gr_negotiated:
            # RFC 4724: the End-of-RIB marker closes the initial table
            # transfer — the receiver may then flush whatever is stale.
            session.send_end_of_rib()

    def _session_closed(self, neighbor_name: str, reason: str) -> None:
        neighbor = self.neighbors.get(neighbor_name)
        if neighbor is None:
            # De-configured neighbor: remove_neighbor handles the flush.
            self._flush_peer_routes(neighbor_name)
            return
        # Outbound state always resets: a future session starts from an
        # empty Adj-RIB-Out and re-announces from scratch.
        neighbor.adj_rib_out.clear()
        neighbor.pending_announce.clear()
        neighbor.pending_withdraw.clear()
        if neighbor.mrai_event is not None:
            neighbor.mrai_event.cancel()
            neighbor.mrai_event = None
        session = neighbor.session
        if (
            session is not None
            and session.gr_negotiated
            and not session.closed_admin
        ):
            self._mark_stale(neighbor)
        else:
            self._flush_peer_routes(neighbor_name)

    def _mark_stale(self, neighbor: Neighbor) -> None:
        """GR receiver mode: retain the peer's routes, marked stale."""
        session = neighbor.session
        restart_time = session.peer_restart_time if session is not None else 0
        keys = {
            (route.prefix, route.path_id)
            for route in neighbor.adj_rib_in.routes()
        }
        if not keys or restart_time <= 0:
            self._flush_peer_routes(neighbor.name)
            return
        neighbor.stale_keys = keys
        if neighbor.stale_event is not None:
            neighbor.stale_event.cancel()
        neighbor.stale_event = self.scheduler.call_later(
            float(restart_time),
            lambda name=neighbor.name: self._stale_expired(name),
        )
        tele = self.telemetry
        if tele is not None:
            from repro.telemetry.station import ResilienceEvent
            tele.station.publish(ResilienceEvent(
                peer=neighbor.name, time=self.scheduler.now,
                event="gr-stale",
                detail=f"{len(keys)} routes retained for {restart_time}s",
            ))

    def _end_of_rib(self, neighbor_name: str) -> None:
        """Peer finished its (re)transmission: flush leftover stale routes."""
        neighbor = self.neighbors.get(neighbor_name)
        if neighbor is None:
            return
        if neighbor.stale_event is not None:
            neighbor.stale_event.cancel()
            neighbor.stale_event = None
        self._flush_stale(neighbor, "gr-flush-eor")

    def _stale_expired(self, neighbor_name: str) -> None:
        """Restart timer ran out without a refreshed RIB: fail closed."""
        neighbor = self.neighbors.get(neighbor_name)
        if neighbor is None:
            return
        neighbor.stale_event = None
        self._flush_stale(neighbor, "gr-flush-expired")

    def _flush_stale(self, neighbor: Neighbor, event: str) -> None:
        remaining = neighbor.stale_keys
        neighbor.stale_keys = set()
        if not remaining:
            return
        for prefix, path_id in remaining:
            neighbor.adj_rib_in.withdraw(prefix, path_id)
            if self.loc_rib.remove(neighbor.name, prefix, path_id):
                self._best_changed(prefix)
        for prefix in {key[0] for key in remaining}:
            self._schedule_export(prefix)
        tele = self.telemetry
        if tele is not None:
            from repro.telemetry.station import ResilienceEvent
            tele.station.publish(ResilienceEvent(
                peer=neighbor.name, time=self.scheduler.now,
                event=event, detail=f"{len(remaining)} stale routes flushed",
            ))

    def _flush_peer_routes(self, neighbor_name: str) -> None:
        neighbor = self.neighbors.get(neighbor_name)
        touched: set[Prefix] = set()
        if neighbor is not None:
            touched.update(neighbor.adj_rib_in.prefixes())
            neighbor.adj_rib_in.clear()
            neighbor.stale_keys = set()
            if neighbor.stale_event is not None:
                neighbor.stale_event.cancel()
                neighbor.stale_event = None
        for prefix in self.loc_rib.remove_peer(neighbor_name):
            touched.add(prefix)
            self._best_changed(prefix)
        # Re-export: routes via the dead peer must be withdrawn elsewhere.
        for prefix in touched:
            self._schedule_export(prefix)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------

    def _select(self, entries: list[RibEntry]) -> Optional[RibEntry]:
        contexts = {
            name: neighbor.context
            for name, neighbor in self.neighbors.items()
        }
        contexts[LOCAL_PEER] = PeerContext(
            is_ebgp=False, router_id=self.config.router_id
        )
        # Local routes win by convention (weight), matching BIRD defaults.
        local = [entry for entry in entries if entry.peer == LOCAL_PEER]
        if local:
            return local[0]
        return best_path(entries, contexts)

    def _best_changed(self, prefix: Prefix) -> None:
        if not self.on_best_change:
            return  # skip materializing the entry (columnar backend)
        best = self.loc_rib.best(prefix)
        for callback in self.on_best_change:
            callback(prefix, best)

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        entry = self.loc_rib.best(prefix)
        return entry.route if entry is not None else None

    # ------------------------------------------------------------------
    # Outbound processing
    # ------------------------------------------------------------------

    def _schedule_export(self, prefix: Prefix) -> None:
        for neighbor in self.neighbors.values():
            if not neighbor.established:
                continue
            self._enqueue_prefix(neighbor, prefix)
            self._arm_mrai(neighbor)

    def _enqueue_prefix(self, neighbor: Neighbor, prefix: Prefix) -> None:
        desired = self._desired_routes(neighbor, prefix)
        desired_keys = {
            (route.prefix, route.path_id) for route in desired
        }
        for key in list(neighbor.adj_rib_out.keys()):
            if key[0] == prefix and key not in desired_keys:
                neighbor.pending_withdraw.add(key)
                neighbor.pending_announce.pop(key, None)
        for route in desired:
            key = (route.prefix, route.path_id)
            if neighbor.adj_rib_out.advertised(*key) == route:
                continue
            neighbor.pending_announce[key] = route
            neighbor.pending_withdraw.discard(key)

    def _desired_routes(self, neighbor: Neighbor,
                        prefix: Prefix) -> list[Route]:
        """Post-policy routes we want advertised to ``neighbor``."""
        if neighbor.config.addpath:
            candidates = self.loc_rib.candidates(prefix)
        else:
            entry = self.loc_rib.best(prefix)
            candidates = [entry] if entry is not None else []
        desired = []
        for entry in candidates:
            if entry.peer == neighbor.name:
                continue  # split horizon
            source = self.neighbors.get(entry.peer)
            if (
                source is not None
                and source.config.is_ibgp
                and neighbor.config.is_ibgp
            ):
                continue  # no iBGP reflection (full mesh assumed)
            route = self._export_transform(neighbor, entry)
            if route is None:
                continue
            desired.append(route)
        return desired

    def _export_transform(self, neighbor: Neighbor,
                          entry: RibEntry) -> Optional[Route]:
        route = entry.route
        if neighbor.config.export_policy is not None:
            maybe = neighbor.config.export_policy.apply(route)
            if maybe is None:
                return None
            route = maybe
        if not neighbor.config.is_ibgp and not neighbor.config.transparent:
            route = route.prepended(self.config.asn)
            route = route.with_attributes(local_pref=None)
        if route.next_hop is None or (
            neighbor.config.next_hop_self and not neighbor.config.transparent
        ):
            route = route.with_next_hop(neighbor.config.local_address)
        if neighbor.config.addpath:
            route = route.with_path_id(
                neighbor.path_id_for(entry.prefix, entry.peer,
                                     entry.route.path_id)
            )
        else:
            route = route.with_path_id(None)
        return route

    def _arm_mrai(self, neighbor: Neighbor) -> None:
        if neighbor.mrai_event is not None:
            return
        if self.config.mrai <= 0:
            self._flush(neighbor)
            return
        neighbor.mrai_event = self.scheduler.call_later(
            self.config.mrai, lambda: self._mrai_fired(neighbor)
        )

    def _mrai_fired(self, neighbor: Neighbor) -> None:
        neighbor.mrai_event = None
        self._flush(neighbor)

    def _shard_cost_model(self) -> Optional[ShardCostModel]:
        """The per-shard export cost model, or ``None`` when ``shards=1``."""
        flags = perf.FLAGS
        if flags.shards <= 1:
            return None
        model = self._shard_costs
        if (
            model is None
            or model.shard_count != flags.shards
            or model.seed != flags.shard_seed
        ):
            model = ShardCostModel(flags.shards, seed=flags.shard_seed)
            self._shard_costs = model
        return model

    def _flush(self, neighbor: Neighbor) -> None:
        """Emit the minimal announce/withdraw set for a neighbor.

        With ``perf.FLAGS.shards > 1`` the flush's wall-clock is charged
        to the shard owning this neighbor (deterministic name keying) —
        the bytes on the wire are untouched, only the scale-out model
        learns which shard did the work.
        """
        costs = self._shard_cost_model()
        if costs is None:
            self._flush_impl(neighbor)
            return
        started = _time.perf_counter()
        self._flush_impl(neighbor)
        costs.charge(neighbor.config.name, _time.perf_counter() - started)

    def _flush_impl(self, neighbor: Neighbor) -> None:
        if not neighbor.established or neighbor.session is None:
            return
        withdrawals = []
        for prefix, path_id in sorted(
            neighbor.pending_withdraw, key=lambda k: (k[0].key(), k[1] or 0)
        ):
            removed = neighbor.adj_rib_out.record_withdraw(prefix, path_id)
            if removed is not None:
                withdrawals.append(
                    Route(prefix=prefix, attributes=removed.attributes,
                          path_id=path_id)
                )
        neighbor.pending_withdraw.clear()
        if withdrawals:
            neighbor.session.send_update(UpdateMessage.withdraw(withdrawals))
        # Group announcements by attribute set to pack NLRI efficiently.
        groups: list[tuple[object, list[Route]]] = []
        for key in sorted(
            neighbor.pending_announce, key=lambda k: (k[0].key(), k[1] or 0)
        ):
            route = neighbor.pending_announce[key]
            if not neighbor.adj_rib_out.record_announce(route):
                continue
            for attributes, routes in groups:
                if attributes == route.attributes:
                    routes.append(route)
                    break
            else:
                groups.append((route.attributes, [route]))
        neighbor.pending_announce.clear()
        for _attributes, routes in groups:
            neighbor.session.send_update(UpdateMessage.announce(routes))
