"""A from-scratch BGP-4 implementation (RFC 4271 + the extensions vBGP uses).

Includes the wire formats (OPEN/UPDATE/NOTIFICATION/KEEPALIVE with real
encode/decode), path attributes (AS_PATH with 4-octet ASNs, communities,
large communities, unknown transitive attributes), the session FSM, RIBs
(Adj-RIB-In / Loc-RIB / Adj-RIB-Out), the best-path decision process, a
route-map-style policy engine, and the extensions PEERING depends on:
ADD-PATH (RFC 7911) and community-based export control.
"""

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    LargeCommunity,
    Origin,
    PathAttributes,
    Route,
    SegmentType,
    UnknownAttribute,
    local_route,
    originate,
)
from repro.bgp.errors import BgpError, NotificationError
from repro.bgp.messages import (
    AddPathCapability,
    BgpMessage,
    Capability,
    FourOctetAsCapability,
    GracefulRestartCapability,
    KeepaliveMessage,
    MessageDecoder,
    MultiprotocolCapability,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.decision import best_path, compare_routes
from repro.bgp.policy import (
    PolicyAction,
    PolicyResult,
    PolicyRule,
    RouteMap,
)
from repro.bgp.rib import (
    AdjRibIn,
    AdjRibOut,
    ColumnarLocRib,
    LocRib,
    RibEntry,
    make_loc_rib,
)
from repro.bgp.session import BgpSession, SessionConfig, SessionState
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.supervisor import SessionSupervisor, SupervisorConfig

__all__ = [
    "AddPathCapability",
    "AdjRibIn",
    "AdjRibOut",
    "AsPath",
    "AsPathSegment",
    "BgpError",
    "BgpMessage",
    "BgpSession",
    "BgpSpeaker",
    "Capability",
    "ColumnarLocRib",
    "Community",
    "FourOctetAsCapability",
    "GracefulRestartCapability",
    "KeepaliveMessage",
    "LargeCommunity",
    "LocRib",
    "MessageDecoder",
    "MultiprotocolCapability",
    "NeighborConfig",
    "NotificationError",
    "NotificationMessage",
    "OpenMessage",
    "Origin",
    "PathAttributes",
    "PolicyAction",
    "PolicyResult",
    "PolicyRule",
    "RibEntry",
    "Route",
    "RouteMap",
    "SegmentType",
    "SessionConfig",
    "SessionState",
    "SessionSupervisor",
    "SpeakerConfig",
    "SupervisorConfig",
    "UnknownAttribute",
    "UpdateMessage",
    "best_path",
    "compare_routes",
    "local_route",
    "make_loc_rib",
    "originate",
]
