"""Routing Information Bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

These are the speaker-internal tables of RFC 4271 §3.2. vBGP additionally
keeps one *kernel* table per neighbor (see :mod:`repro.vbgp.tables`); the
classes here are the protocol-level state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.bgp.attributes import Route
from repro.netsim.addr import Prefix


@dataclass(frozen=True)
class RibEntry:
    """A route in a RIB, tagged with the peer it came from."""

    peer: str
    route: Route

    @property
    def prefix(self) -> Prefix:
        return self.route.prefix

    @property
    def path_id(self) -> Optional[int]:
        return self.route.path_id


class AdjRibIn:
    """Routes received from one peer, keyed by (prefix, path id).

    With ADD-PATH inactive every announcement for a prefix implicitly
    replaces the previous one (path id ``None``); with ADD-PATH active the
    peer may maintain several concurrent paths per prefix.
    """

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._routes: dict[Prefix, dict[Optional[int], Route]] = {}

    def __len__(self) -> int:
        return sum(len(paths) for paths in self._routes.values())

    def update(self, route: Route) -> Optional[Route]:
        """Insert/replace; returns the replaced route if any."""
        paths = self._routes.setdefault(route.prefix, {})
        previous = paths.get(route.path_id)
        paths[route.path_id] = route
        return previous

    def withdraw(self, prefix: Prefix,
                 path_id: Optional[int] = None) -> Optional[Route]:
        """Remove; returns the withdrawn route if it existed."""
        paths = self._routes.get(prefix)
        if not paths:
            return None
        removed = paths.pop(path_id, None)
        if not paths:
            del self._routes[prefix]
        return removed

    def routes_for(self, prefix: Prefix) -> list[Route]:
        return list(self._routes.get(prefix, {}).values())

    def routes(self) -> Iterator[Route]:
        for paths in self._routes.values():
            yield from paths.values()

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._routes

    def clear(self) -> list[Route]:
        """Drop everything (session reset); returns the dropped routes."""
        dropped = list(self.routes())
        self._routes.clear()
        return dropped


@dataclass
class LocRibStats:
    """Always-on decision-process tallies (read by telemetry gauges).

    Plain integer increments inside work the RIB is already doing — cheap
    enough to keep unconditionally, so best-path churn is observable even
    on deployments that never attach a telemetry hub.
    """

    reselects: int = 0
    best_changes: int = 0
    inserts: int = 0
    removals: int = 0


class LocRib:
    """Candidate routes per prefix across all peers, plus the best path.

    Candidates are keyed by ``(peer, path id)`` per prefix so upsert and
    withdrawal are O(1) dict operations instead of candidate-list scans
    (those scans dominated withdrawal processing on full tables).  Insertion
    order is preserved — a replaced candidate moves to the end, matching
    the behaviour of the list-based implementation it replaces — so
    order-sensitive tie-breaking in ``select`` is unchanged.
    """

    def __init__(
        self, select: Callable[[list[RibEntry]], Optional[RibEntry]]
    ) -> None:
        self._select = select
        self._candidates: dict[
            Prefix, dict[tuple[str, Optional[int]], RibEntry]
        ] = {}
        self._best: dict[Prefix, RibEntry] = {}
        self.stats = LocRibStats()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._candidates.values())

    @property
    def prefix_count(self) -> int:
        return len(self._candidates)

    def replace(self, peer: str, route: Route) -> bool:
        """Upsert a peer's candidate; returns True if the best changed."""
        entries = self._candidates.setdefault(route.prefix, {})
        key = (peer, route.path_id)
        # pop-then-set keeps list semantics: a replacement moves to the end.
        entries.pop(key, None)
        entries[key] = RibEntry(peer=peer, route=route)
        self.stats.inserts += 1
        return self._reselect(route.prefix)

    def remove(self, peer: str, prefix: Prefix,
               path_id: Optional[int] = None) -> bool:
        """Remove a peer's candidate; returns True if the best changed."""
        entries = self._candidates.get(prefix)
        if entries is None:
            return False
        if entries.pop((peer, path_id), None) is None:
            return False
        self.stats.removals += 1
        if not entries:
            del self._candidates[prefix]
        return self._reselect(prefix)

    def remove_peer(self, peer: str) -> list[Prefix]:
        """Drop all of a peer's candidates; returns prefixes whose best changed."""
        changed = []
        for prefix in list(self._candidates):
            entries = self._candidates[prefix]
            stale = [key for key in entries if key[0] == peer]
            if not stale:
                continue
            for key in stale:
                del entries[key]
            self.stats.removals += len(stale)
            if not entries:
                del self._candidates[prefix]
            if self._reselect(prefix):
                changed.append(prefix)
        return changed

    def _reselect(self, prefix: Prefix) -> bool:
        self.stats.reselects += 1
        entries = self._candidates.get(prefix)
        new_best = self._select(list(entries.values())) if entries else None
        old_best = self._best.get(prefix)
        if new_best is None:
            if old_best is not None:
                del self._best[prefix]
                self.stats.best_changes += 1
                return True
            return False
        if old_best is not None and old_best.route == new_best.route and (
            old_best.peer == new_best.peer
        ):
            return False
        self._best[prefix] = new_best
        self.stats.best_changes += 1
        return True

    def best(self, prefix: Prefix) -> Optional[RibEntry]:
        return self._best.get(prefix)

    def candidates(self, prefix: Prefix) -> list[RibEntry]:
        entries = self._candidates.get(prefix)
        return list(entries.values()) if entries else []

    def best_routes(self) -> Iterator[RibEntry]:
        yield from self._best.values()

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._candidates


class AdjRibOut:
    """What we have advertised to one peer, keyed by (prefix, path id).

    Diffing the desired against the advertised state yields the minimal
    announce/withdraw set — used both by the speaker's MRAI batching and by
    vBGP's fan-out to experiments.
    """

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._advertised: dict[tuple[Prefix, Optional[int]], Route] = {}

    def __len__(self) -> int:
        return len(self._advertised)

    def advertised(self, prefix: Prefix,
                   path_id: Optional[int] = None) -> Optional[Route]:
        return self._advertised.get((prefix, path_id))

    def record_announce(self, route: Route) -> bool:
        """Record an announcement; returns False if identical already sent."""
        key = (route.prefix, route.path_id)
        if self._advertised.get(key) == route:
            return False
        self._advertised[key] = route
        return True

    def record_withdraw(self, prefix: Prefix,
                        path_id: Optional[int] = None) -> Optional[Route]:
        return self._advertised.pop((prefix, path_id), None)

    def routes(self) -> Iterator[Route]:
        yield from self._advertised.values()

    def keys(self) -> Iterator[tuple[Prefix, Optional[int]]]:
        yield from self._advertised

    def clear(self) -> None:
        """Forget everything advertised (session reset: the next session
        starts from an empty Adj-RIB-Out and re-announces from scratch)."""
        self._advertised.clear()
