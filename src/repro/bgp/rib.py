"""Routing Information Bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

These are the speaker-internal tables of RFC 4271 §3.2. vBGP additionally
keeps one *kernel* table per neighbor (see :mod:`repro.vbgp.tables`); the
classes here are the protocol-level state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro import perf
from repro.bgp.attributes import PathAttributes, Route
from repro.netsim.addr import Prefix


@dataclass(frozen=True)
class RibEntry:
    """A route in a RIB, tagged with the peer it came from."""

    peer: str
    route: Route

    @property
    def prefix(self) -> Prefix:
        return self.route.prefix

    @property
    def path_id(self) -> Optional[int]:
        return self.route.path_id


class AdjRibIn:
    """Routes received from one peer, keyed by (prefix, path id).

    With ADD-PATH inactive every announcement for a prefix implicitly
    replaces the previous one (path id ``None``); with ADD-PATH active the
    peer may maintain several concurrent paths per prefix.
    """

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._routes: dict[Prefix, dict[Optional[int], Route]] = {}

    def __len__(self) -> int:
        return sum(len(paths) for paths in self._routes.values())

    def update(self, route: Route) -> Optional[Route]:
        """Insert/replace; returns the replaced route if any."""
        paths = self._routes.setdefault(route.prefix, {})
        previous = paths.get(route.path_id)
        paths[route.path_id] = route
        return previous

    def withdraw(self, prefix: Prefix,
                 path_id: Optional[int] = None) -> Optional[Route]:
        """Remove; returns the withdrawn route if it existed."""
        paths = self._routes.get(prefix)
        if not paths:
            return None
        removed = paths.pop(path_id, None)
        if not paths:
            del self._routes[prefix]
        return removed

    def routes_for(self, prefix: Prefix) -> list[Route]:
        return list(self._routes.get(prefix, {}).values())

    def routes(self) -> Iterator[Route]:
        for paths in self._routes.values():
            yield from paths.values()

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._routes

    def clear(self) -> list[Route]:
        """Drop everything (session reset); returns the dropped routes."""
        dropped = list(self.routes())
        self._routes.clear()
        return dropped


@dataclass
class LocRibStats:
    """Always-on decision-process tallies (read by telemetry gauges).

    Plain integer increments inside work the RIB is already doing — cheap
    enough to keep unconditionally, so best-path churn is observable even
    on deployments that never attach a telemetry hub.
    """

    reselects: int = 0
    best_changes: int = 0
    inserts: int = 0
    removals: int = 0


# Flyweight pool for Loc-RIB attribute values (DESIGN.md §6g).  Unlike the
# decode-side intern pools in :mod:`repro.bgp.attributes` (gated on
# ``intern_attrs``), this one backs the columnar storage layout itself: the
# per-RIB handle tables key by attribute *equality*, so the pool only decides
# which equal object is retained, never which handle a value maps to.  That
# makes clearing it safe at any time — required for perf.clear_caches().
_RIB_ATTR_POOL: dict[PathAttributes, PathAttributes] = {}
_RIB_ATTR_POOL_CAP = 65536


def _canonical_attributes(attrs: PathAttributes) -> PathAttributes:
    pooled = _RIB_ATTR_POOL.get(attrs)
    if pooled is None:
        if len(_RIB_ATTR_POOL) >= _RIB_ATTR_POOL_CAP:
            _RIB_ATTR_POOL.clear()
        _RIB_ATTR_POOL[attrs] = attrs
        pooled = attrs
    return pooled


perf.register_cache_clearer(_RIB_ATTR_POOL.clear)


class _LocRibBase:
    """Shared Loc-RIB logic over two storage backends (DESIGN.md §6g).

    Subclasses provide the candidate storage via *token* hooks: a token is
    whatever compact value the backend uses to name one stored candidate
    (the ``RibEntry`` itself for the dict backend, a packed int triple for
    the columnar backend).  The best path per prefix is tracked as a token
    and materialized on demand.

    ``select`` contract: the callable must behave as a deterministic left
    fold over the candidate list (RFC 4271 §9.1 style — start at the first
    entry, compare each later entry against the running winner) and must
    return one of the given entries for a non-empty list.  Both selects in
    this codebase (:func:`repro.bgp.decision.best_path` and the speaker's
    local-route-first wrapper) satisfy this.  The ``incremental_bestpath``
    fast paths rely on it: extending a fold by one appended candidate
    equals folding the incumbent with that candidate, so a brand-new
    insert only needs a two-entry select.  Removals and in-place
    replacements of one of several candidates re-run the full fold —
    MED comparison is non-transitive (RFC 4271 §9.1.2.2 note), so
    dropping even a losing candidate can legitimately change the fold
    result, and any shortcut there would diverge from the reference.
    """

    def __init__(
        self, select: Callable[[list[RibEntry]], Optional[RibEntry]]
    ) -> None:
        self._select = select
        self._best_tokens: dict[Prefix, object] = {}
        self.stats = LocRibStats()

    # -- storage hooks -----------------------------------------------------

    def _upsert(self, prefix: Prefix, peer: str, path_id: Optional[int],
                route: Route) -> tuple[bool, object]:
        """Insert/replace (replacement moves to the end); returns
        ``(existed, token)``."""
        raise NotImplementedError

    def _delete(self, prefix: Prefix, peer: str,
                path_id: Optional[int]) -> bool:
        raise NotImplementedError

    def _delete_peer(self, prefix: Prefix, peer: str) -> int:
        """Remove all of a peer's candidates for one prefix; returns count."""
        raise NotImplementedError

    def _count(self, prefix: Prefix) -> int:
        raise NotImplementedError

    def _sole_token(self, prefix: Prefix) -> object:
        """The token of the single remaining candidate (count == 1)."""
        raise NotImplementedError

    def _pairs(self, prefix: Prefix) -> list[tuple[RibEntry, object]]:
        """Materialized ``(entry, token)`` pairs in insertion order."""
        raise NotImplementedError

    def _materialize(self, prefix: Prefix, token: object) -> RibEntry:
        raise NotImplementedError

    def _tokens_equal(self, a: object, b: object) -> bool:
        """Same-best check; must match the reference's
        ``peer == peer and route == route`` comparison."""
        raise NotImplementedError

    # -- public API --------------------------------------------------------

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def prefix_count(self) -> int:
        raise NotImplementedError

    def prefixes(self) -> Iterator[Prefix]:
        raise NotImplementedError

    def replace(self, peer: str, route: Route) -> bool:
        """Upsert a peer's candidate; returns True if the best changed."""
        prefix = route.prefix
        existed, token = self._upsert(prefix, peer, route.path_id, route)
        self.stats.inserts += 1
        if not perf.FLAGS.incremental_bestpath:
            return self._reselect(prefix)
        self.stats.reselects += 1
        old_token = self._best_tokens.get(prefix)
        if self._count(prefix) == 1:
            # Sole candidate: the fold is a no-op, it wins outright.
            return self._commit_best(prefix, old_token, token)
        if not existed and old_token is not None:
            # Brand-new candidate appended at the end: by the fold
            # contract the full refold equals select([incumbent, new]).
            incumbent = self._materialize(prefix, old_token)
            chosen = self._select(
                [incumbent, self._materialize(prefix, token)])
            new_token = old_token if chosen is incumbent else token
            return self._commit_best(prefix, old_token, new_token)
        # Replacement among several candidates (moved to the end) — the
        # fold order changed, so only a full refold is exact.
        return self._refold(prefix)

    def remove(self, peer: str, prefix: Prefix,
               path_id: Optional[int] = None) -> bool:
        """Remove a peer's candidate; returns True if the best changed."""
        if not self._delete(prefix, peer, path_id):
            return False
        self.stats.removals += 1
        if not perf.FLAGS.incremental_bestpath:
            return self._reselect(prefix)
        self.stats.reselects += 1
        return self._reselect_after_removal(prefix)

    def remove_peer(self, peer: str) -> list[Prefix]:
        """Drop all of a peer's candidates; returns prefixes whose best changed."""
        changed = []
        for prefix in list(self.prefixes()):
            dropped = self._delete_peer(prefix, peer)
            if not dropped:
                continue
            self.stats.removals += dropped
            if perf.FLAGS.incremental_bestpath:
                self.stats.reselects += 1
                if self._reselect_after_removal(prefix):
                    changed.append(prefix)
            elif self._reselect(prefix):
                changed.append(prefix)
        return changed

    def _reselect_after_removal(self, prefix: Prefix) -> bool:
        count = self._count(prefix)
        old_token = self._best_tokens.get(prefix)
        if count == 0:
            return self._commit_best(prefix, old_token, None)
        if count == 1:
            return self._commit_best(
                prefix, old_token, self._sole_token(prefix))
        return self._refold(prefix)

    def _reselect(self, prefix: Prefix) -> bool:
        self.stats.reselects += 1
        return self._refold(prefix)

    def _refold(self, prefix: Prefix) -> bool:
        """Reference reselect: full decision fold over every candidate."""
        pairs = self._pairs(prefix)
        old_token = self._best_tokens.get(prefix)
        new_token = None
        if pairs:
            chosen = self._select([entry for entry, _ in pairs])
            if chosen is not None:
                for entry, token in pairs:
                    if entry is chosen:
                        new_token = token
                        break
        return self._commit_best(prefix, old_token, new_token)

    def _commit_best(self, prefix: Prefix, old_token: object,
                     new_token: object) -> bool:
        if new_token is None:
            if old_token is not None:
                del self._best_tokens[prefix]
                self.stats.best_changes += 1
                return True
            return False
        if old_token is not None and self._tokens_equal(old_token, new_token):
            return False
        self._best_tokens[prefix] = new_token
        self.stats.best_changes += 1
        return True

    def best(self, prefix: Prefix) -> Optional[RibEntry]:
        token = self._best_tokens.get(prefix)
        return None if token is None else self._materialize(prefix, token)

    def candidates(self, prefix: Prefix) -> list[RibEntry]:
        return [entry for entry, _ in self._pairs(prefix)]

    def best_routes(self) -> Iterator[RibEntry]:
        for prefix, token in self._best_tokens.items():
            yield self._materialize(prefix, token)


class LocRib(_LocRibBase):
    """Candidate routes per prefix across all peers, plus the best path.

    The dict-backed reference layout: candidates are keyed by
    ``(peer, path id)`` per prefix so upsert and withdrawal are O(1) dict
    operations instead of candidate-list scans (those scans dominated
    withdrawal processing on full tables).  Insertion order is preserved —
    a replaced candidate moves to the end, matching the behaviour of the
    list-based implementation it replaces — so order-sensitive tie-breaking
    in ``select`` is unchanged.

    A best-path token in this backend is the stored :class:`RibEntry`
    itself.  See :func:`make_loc_rib` for the columnar alternative.
    """

    def __init__(
        self, select: Callable[[list[RibEntry]], Optional[RibEntry]]
    ) -> None:
        super().__init__(select)
        self._candidates: dict[
            Prefix, dict[tuple[str, Optional[int]], RibEntry]
        ] = {}

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._candidates.values())

    @property
    def prefix_count(self) -> int:
        return len(self._candidates)

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._candidates

    def _upsert(self, prefix, peer, path_id, route):
        entries = self._candidates.setdefault(prefix, {})
        key = (peer, path_id)
        # pop-then-set keeps list semantics: a replacement moves to the end.
        existed = entries.pop(key, None) is not None
        entry = RibEntry(peer=peer, route=route)
        entries[key] = entry
        return existed, entry

    def _delete(self, prefix, peer, path_id):
        entries = self._candidates.get(prefix)
        if entries is None:
            return False
        if entries.pop((peer, path_id), None) is None:
            return False
        if not entries:
            del self._candidates[prefix]
        return True

    def _delete_peer(self, prefix, peer):
        entries = self._candidates.get(prefix)
        if entries is None:
            return 0
        stale = [key for key in entries if key[0] == peer]
        for key in stale:
            del entries[key]
        if not entries:
            del self._candidates[prefix]
        return len(stale)

    def _count(self, prefix):
        entries = self._candidates.get(prefix)
        return len(entries) if entries else 0

    def _sole_token(self, prefix):
        return next(iter(self._candidates[prefix].values()))

    def _pairs(self, prefix):
        entries = self._candidates.get(prefix)
        if not entries:
            return []
        return [(entry, entry) for entry in entries.values()]

    def _materialize(self, prefix, token):
        return token

    def _tokens_equal(self, a, b):
        return a.peer == b.peer and a.route == b.route

    def candidates(self, prefix: Prefix) -> list[RibEntry]:
        entries = self._candidates.get(prefix)
        return list(entries.values()) if entries else []


class ColumnarLocRib(_LocRibBase):
    """Columnar/flyweight Loc-RIB storage (``rib_columnar``; DESIGN.md §6g).

    Instead of one ``RibEntry``/``Route`` object pair per stored candidate
    (~300 bytes each before attribute sharing), each prefix maps to a flat
    tuple of ``(peer id, path id, attr handle)`` int triples in insertion
    order.  Peers and attribute values are interned per RIB: the handle
    tables key by *equality*, so equal attributes always share one handle
    and a best-change check is plain triple comparison — exactly the
    reference's ``peer == peer and route == route``.  ``RibEntry`` objects
    are materialized on demand from the columns; callers never observe the
    packed layout.

    ``path id`` ``None`` is encoded as ``-1`` (wire path ids are unsigned,
    so the sentinel cannot collide with a real id, including the valid
    path id ``0``).
    """

    def __init__(
        self, select: Callable[[list[RibEntry]], Optional[RibEntry]]
    ) -> None:
        super().__init__(select)
        self._cols: dict[Prefix, tuple[int, ...]] = {}
        self._peer_ids: dict[str, int] = {}
        self._peer_names: list[str] = []
        self._attr_handles: dict[PathAttributes, int] = {}
        self._attr_values: list[PathAttributes] = []

    def __len__(self) -> int:
        return sum(len(cols) for cols in self._cols.values()) // 3

    @property
    def prefix_count(self) -> int:
        return len(self._cols)

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._cols

    def _peer_id(self, peer: str) -> int:
        pid = self._peer_ids.get(peer)
        if pid is None:
            pid = len(self._peer_names)
            self._peer_ids[peer] = pid
            self._peer_names.append(peer)
        return pid

    def _attr_handle(self, attrs: PathAttributes) -> int:
        handle = self._attr_handles.get(attrs)
        if handle is None:
            attrs = _canonical_attributes(attrs)
            handle = len(self._attr_values)
            self._attr_handles[attrs] = handle
            self._attr_values.append(attrs)
        return handle

    def _upsert(self, prefix, peer, path_id, route):
        pid = self._peer_id(peer)
        code = -1 if path_id is None else path_id
        handle = self._attr_handle(route.attributes)
        triple = (pid, code, handle)
        cols = self._cols.get(prefix)
        if cols is None:
            self._cols[prefix] = triple
            return False, triple
        for i in range(0, len(cols), 3):
            if cols[i] == pid and cols[i + 1] == code:
                # pop-then-append: a replacement moves to the end.
                self._cols[prefix] = cols[:i] + cols[i + 3:] + triple
                return True, triple
        self._cols[prefix] = cols + triple
        return False, triple

    def _delete(self, prefix, peer, path_id):
        cols = self._cols.get(prefix)
        if cols is None:
            return False
        pid = self._peer_ids.get(peer)
        if pid is None:
            return False
        code = -1 if path_id is None else path_id
        for i in range(0, len(cols), 3):
            if cols[i] == pid and cols[i + 1] == code:
                rest = cols[:i] + cols[i + 3:]
                if rest:
                    self._cols[prefix] = rest
                else:
                    del self._cols[prefix]
                return True
        return False

    def _delete_peer(self, prefix, peer):
        pid = self._peer_ids.get(peer)
        if pid is None:
            return 0
        cols = self._cols.get(prefix)
        if cols is None:
            return 0
        kept = tuple(
            value
            for i in range(0, len(cols), 3) if cols[i] != pid
            for value in cols[i:i + 3]
        )
        dropped = (len(cols) - len(kept)) // 3
        if not dropped:
            return 0
        if kept:
            self._cols[prefix] = kept
        else:
            del self._cols[prefix]
        return dropped

    def _count(self, prefix):
        cols = self._cols.get(prefix)
        return len(cols) // 3 if cols else 0

    def _sole_token(self, prefix):
        return self._cols[prefix]

    def _pairs(self, prefix):
        cols = self._cols.get(prefix)
        if not cols:
            return []
        return [
            (self._materialize(prefix, cols[i:i + 3]), cols[i:i + 3])
            for i in range(0, len(cols), 3)
        ]

    def _materialize(self, prefix, token):
        pid, code, handle = token
        return RibEntry(
            peer=self._peer_names[pid],
            route=Route(
                prefix=prefix,
                attributes=self._attr_values[handle],
                path_id=None if code == -1 else code,
            ),
        )

    def _tokens_equal(self, a, b):
        return a == b


def make_loc_rib(
    select: Callable[[list[RibEntry]], Optional[RibEntry]],
) -> _LocRibBase:
    """Build a Loc-RIB; the storage backend is chosen at construction time
    by ``perf.FLAGS.rib_columnar`` (like the ``stride_lpm`` backend choice
    in :class:`repro.netsim.lpm.LpmTable`)."""
    if perf.FLAGS.rib_columnar:
        return ColumnarLocRib(select)
    return LocRib(select)


class AdjRibOut:
    """What we have advertised to one peer, keyed by (prefix, path id).

    Diffing the desired against the advertised state yields the minimal
    announce/withdraw set — used both by the speaker's MRAI batching and by
    vBGP's fan-out to experiments.
    """

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._advertised: dict[tuple[Prefix, Optional[int]], Route] = {}

    def __len__(self) -> int:
        return len(self._advertised)

    def advertised(self, prefix: Prefix,
                   path_id: Optional[int] = None) -> Optional[Route]:
        return self._advertised.get((prefix, path_id))

    def record_announce(self, route: Route) -> bool:
        """Record an announcement; returns False if identical already sent."""
        key = (route.prefix, route.path_id)
        if self._advertised.get(key) == route:
            return False
        self._advertised[key] = route
        return True

    def record_withdraw(self, prefix: Prefix,
                        path_id: Optional[int] = None) -> Optional[Route]:
        return self._advertised.pop((prefix, path_id), None)

    def routes(self) -> Iterator[Route]:
        yield from self._advertised.values()

    def keys(self) -> Iterator[tuple[Prefix, Optional[int]]]:
        yield from self._advertised

    def clear(self) -> None:
        """Forget everything advertised (session reset: the next session
        starts from an empty Adj-RIB-Out and re-announces from scratch)."""
        self._advertised.clear()
