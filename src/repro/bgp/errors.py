"""BGP error taxonomy (RFC 4271 §6) used by the codec and FSM."""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    MESSAGE_HEADER = 1
    OPEN_MESSAGE = 2
    UPDATE_MESSAGE = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6


class HeaderSubcode(enum.IntEnum):
    CONNECTION_NOT_SYNCHRONIZED = 1
    BAD_MESSAGE_LENGTH = 2
    BAD_MESSAGE_TYPE = 3


class OpenSubcode(enum.IntEnum):
    UNSUPPORTED_VERSION = 1
    BAD_PEER_AS = 2
    BAD_BGP_IDENTIFIER = 3
    UNSUPPORTED_OPTIONAL_PARAMETER = 4
    UNACCEPTABLE_HOLD_TIME = 6


class UpdateSubcode(enum.IntEnum):
    MALFORMED_ATTRIBUTE_LIST = 1
    UNRECOGNIZED_WELLKNOWN_ATTRIBUTE = 2
    MISSING_WELLKNOWN_ATTRIBUTE = 3
    ATTRIBUTE_FLAGS_ERROR = 4
    ATTRIBUTE_LENGTH_ERROR = 5
    INVALID_ORIGIN = 6
    INVALID_NEXT_HOP = 8
    OPTIONAL_ATTRIBUTE_ERROR = 9
    INVALID_NETWORK_FIELD = 10
    MALFORMED_AS_PATH = 11


class CeaseSubcode(enum.IntEnum):
    MAX_PREFIXES_REACHED = 1
    ADMIN_SHUTDOWN = 2
    PEER_DECONFIGURED = 3
    ADMIN_RESET = 4
    CONNECTION_REJECTED = 5
    CONFIG_CHANGE = 6


class BgpError(Exception):
    """Base class for all BGP protocol errors."""


class NotificationError(BgpError):
    """An error that must be reported to the peer via NOTIFICATION.

    The session layer catches this, sends the NOTIFICATION, and tears the
    session down — the behaviour the paper's §7.3 anecdote (CVE-2019-5892,
    sessions reset by a standards-compliant announcement) hinges on.
    """

    def __init__(self, code: ErrorCode, subcode: int = 0,
                 data: bytes = b"", message: str = "") -> None:
        super().__init__(message or f"NOTIFICATION {code.name}/{subcode}")
        self.code = code
        self.subcode = subcode
        self.data = data
