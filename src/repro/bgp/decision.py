"""The BGP best-path decision process (RFC 4271 §9.1, standard tie-breaks).

The comparison operates on :class:`~repro.bgp.rib.RibEntry` objects plus a
per-peer context supplying the attributes the algorithm needs that are not
carried in the route itself (iBGP vs eBGP, peer router id, peer address).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bgp.attributes import Route
from repro.bgp.rib import RibEntry
from repro.netsim.addr import IPv4Address

DEFAULT_LOCAL_PREF = 100


@dataclass(frozen=True)
class PeerContext:
    """Decision-relevant facts about the peer a route was learned from."""

    is_ebgp: bool = True
    router_id: IPv4Address = IPv4Address(0)
    peer_address: IPv4Address = IPv4Address(0)


def compare_routes(
    a: Route,
    b: Route,
    context_a: Optional[PeerContext] = None,
    context_b: Optional[PeerContext] = None,
) -> int:
    """Return <0 if ``a`` is preferred, >0 if ``b`` is, 0 if tied.

    Steps: local-pref, AS-path length, origin, MED (compared when both
    routes enter from the same neighboring AS), eBGP-over-iBGP, router id,
    peer address.
    """
    context_a = context_a or PeerContext()
    context_b = context_b or PeerContext()

    pref_a = a.attributes.local_pref
    pref_b = b.attributes.local_pref
    pref_a = DEFAULT_LOCAL_PREF if pref_a is None else pref_a
    pref_b = DEFAULT_LOCAL_PREF if pref_b is None else pref_b
    if pref_a != pref_b:
        return -1 if pref_a > pref_b else 1

    len_a = a.as_path.length
    len_b = b.as_path.length
    if len_a != len_b:
        return -1 if len_a < len_b else 1

    if a.attributes.origin != b.attributes.origin:
        return -1 if a.attributes.origin < b.attributes.origin else 1

    if a.as_path.first_as == b.as_path.first_as:
        med_a = a.attributes.med or 0
        med_b = b.attributes.med or 0
        if med_a != med_b:
            return -1 if med_a < med_b else 1

    if context_a.is_ebgp != context_b.is_ebgp:
        return -1 if context_a.is_ebgp else 1

    if context_a.router_id != context_b.router_id:
        return -1 if context_a.router_id < context_b.router_id else 1

    if context_a.peer_address != context_b.peer_address:
        return -1 if context_a.peer_address < context_b.peer_address else 1

    return 0


def displaces(
    candidate: RibEntry,
    incumbent: RibEntry,
    contexts: Optional[dict[str, PeerContext]] = None,
) -> bool:
    """One fold step of :func:`best_path`: does ``candidate`` beat the
    running ``incumbent``?

    Exposed separately because the Loc-RIB's ``incremental_bestpath``
    fast path (DESIGN.md §6g) is exactly one such step: appending a new
    candidate to the fold compares it against the incumbent only.  Note
    that the relation is *not* transitive — the MED step only applies
    between routes entering from the same neighboring AS — which is why
    incremental shortcuts are limited to fold *extensions*; removals and
    reorderings must re-run the whole fold from the first candidate.
    """
    contexts = contexts or {}
    outcome = compare_routes(
        candidate.route,
        incumbent.route,
        contexts.get(candidate.peer),
        contexts.get(incumbent.peer),
    )
    return outcome < 0 or (outcome == 0 and candidate.peer < incumbent.peer)


def best_path(
    entries: Sequence[RibEntry],
    contexts: Optional[dict[str, PeerContext]] = None,
) -> Optional[RibEntry]:
    """Select the best entry; deterministic for equal candidates.

    A left fold over ``entries`` in order (the ``select`` contract the
    Loc-RIB's incremental reselect relies on — see
    :class:`repro.bgp.rib._LocRibBase`).
    """
    if not entries:
        return None
    contexts = contexts or {}
    best = entries[0]
    for candidate in entries[1:]:
        if displaces(candidate, best, contexts):
            best = candidate
    return best
