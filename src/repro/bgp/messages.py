"""BGP-4 wire formats: OPEN, UPDATE, NOTIFICATION, KEEPALIVE.

Real byte-level encode/decode, including the extensions PEERING relies on:

* capabilities advertisement (RFC 5492) in OPEN,
* ADD-PATH (RFC 7911): four-byte path identifiers in NLRI and withdrawn
  routes when negotiated,
* 4-octet ASNs (RFC 6793): this implementation always negotiates the
  capability and encodes AS_PATH with 4-byte ASNs (the AS_TRANS dance for
  legacy peers is not needed inside the reproduction and is documented as
  out of scope),
* communities (RFC 1997) and large communities (RFC 8092),
* pass-through of unknown optional transitive attributes with the partial
  bit set — the attribute class PEERING's capability framework gates.

Sessions exchange these exact bytes over the simulated transport, so the
codec is on the hot path of every benchmark.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from repro import perf
from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    LargeCommunity,
    Origin,
    PathAttributes,
    Route,
    SegmentType,
    UnknownAttribute,
    intern_as_path,
    intern_attributes,
)
from repro.bgp.errors import (
    ErrorCode,
    HeaderSubcode,
    NotificationError,
    OpenSubcode,
    UpdateSubcode,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix

MARKER = b"\xff" * 16
HEADER_SIZE = 19
MAX_MESSAGE_SIZE = 4096
BGP_VERSION = 4

MSG_OPEN = 1
MSG_UPDATE = 2
MSG_NOTIFICATION = 3
MSG_KEEPALIVE = 4
MSG_ROUTE_REFRESH = 5

ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_MED = 4
ATTR_LOCAL_PREF = 5
ATTR_ATOMIC_AGGREGATE = 6
ATTR_AGGREGATOR = 7
ATTR_COMMUNITIES = 8
ATTR_LARGE_COMMUNITIES = 32

CAP_MULTIPROTOCOL = 1
CAP_GRACEFUL_RESTART = 64
CAP_FOUR_OCTET_AS = 65
CAP_ADD_PATH = 69

AFI_IPV4 = 1
SAFI_UNICAST = 1

ADDPATH_RECEIVE = 1
ADDPATH_SEND = 2
ADDPATH_BOTH = 3

FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED = 0x10


# ---------------------------------------------------------------------------
# Capabilities
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MultiprotocolCapability:
    afi: int = AFI_IPV4
    safi: int = SAFI_UNICAST

    code = CAP_MULTIPROTOCOL

    def encode_value(self) -> bytes:
        return struct.pack("!HBB", self.afi, 0, self.safi)


@dataclass(frozen=True)
class FourOctetAsCapability:
    asn: int = 0

    code = CAP_FOUR_OCTET_AS

    def encode_value(self) -> bytes:
        return struct.pack("!I", self.asn)


@dataclass(frozen=True)
class AddPathCapability:
    """ADD-PATH capability for IPv4 unicast."""

    mode: int = ADDPATH_BOTH

    code = CAP_ADD_PATH

    def encode_value(self) -> bytes:
        return struct.pack("!HBB", AFI_IPV4, SAFI_UNICAST, self.mode)

    @property
    def can_send(self) -> bool:
        return bool(self.mode & ADDPATH_SEND)

    @property
    def can_receive(self) -> bool:
        return bool(self.mode & ADDPATH_RECEIVE)


@dataclass(frozen=True)
class GracefulRestartCapability:
    """Graceful Restart (RFC 4724) for IPv4 unicast.

    ``restart_time`` is how long the receiver should retain this peer's
    routes (marked stale) after the session drops; ``restarted`` is the
    R-flag ("I just restarted"); ``forwarding`` is the per-AFI F-flag
    ("my forwarding state survived the restart").
    """

    restart_time: int = 120
    restarted: bool = False
    forwarding: bool = True

    code = CAP_GRACEFUL_RESTART

    RESTART_FLAG = 0x8
    FORWARDING_FLAG = 0x80

    def encode_value(self) -> bytes:
        flags = self.RESTART_FLAG if self.restarted else 0
        head = struct.pack(
            "!H", (flags << 12) | (self.restart_time & 0x0FFF)
        )
        afi_flags = self.FORWARDING_FLAG if self.forwarding else 0
        return head + struct.pack("!HBB", AFI_IPV4, SAFI_UNICAST, afi_flags)


@dataclass(frozen=True)
class UnknownCapability:
    code: int
    value: bytes = b""

    def encode_value(self) -> bytes:
        return self.value


Capability = Union[
    MultiprotocolCapability,
    FourOctetAsCapability,
    AddPathCapability,
    GracefulRestartCapability,
    UnknownCapability,
]


def _decode_capability(code: int, value: bytes) -> Capability:
    if code == CAP_MULTIPROTOCOL and len(value) == 4:
        afi, _reserved, safi = struct.unpack("!HBB", value)
        return MultiprotocolCapability(afi=afi, safi=safi)
    if code == CAP_FOUR_OCTET_AS and len(value) == 4:
        return FourOctetAsCapability(asn=struct.unpack("!I", value)[0])
    if code == CAP_ADD_PATH and len(value) % 4 == 0 and value:
        afi, safi, mode = struct.unpack("!HBB", value[:4])
        if afi == AFI_IPV4 and safi == SAFI_UNICAST:
            return AddPathCapability(mode=mode)
    if code == CAP_GRACEFUL_RESTART and len(value) >= 2 and (
        (len(value) - 2) % 4 == 0
    ):
        (head,) = struct.unpack("!H", value[:2])
        restarted = bool(
            (head >> 12) & GracefulRestartCapability.RESTART_FLAG
        )
        restart_time = head & 0x0FFF
        forwarding = False
        offset = 2
        while offset < len(value):
            afi, safi, afi_flags = struct.unpack_from("!HBB", value, offset)
            offset += 4
            if afi == AFI_IPV4 and safi == SAFI_UNICAST:
                forwarding = bool(
                    afi_flags & GracefulRestartCapability.FORWARDING_FLAG
                )
        return GracefulRestartCapability(
            restart_time=restart_time,
            restarted=restarted,
            forwarding=forwarding,
        )
    return UnknownCapability(code=code, value=value)


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpenMessage:
    asn: int
    hold_time: int
    bgp_id: IPv4Address
    capabilities: tuple[Capability, ...] = ()

    AS_TRANS = 23456

    def encode(self) -> bytes:
        caps = b""
        for capability in self.capabilities:
            value = capability.encode_value()
            caps += struct.pack("!BB", capability.code, len(value)) + value
        params = b""
        if caps:
            params = struct.pack("!BB", 2, len(caps)) + caps
        wire_asn = self.asn if self.asn < (1 << 16) else self.AS_TRANS
        body = struct.pack(
            "!BHH4sB",
            BGP_VERSION,
            wire_asn,
            self.hold_time,
            self.bgp_id.packed(),
            len(params),
        ) + params
        return _wrap(MSG_OPEN, body)

    @classmethod
    def decode(cls, body: bytes) -> "OpenMessage":
        if len(body) < 10:
            raise NotificationError(
                ErrorCode.OPEN_MESSAGE, OpenSubcode.UNSUPPORTED_VERSION,
                message="truncated OPEN",
            )
        version, asn, hold_time, bgp_id, param_len = struct.unpack(
            "!BHH4sB", body[:10]
        )
        if version != BGP_VERSION:
            raise NotificationError(
                ErrorCode.OPEN_MESSAGE, OpenSubcode.UNSUPPORTED_VERSION,
                data=struct.pack("!H", BGP_VERSION),
            )
        if hold_time in (1, 2):
            raise NotificationError(
                ErrorCode.OPEN_MESSAGE, OpenSubcode.UNACCEPTABLE_HOLD_TIME
            )
        if 10 + param_len > len(body):
            raise NotificationError(
                ErrorCode.OPEN_MESSAGE,
                OpenSubcode.UNSUPPORTED_OPTIONAL_PARAMETER,
                message="optional-parameter block overruns OPEN body",
            )
        params = body[10:10 + param_len]
        capabilities: list[Capability] = []
        offset = 0
        while offset < len(params):
            if offset + 2 > len(params):
                raise NotificationError(
                    ErrorCode.OPEN_MESSAGE,
                    OpenSubcode.UNSUPPORTED_OPTIONAL_PARAMETER,
                )
            param_type, length = struct.unpack_from("!BB", params, offset)
            offset += 2
            if offset + length > len(params):
                raise NotificationError(
                    ErrorCode.OPEN_MESSAGE,
                    OpenSubcode.UNSUPPORTED_OPTIONAL_PARAMETER,
                    message="optional parameter value truncated",
                )
            value = params[offset:offset + length]
            offset += length
            if param_type != 2:
                continue
            cap_offset = 0
            while cap_offset < len(value):
                if cap_offset + 2 > len(value):
                    raise NotificationError(
                        ErrorCode.OPEN_MESSAGE,
                        OpenSubcode.UNSUPPORTED_OPTIONAL_PARAMETER,
                        message="capability header truncated",
                    )
                code, cap_len = struct.unpack_from("!BB", value, cap_offset)
                cap_offset += 2
                if cap_offset + cap_len > len(value):
                    raise NotificationError(
                        ErrorCode.OPEN_MESSAGE,
                        OpenSubcode.UNSUPPORTED_OPTIONAL_PARAMETER,
                        message="capability value truncated",
                    )
                cap_value = value[cap_offset:cap_offset + cap_len]
                cap_offset += cap_len
                capabilities.append(_decode_capability(code, cap_value))
        real_asn = asn
        for capability in capabilities:
            if isinstance(capability, FourOctetAsCapability):
                real_asn = capability.asn
        return cls(
            asn=real_asn,
            hold_time=hold_time,
            bgp_id=IPv4Address.from_packed(bgp_id),
            capabilities=tuple(capabilities),
        )

    def find_addpath(self) -> Optional[AddPathCapability]:
        for capability in self.capabilities:
            if isinstance(capability, AddPathCapability):
                return capability
        return None

    def find_graceful_restart(self) -> Optional[GracefulRestartCapability]:
        for capability in self.capabilities:
            if isinstance(capability, GracefulRestartCapability):
                return capability
        return None


@dataclass(frozen=True)
class KeepaliveMessage:
    def encode(self) -> bytes:
        return _wrap(MSG_KEEPALIVE, b"")


@dataclass(frozen=True)
class NotificationMessage:
    code: int
    subcode: int = 0
    data: bytes = b""

    def encode(self) -> bytes:
        return _wrap(
            MSG_NOTIFICATION,
            struct.pack("!BB", self.code, self.subcode) + self.data,
        )

    @classmethod
    def decode(cls, body: bytes) -> "NotificationMessage":
        if len(body) < 2:
            raise NotificationError(
                ErrorCode.MESSAGE_HEADER, HeaderSubcode.BAD_MESSAGE_LENGTH
            )
        code, subcode = struct.unpack("!BB", body[:2])
        return cls(code=code, subcode=subcode, data=body[2:])


@dataclass(frozen=True)
class RouteRefreshMessage:
    """ROUTE-REFRESH (RFC 2918): ask the peer to resend its Adj-RIB-Out.

    Experiments use this for "soft resets" — re-learning the full table
    after a local policy change without bouncing the session.
    """

    afi: int = AFI_IPV4
    safi: int = SAFI_UNICAST

    def encode(self) -> bytes:
        return _wrap(
            MSG_ROUTE_REFRESH, struct.pack("!HBB", self.afi, 0, self.safi)
        )

    @classmethod
    def decode(cls, body: bytes) -> "RouteRefreshMessage":
        if len(body) != 4:
            raise NotificationError(
                ErrorCode.MESSAGE_HEADER, HeaderSubcode.BAD_MESSAGE_LENGTH
            )
        afi, _reserved, safi = struct.unpack("!HBB", body)
        return cls(afi=afi, safi=safi)


@dataclass(frozen=True)
class UpdateMessage:
    """An UPDATE: withdrawals and/or one attribute set with its NLRI.

    ``nlri`` and ``withdrawn`` carry ``(prefix, path_id)`` pairs; path ids
    are only encoded when the session negotiated ADD-PATH.
    """

    attributes: Optional[PathAttributes] = None
    nlri: tuple[tuple[IPv4Prefix, Optional[int]], ...] = ()
    withdrawn: tuple[tuple[IPv4Prefix, Optional[int]], ...] = ()

    @classmethod
    def announce(cls, routes: Sequence[Route]) -> "UpdateMessage":
        """Build an UPDATE for routes sharing one attribute set."""
        if not routes:
            raise ValueError("announce() needs at least one route")
        attrs = routes[0].attributes
        # Identity-first comparison: batched fan-out passes routes that
        # share one interned attribute object, so the common case skips the
        # field-by-field dataclass equality entirely.
        if any(
            route.attributes is not attrs and route.attributes != attrs
            for route in routes
        ):
            raise ValueError("routes in one UPDATE must share attributes")
        return cls(
            attributes=attrs,
            nlri=tuple((route.prefix, route.path_id) for route in routes),
        )

    @classmethod
    def withdraw(cls, routes: Sequence[Route]) -> "UpdateMessage":
        return cls(
            withdrawn=tuple((route.prefix, route.path_id) for route in routes)
        )

    @classmethod
    def end_of_rib(cls) -> "UpdateMessage":
        """The End-of-RIB marker (RFC 4724 §2): an empty UPDATE."""
        return cls()

    @property
    def is_end_of_rib(self) -> bool:
        return (
            self.attributes is None and not self.nlri and not self.withdrawn
        )

    def routes(self) -> list[Route]:
        """Expand announced NLRI back into Route objects."""
        if self.attributes is None:
            return []
        return [
            Route(prefix=prefix, attributes=self.attributes, path_id=path_id)
            for prefix, path_id in self.nlri
        ]

    # -- wire format ------------------------------------------------------

    def encode(self, addpath: bool = False) -> bytes:
        """Encode to wire bytes; memoized per (message, addpath).

        ADD-PATH fan-out sends the *same* UpdateMessage object to E
        experiment sessions; with the ``encode_memo`` perf flag on, the
        bytes are computed once.  The cache lives in the (frozen)
        instance's ``__dict__`` so it is garbage-collected with the
        message and invisible to ``__eq__``/``__hash__``.
        """
        memo = perf.FLAGS.encode_memo
        if memo:
            cached = self.__dict__.get("_wire_cache")
            if cached is not None:
                wire = cached.get(addpath)
                if wire is not None:
                    return wire
        if perf.FLAGS.encode_zero_copy:
            wire = self._encode_into_buffer(addpath)
        else:
            withdrawn = b"".join(
                [_encode_nlri(prefix, path_id, addpath)
                 for prefix, path_id in self.withdrawn]
            )
            attrs = _encode_attributes(self.attributes) if self.nlri else b""
            nlri = b"".join(
                [_encode_nlri(prefix, path_id, addpath)
                 for prefix, path_id in self.nlri]
            )
            body = (
                struct.pack("!H", len(withdrawn)) + withdrawn
                + struct.pack("!H", len(attrs)) + attrs
                + nlri
            )
            wire = _wrap(MSG_UPDATE, body)
        if memo:
            cached = self.__dict__.get("_wire_cache")
            if cached is None:
                cached = {}
                object.__setattr__(self, "_wire_cache", cached)
            cached[addpath] = wire
        return wire

    def _encode_into_buffer(self, addpath: bool) -> bytes:
        """Zero-copy batch encode (``encode_zero_copy``; DESIGN.md §6g).

        Writes marker, header and both NLRI runs into one reusable
        module-level ``bytearray``, then patches the three length fields
        in place — no per-prefix ``bytes`` concatenation and no final
        body join.  The buffer's lifecycle is strictly within this call:
        it is reset on entry, and only an immutable ``bytes`` snapshot
        escapes, so re-entrancy aside (the encoder never recurses) the
        shared buffer is safe.  Byte-identical to the reference path.
        """
        buf = _ENCODE_BUFFER
        del buf[:]
        buf += MARKER
        buf += b"\x00\x00"          # total length, patched below
        buf.append(MSG_UPDATE)
        buf += b"\x00\x00"          # withdrawn-routes length, patched below
        _extend_nlri_run(buf, self.withdrawn, addpath)
        struct.pack_into("!H", buf, HEADER_SIZE, len(buf) - HEADER_SIZE - 2)
        attrs = _encode_attributes(self.attributes) if self.nlri else b""
        buf += struct.pack("!H", len(attrs))
        buf += attrs
        _extend_nlri_run(buf, self.nlri, addpath)
        length = len(buf)
        if length > MAX_MESSAGE_SIZE:
            raise NotificationError(
                ErrorCode.MESSAGE_HEADER, HeaderSubcode.BAD_MESSAGE_LENGTH,
                message=f"message too large: {length}",
            )
        struct.pack_into("!H", buf, 16, length)
        return bytes(buf)

    @classmethod
    def decode(cls, body: bytes, addpath: bool = False) -> "UpdateMessage":
        if len(body) < 4:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_ATTRIBUTE_LIST
            )
        (withdrawn_len,) = struct.unpack("!H", body[:2])
        offset = 2
        withdrawn = _decode_nlri_block(
            body[offset:offset + withdrawn_len], addpath
        )
        offset += withdrawn_len
        if offset + 2 > len(body):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_ATTRIBUTE_LIST
            )
        (attrs_len,) = struct.unpack("!H", body[offset:offset + 2])
        offset += 2
        if offset + attrs_len > len(body):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_ATTRIBUTE_LIST
            )
        attrs_data = body[offset:offset + attrs_len]
        offset += attrs_len
        nlri = _decode_nlri_block(body[offset:], addpath)
        attributes = _decode_attributes(attrs_data) if attrs_data else None
        if nlri and attributes is None:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE,
                UpdateSubcode.MISSING_WELLKNOWN_ATTRIBUTE,
            )
        if nlri and attributes is not None and attributes.next_hop is None:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE,
                UpdateSubcode.MISSING_WELLKNOWN_ATTRIBUTE,
                data=bytes([ATTR_NEXT_HOP]),
            )
        return cls(
            attributes=attributes,
            nlri=tuple(nlri),
            withdrawn=tuple(withdrawn),
        )


BgpMessage = Union[OpenMessage, UpdateMessage, NotificationMessage,
                   KeepaliveMessage, RouteRefreshMessage]


# ---------------------------------------------------------------------------
# NLRI helpers
# ---------------------------------------------------------------------------


# Memoized per-prefix NLRI bytes (length octet + truncated network).  The
# same prefixes churn over and over (flaps), and the encoding is pure.
_NLRI_WIRE_CACHE: dict[IPv4Prefix, bytes] = {}
_NLRI_WIRE_CACHE_CAP = 65536


def _prefix_wire(prefix: IPv4Prefix) -> bytes:
    nbytes = (prefix.length + 7) // 8
    return bytes([prefix.length]) + prefix.network.packed()[:nbytes]


# The reusable zero-copy encode buffer (``encode_zero_copy``).  One
# module-level bytearray, reset at the start of each UPDATE encode; see
# UpdateMessage._encode_into_buffer for the lifecycle argument.
_ENCODE_BUFFER = bytearray()


def _clear_encode_buffer() -> None:
    del _ENCODE_BUFFER[:]


perf.register_cache_clearer(_clear_encode_buffer)


def _extend_nlri_run(buf: bytearray,
                     pairs: Sequence[tuple[IPv4Prefix, Optional[int]]],
                     addpath: bool) -> None:
    """Append an NLRI run in place (zero-copy path).

    Shares ``_NLRI_WIRE_CACHE`` with the reference encoder when
    ``encode_memo`` is on, so the two flags compose.
    """
    memo = perf.FLAGS.encode_memo
    for prefix, path_id in pairs:
        if addpath:
            buf += struct.pack("!I", path_id or 0)
        if memo:
            wire = _NLRI_WIRE_CACHE.get(prefix)
            if wire is None:
                if len(_NLRI_WIRE_CACHE) >= _NLRI_WIRE_CACHE_CAP:
                    _NLRI_WIRE_CACHE.clear()
                wire = _prefix_wire(prefix)
                _NLRI_WIRE_CACHE[prefix] = wire
            buf += wire
        else:
            nbytes = (prefix.length + 7) // 8
            buf.append(prefix.length)
            buf += prefix.network.packed()[:nbytes]


def _encode_nlri(prefix: IPv4Prefix, path_id: Optional[int],
                 addpath: bool) -> bytes:
    if perf.FLAGS.encode_memo:
        wire = _NLRI_WIRE_CACHE.get(prefix)
        if wire is None:
            if len(_NLRI_WIRE_CACHE) >= _NLRI_WIRE_CACHE_CAP:
                _NLRI_WIRE_CACHE.clear()
            wire = _prefix_wire(prefix)
            _NLRI_WIRE_CACHE[prefix] = wire
    else:
        wire = _prefix_wire(prefix)
    if addpath:
        return struct.pack("!I", path_id or 0) + wire
    return wire


def _decode_nlri_block(
    data: bytes, addpath: bool
) -> list[tuple[IPv4Prefix, Optional[int]]]:
    result: list[tuple[IPv4Prefix, Optional[int]]] = []
    offset = 0
    while offset < len(data):
        path_id: Optional[int] = None
        if addpath:
            if offset + 4 > len(data):
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.INVALID_NETWORK_FIELD,
                )
            (path_id,) = struct.unpack_from("!I", data, offset)
            offset += 4
        if offset >= len(data):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.INVALID_NETWORK_FIELD
            )
        length = data[offset]
        offset += 1
        if length > 32:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.INVALID_NETWORK_FIELD
            )
        nbytes = (length + 7) // 8
        if offset + nbytes > len(data):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.INVALID_NETWORK_FIELD
            )
        raw = data[offset:offset + nbytes] + b"\x00" * (4 - nbytes)
        offset += nbytes
        value = int.from_bytes(raw, "big")
        mask = ((1 << length) - 1) << (32 - length) if length else 0
        if value & ~mask & 0xFFFFFFFF:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.INVALID_NETWORK_FIELD
            )
        result.append((IPv4Prefix(IPv4Address(value), length), path_id))
    return result


# ---------------------------------------------------------------------------
# Attribute encode/decode
# ---------------------------------------------------------------------------


def _attr(flags: int, type_code: int, value: bytes) -> bytes:
    if len(value) > 255:
        return struct.pack("!BBH", flags | FLAG_EXTENDED, type_code,
                           len(value)) + value
    return struct.pack("!BBB", flags, type_code, len(value)) + value


# Memoized attribute encodings, keyed by the (frozen, hashable)
# PathAttributes value.  Real churn concentrates on a small set of
# attribute combinations, so the hit rate is high; fan-out to E
# experiments encodes each set once instead of E times.
_ATTR_WIRE_CACHE: dict[PathAttributes, bytes] = {}
_ATTR_WIRE_CACHE_CAP = 8192


def _clear_wire_caches() -> None:
    _ATTR_WIRE_CACHE.clear()
    _NLRI_WIRE_CACHE.clear()


perf.register_cache_clearer(_clear_wire_caches)


def _encode_attributes(attributes: Optional[PathAttributes]) -> bytes:
    if attributes is None:
        return b""
    if perf.FLAGS.encode_memo:
        cached = _ATTR_WIRE_CACHE.get(attributes)
        if cached is not None:
            return cached
    out = _encode_attributes_uncached(attributes)
    if perf.FLAGS.encode_memo:
        if len(_ATTR_WIRE_CACHE) >= _ATTR_WIRE_CACHE_CAP:
            _ATTR_WIRE_CACHE.clear()
        _ATTR_WIRE_CACHE[attributes] = out
    return out


def attributes_wire_length(attributes: Optional[PathAttributes]) -> int:
    """Encoded length of an attribute set (used for UPDATE packing)."""
    return len(_encode_attributes(attributes))


def _encode_attributes_uncached(attributes: PathAttributes) -> bytes:
    parts = [_attr(FLAG_TRANSITIVE, ATTR_ORIGIN, bytes([attributes.origin]))]
    path_parts = []
    for segment in attributes.as_path.segments:
        path_parts.append(
            struct.pack("!BB", segment.kind, len(segment.asns))
        )
        path_parts.append(
            struct.pack(f"!{len(segment.asns)}I", *segment.asns)
        )
    parts.append(_attr(FLAG_TRANSITIVE, ATTR_AS_PATH, b"".join(path_parts)))
    if attributes.next_hop is not None:
        parts.append(_attr(
            FLAG_TRANSITIVE, ATTR_NEXT_HOP, attributes.next_hop.packed()
        ))
    if attributes.med is not None:
        parts.append(_attr(
            FLAG_OPTIONAL, ATTR_MED, struct.pack("!I", attributes.med)
        ))
    if attributes.local_pref is not None:
        parts.append(_attr(
            FLAG_TRANSITIVE, ATTR_LOCAL_PREF,
            struct.pack("!I", attributes.local_pref),
        ))
    if attributes.atomic_aggregate:
        parts.append(_attr(FLAG_TRANSITIVE, ATTR_ATOMIC_AGGREGATE, b""))
    if attributes.aggregator is not None:
        asn, address = attributes.aggregator
        parts.append(_attr(
            FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_AGGREGATOR,
            struct.pack("!I", asn) + address.packed(),
        ))
    if attributes.communities:
        value = b"".join(
            struct.pack("!I", community.packed())
            for community in sorted(
                attributes.communities, key=lambda c: (c.asn, c.value)
            )
        )
        parts.append(
            _attr(FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_COMMUNITIES, value)
        )
    if attributes.large_communities:
        value = b"".join(
            struct.pack("!III", lc.global_admin, lc.local1, lc.local2)
            for lc in sorted(
                attributes.large_communities,
                key=lambda c: (c.global_admin, c.local1, c.local2),
            )
        )
        parts.append(_attr(
            FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_LARGE_COMMUNITIES, value
        ))
    for unknown in attributes.unknown:
        flags = unknown.flags
        if unknown.is_optional and unknown.is_transitive:
            flags |= FLAG_PARTIAL
        parts.append(
            _attr(flags & ~FLAG_EXTENDED, unknown.type_code, unknown.value)
        )
    return b"".join(parts)


def _decode_attributes(data: bytes) -> PathAttributes:
    origin = Origin.IGP
    as_path = AsPath()
    next_hop: Optional[IPv4Address] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    atomic = False
    aggregator: Optional[tuple[int, IPv4Address]] = None
    communities: set[Community] = set()
    large_communities: set[LargeCommunity] = set()
    unknown: list[UnknownAttribute] = []
    seen: set[int] = set()
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_ATTRIBUTE_LIST
            )
        flags, type_code = struct.unpack_from("!BB", data, offset)
        offset += 2
        if flags & FLAG_EXTENDED:
            if offset + 2 > len(data):
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
                )
            (length,) = struct.unpack_from("!H", data, offset)
            offset += 2
        else:
            if offset + 1 > len(data):
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
                )
            length = data[offset]
            offset += 1
        if offset + length > len(data):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.ATTRIBUTE_LENGTH_ERROR
            )
        value = data[offset:offset + length]
        offset += length
        if type_code in seen:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE,
                UpdateSubcode.MALFORMED_ATTRIBUTE_LIST,
                message=f"duplicate attribute {type_code}",
            )
        seen.add(type_code)
        if type_code == ATTR_ORIGIN:
            if length != 1 or value[0] > 2:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE, UpdateSubcode.INVALID_ORIGIN
                )
            origin = Origin(value[0])
        elif type_code == ATTR_AS_PATH:
            as_path = _decode_as_path(value)
        elif type_code == ATTR_NEXT_HOP:
            if length != 4:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE, UpdateSubcode.INVALID_NEXT_HOP
                )
            next_hop = IPv4Address.from_packed(value)
        elif type_code == ATTR_MED:
            if length != 4:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
                )
            (med,) = struct.unpack("!I", value)
        elif type_code == ATTR_LOCAL_PREF:
            if length != 4:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
                )
            (local_pref,) = struct.unpack("!I", value)
        elif type_code == ATTR_ATOMIC_AGGREGATE:
            atomic = True
        elif type_code == ATTR_AGGREGATOR:
            if length != 8:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
                )
            asn, address = struct.unpack("!I4s", value)
            aggregator = (asn, IPv4Address.from_packed(address))
        elif type_code == ATTR_COMMUNITIES:
            if length % 4:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.OPTIONAL_ATTRIBUTE_ERROR,
                )
            for i in range(0, length, 4):
                (packed,) = struct.unpack_from("!I", value, i)
                communities.add(Community.from_packed(packed))
        elif type_code == ATTR_LARGE_COMMUNITIES:
            if length % 12:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.OPTIONAL_ATTRIBUTE_ERROR,
                )
            for i in range(0, length, 12):
                g, l1, l2 = struct.unpack_from("!III", value, i)
                large_communities.add(LargeCommunity(g, l1, l2))
        else:
            if not flags & FLAG_OPTIONAL:
                raise NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.UNRECOGNIZED_WELLKNOWN_ATTRIBUTE,
                    data=bytes([type_code]),
                )
            unknown.append(
                UnknownAttribute(type_code=type_code, flags=flags, value=value)
            )
    # Interning (perf flag ``intern_attrs``): every RIB holding this
    # attribute set shares one object (Fig. 6a memory), and downstream
    # encode memoization hits on the pooled instance's hash.
    return intern_attributes(PathAttributes(
        origin=origin,
        as_path=intern_as_path(as_path),
        next_hop=next_hop,
        med=med,
        local_pref=local_pref,
        atomic_aggregate=atomic,
        aggregator=aggregator,
        communities=frozenset(communities),
        large_communities=frozenset(large_communities),
        unknown=tuple(unknown),
    ))


def _decode_as_path(value: bytes) -> AsPath:
    segments: list[AsPathSegment] = []
    offset = 0
    while offset < len(value):
        if offset + 2 > len(value):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_AS_PATH
            )
        kind, count = struct.unpack_from("!BB", value, offset)
        offset += 2
        if kind not in (SegmentType.AS_SET, SegmentType.AS_SEQUENCE):
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_AS_PATH
            )
        if offset + 4 * count > len(value) or count == 0:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_AS_PATH
            )
        asns = struct.unpack_from(f"!{count}I", value, offset)
        offset += 4 * count
        try:
            segments.append(AsPathSegment(SegmentType(kind), tuple(asns)))
        except ValueError as exc:
            raise NotificationError(
                ErrorCode.UPDATE_MESSAGE, UpdateSubcode.MALFORMED_AS_PATH,
                message=str(exc),
            ) from exc
    return AsPath(tuple(segments))


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def _wrap(msg_type: int, body: bytes) -> bytes:
    length = HEADER_SIZE + len(body)
    if length > MAX_MESSAGE_SIZE:
        raise NotificationError(
            ErrorCode.MESSAGE_HEADER, HeaderSubcode.BAD_MESSAGE_LENGTH,
            message=f"message too large: {length}",
        )
    return MARKER + struct.pack("!HB", length, msg_type) + body


class MessageDecoder:
    """Incremental framing decoder for a BGP byte stream.

    ``addpath`` must be toggled once the OPEN exchange negotiates the
    capability, since it changes UPDATE NLRI parsing.
    """

    def __init__(self) -> None:
        self._buffer = b""
        self.addpath = False

    def feed(self, data: bytes) -> None:
        self._buffer += data

    def __iter__(self) -> Iterator[BgpMessage]:
        return self

    def __next__(self) -> BgpMessage:
        message = self.next_message()
        if message is None:
            raise StopIteration
        return message

    def next_message(self) -> Optional[BgpMessage]:
        if len(self._buffer) < HEADER_SIZE:
            return None
        marker = self._buffer[:16]
        if marker != MARKER:
            raise NotificationError(
                ErrorCode.MESSAGE_HEADER,
                HeaderSubcode.CONNECTION_NOT_SYNCHRONIZED,
            )
        length, msg_type = struct.unpack_from("!HB", self._buffer, 16)
        if not HEADER_SIZE <= length <= MAX_MESSAGE_SIZE:
            raise NotificationError(
                ErrorCode.MESSAGE_HEADER, HeaderSubcode.BAD_MESSAGE_LENGTH,
                data=struct.pack("!H", length),
            )
        if len(self._buffer) < length:
            return None
        body = self._buffer[HEADER_SIZE:length]
        self._buffer = self._buffer[length:]
        if msg_type == MSG_OPEN:
            return OpenMessage.decode(body)
        if msg_type == MSG_UPDATE:
            return UpdateMessage.decode(body, addpath=self.addpath)
        if msg_type == MSG_NOTIFICATION:
            return NotificationMessage.decode(body)
        if msg_type == MSG_KEEPALIVE:
            if body:
                raise NotificationError(
                    ErrorCode.MESSAGE_HEADER, HeaderSubcode.BAD_MESSAGE_LENGTH
                )
            return KeepaliveMessage()
        if msg_type == MSG_ROUTE_REFRESH:
            return RouteRefreshMessage.decode(body)
        raise NotificationError(
            ErrorCode.MESSAGE_HEADER, HeaderSubcode.BAD_MESSAGE_TYPE,
            data=bytes([msg_type]),
        )
