"""Session supervision: auto-reconnect with backoff and flap damping.

The paper's operational sections (§4.7, §7.3) stress that a production
edge must survive session resets without operator intervention — the
muxes keep re-dialing upstreams, but *politely*: exponential backoff so
a dead peer is not hammered, deterministic jitter so a mux-wide outage
does not produce synchronized re-dial storms, an idle-hold floor so two
crash-looping speakers cannot spin the simulator, and per-peer flap
damping (RFC 2439 in spirit) so a flapping neighbor is suppressed for a
cool-down instead of amplifying its churn into the platform.

:class:`SessionSupervisor` owns the lifecycle of one neighbor's
sessions.  It *adopts* a running :class:`~repro.bgp.session.BgpSession`
(chaining the owner's callbacks rather than replacing them) and, when
the session closes for any non-administrative reason, re-dials through a
``channel_factory`` and rebuilds the session through a
``session_factory``.  All randomness comes from a private
``random.Random`` seeded from ``(seed, peer_key)``, so the backoff
schedule is byte-identical across runs with the same seed — asserted by
a tier-1 test and relied on by the chaos harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.bgp.session import BgpSession
from repro.sim.scheduler import Scheduler
from repro.telemetry.station import ResilienceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bgp.transport import Channel
    from repro.telemetry import TelemetryHub

__all__ = ["SessionSupervisor", "SupervisorConfig"]


@dataclass
class SupervisorConfig:
    """Reconnect policy knobs (all times in simulated seconds)."""

    min_backoff: float = 1.0       # first re-dial delay (before jitter)
    max_backoff: float = 60.0      # backoff ceiling
    multiplier: float = 2.0        # exponential growth factor
    jitter: float = 0.25           # delay *= 1 + jitter * U[0, 1)
    idle_hold_floor: float = 0.5   # never re-dial faster than this
    flap_threshold: int = 5        # flaps inside the window -> suppress
    flap_window: float = 300.0     # sliding window for flap counting
    suppress_time: float = 600.0   # cool-down once damped
    max_attempts: int = 8          # consecutive failures before giving up
    seed: int = 0                  # jitter RNG seed (shared per platform)


ChannelFactory = Callable[[], Optional["Channel"]]
SessionFactory = Callable[["Channel"], Optional[BgpSession]]


class SessionSupervisor:
    """Keeps one neighbor's session alive across resets."""

    def __init__(
        self,
        scheduler: Scheduler,
        peer_key: str,
        channel_factory: ChannelFactory,
        session_factory: SessionFactory,
        config: Optional[SupervisorConfig] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.peer_key = peer_key
        self.channel_factory = channel_factory
        self.session_factory = session_factory
        self.config = config if config is not None else SupervisorConfig()
        self.telemetry = telemetry
        # Deterministic jitter: string seeding hashes stably across runs
        # and processes (unlike hash() of a str under PYTHONHASHSEED).
        self._rng = random.Random(f"{self.config.seed}:{peer_key}")
        self.session: Optional[BgpSession] = None
        self.attempts = 0          # consecutive failed attempts
        self.reconnects = 0        # successful re-dials (session rebuilt)
        self.suppressions = 0      # flap-damping activations
        self.gave_up = False
        self.stopped = False
        self.suppressed_until: Optional[float] = None
        self.schedule: list[float] = []  # every delay ever scheduled
        self._flap_times: list[float] = []
        self._redial_event = None
        self._m_reconnects = None
        self._m_suppressions = None
        if telemetry is not None:
            self._m_reconnects = telemetry.registry.counter(
                "bgp_supervisor_reconnects",
                "Supervisor re-dial attempts per peer",
                labels=("peer",),
            ).labels(peer_key)
            self._m_suppressions = telemetry.registry.counter(
                "bgp_supervisor_suppressions",
                "Flap-damping suppressions per peer",
                labels=("peer",),
            ).labels(peer_key)
            telemetry.registry.gauge(
                "bgp_supervisor_suppressed",
                "1 while the peer is suppressed (damped or quarantined)",
                labels=("peer",),
            ).labels(peer_key).set_function(
                lambda: 1.0 if self.suppressed else 0.0
            )

    # -- state -------------------------------------------------------------

    @property
    def pending(self) -> bool:
        """A re-dial (or suppression expiry) is scheduled."""
        return self._redial_event is not None

    @property
    def suppressed(self) -> bool:
        return (
            self.suppressed_until is not None
            and self.scheduler.now < self.suppressed_until
        )

    def damping_state(self) -> dict:
        """One peer's damping posture, for telemetry and the CLI.

        ``state`` is the coarse verdict: ``stopped`` / ``gave-up`` /
        ``suppressed`` (damped or quarantined) / ``backoff`` (a re-dial
        is scheduled) / ``active`` (session healthy or idle).
        """
        now = self.scheduler.now
        if self.stopped:
            state = "stopped"
        elif self.gave_up:
            state = "gave-up"
        elif self.suppressed:
            state = "suppressed"
        elif self._redial_event is not None:
            state = "backoff"
        else:
            state = "active"
        remaining = 0.0
        if self.suppressed:
            remaining = self.suppressed_until - now
        return {
            "state": state,
            "suppressed": self.suppressed,
            "suppressed_until": self.suppressed_until,
            "remaining_s": remaining,
            "flaps_in_window": len([
                t for t in self._flap_times
                if now - t <= self.config.flap_window
            ]),
            "attempts": self.attempts,
            "reconnects": self.reconnects,
            "suppressions": self.suppressions,
        }

    # -- lifecycle ---------------------------------------------------------

    def adopt(self, session: BgpSession) -> None:
        """Supervise ``session``: chain into its close/established hooks."""
        self.session = session
        original_close = session._on_close
        original_established = session._on_established

        def on_close(sess: BgpSession, reason: str) -> None:
            if original_close is not None:
                original_close(sess, reason)
            self._session_closed(sess, reason)

        def on_established(sess: BgpSession) -> None:
            self.attempts = 0
            if original_established is not None:
                original_established(sess)

        session._on_close = on_close
        session._on_established = on_established

    def stop(self) -> None:
        """Stop supervising (administrative de-configuration)."""
        self.stopped = True
        if self._redial_event is not None:
            self._redial_event.cancel()
            self._redial_event = None

    def quarantine(self, duration: float) -> None:
        """Suppress the peer for ``duration`` seconds (overload breaker).

        Unlike flap damping (which reacts to the peer's own session
        churn) a quarantine is imposed from outside — the overload
        governor calls this when the peer's circuit breaker opens, so
        an already-scheduled re-dial is pushed out past the breaker's
        open window instead of re-dialing into a source that is being
        shed.  A live session is left alone: quarantine only delays
        resurrection, it never tears down.
        """
        if self.stopped or self.gave_up or duration <= 0:
            return
        now = self.scheduler.now
        until = now + duration
        if self.suppressed_until is None or until > self.suppressed_until:
            self.suppressed_until = until
        self.suppressions += 1
        if self._m_suppressions is not None:
            self._m_suppressions.inc()
        self._event("quarantine", f"overload quarantine for {duration:g}s")
        if self._redial_event is not None:
            # Push the pending re-dial out to the quarantine horizon.
            self._redial_event.cancel()
            delay = max(
                self.config.idle_hold_floor,
                self.suppressed_until - now,
            )
            self.schedule.append(delay)
            self._redial_event = self.scheduler.call_later(
                delay, self._redial
            )

    # -- internals ---------------------------------------------------------

    def _event(self, event: str, detail: str = "") -> None:
        tele = self.telemetry
        if tele is not None:
            tele.station.publish(ResilienceEvent(
                peer=self.peer_key, time=self.scheduler.now,
                event=event, detail=detail,
            ))

    def _session_closed(self, session: BgpSession, reason: str) -> None:
        if self.stopped or self.gave_up:
            return
        if session is not self.session:
            return  # superseded session; ignore its late close
        if session.closed_admin:
            # Deliberate teardown (local shutdown or peer CEASE): the
            # owner meant it — do not resurrect.
            return
        if self._redial_event is not None:
            return
        now = self.scheduler.now
        self._flap_times.append(now)
        self._flap_times = [
            t for t in self._flap_times
            if now - t <= self.config.flap_window
        ]
        if len(self._flap_times) >= self.config.flap_threshold:
            # Flap damping: suppress the peer for a cool-down.
            self.suppressions += 1
            if self._m_suppressions is not None:
                self._m_suppressions.inc()
            self.suppressed_until = now + self.config.suppress_time
            self._flap_times.clear()
            self.attempts = 0
            delay = self.config.suppress_time
            self._event(
                "suppress",
                f"flap damping for {self.config.suppress_time:g}s",
            )
        else:
            if self.attempts >= self.config.max_attempts:
                self.gave_up = True
                self._event(
                    "give-up", f"after {self.attempts} attempts"
                )
                return
            delay = self._next_delay()
            if self.suppressed:
                # A quarantine is in force (overload breaker): never
                # re-dial before it lapses.
                delay = max(delay, self.suppressed_until - now)
        self.schedule.append(delay)
        self._redial_event = self.scheduler.call_later(delay, self._redial)

    def _next_delay(self) -> float:
        base = min(
            self.config.max_backoff,
            self.config.min_backoff
            * self.config.multiplier ** self.attempts,
        )
        jittered = base * (1.0 + self.config.jitter * self._rng.random())
        return max(self.config.idle_hold_floor, jittered)

    def _redial(self) -> None:
        self._redial_event = None
        if self.stopped:
            return
        self.suppressed_until = None
        self.attempts += 1
        channel = self.channel_factory()
        if channel is None:
            # Transport not available yet: count the failure and back off.
            self._event("redial-failed", "channel factory returned None")
            if self.attempts >= self.config.max_attempts:
                self.gave_up = True
                self._event("give-up", f"after {self.attempts} attempts")
                return
            delay = self._next_delay()
            self.schedule.append(delay)
            self._redial_event = self.scheduler.call_later(
                delay, self._redial
            )
            return
        session = self.session_factory(channel)
        if session is None:
            self.stop()
            return
        self.reconnects += 1
        if self._m_reconnects is not None:
            self._m_reconnects.inc()
        self._event("reconnect", f"attempt {self.attempts}")
        self.adopt(session)
        session.start()
