"""Route-map-style routing policy engine.

This is the policy vocabulary shared by the BIRD-like router, the synthetic
Internet's Gao–Rexford configurations, and (for the subset expressible in a
router) PEERING's security filters. Policies that exceed what a router's
filter language can express — stateful rate limits, cross-PoP state — live
in the decoupled enforcement engines instead (§3.3 of the paper explains why
that split exists; :mod:`repro.security` implements it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.bgp.attributes import Community, LargeCommunity, Route
from repro.netsim.addr import Prefix


class PolicyResult(enum.Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    CONTINUE = "continue"


@dataclass(frozen=True)
class PrefixMatch:
    """Match prefixes covered by ``prefix`` with length in [ge, le]."""

    prefix: Prefix
    ge: Optional[int] = None
    le: Optional[int] = None

    def matches(self, candidate: Prefix) -> bool:
        if not self.prefix.contains_prefix(candidate):
            return False
        ge = self.ge if self.ge is not None else self.prefix.length
        le = self.le if self.le is not None else (
            self.prefix.length if self.ge is None else candidate.BITS
        )
        return ge <= candidate.length <= le


@dataclass
class Match:
    """Conjunction of match conditions; empty conditions match everything."""

    prefixes: Sequence[PrefixMatch] = ()
    communities: Iterable[Community] = ()
    any_community_of: Iterable[Community] = ()
    as_path_contains: Optional[int] = None
    origin_as_in: Optional[frozenset[int]] = None
    first_as_in: Optional[frozenset[int]] = None
    max_as_path_length: Optional[int] = None
    has_unknown_attributes: Optional[bool] = None
    custom: Optional[Callable[[Route], bool]] = None

    def matches(self, route: Route) -> bool:
        if self.prefixes and not any(
            p.matches(route.prefix) for p in self.prefixes
        ):
            return False
        required = set(self.communities)
        if required and not required <= route.communities:
            return False
        alternatives = set(self.any_community_of)
        if alternatives and not alternatives & route.communities:
            return False
        if (
            self.as_path_contains is not None
            and not route.as_path.contains(self.as_path_contains)
        ):
            return False
        if (
            self.origin_as_in is not None
            and route.origin_as not in self.origin_as_in
        ):
            return False
        if (
            self.first_as_in is not None
            and route.as_path.first_as not in self.first_as_in
        ):
            return False
        if (
            self.max_as_path_length is not None
            and route.as_path.length > self.max_as_path_length
        ):
            return False
        if self.has_unknown_attributes is not None:
            if bool(route.attributes.unknown) != self.has_unknown_attributes:
                return False
        if self.custom is not None and not self.custom(route):
            return False
        return True


@dataclass
class PolicyAction:
    """Attribute transformations applied when a rule matches."""

    set_local_pref: Optional[int] = None
    set_med: Optional[int] = None
    prepend_asn: Optional[int] = None
    prepend_count: int = 1
    add_communities: Iterable[Community] = ()
    remove_communities: Iterable[Community] = ()
    clear_communities: bool = False
    add_large_communities: Iterable[LargeCommunity] = ()
    strip_unknown_attributes: bool = False
    custom: Optional[Callable[[Route], Route]] = None

    def apply(self, route: Route) -> Route:
        if self.set_local_pref is not None:
            route = route.with_local_pref(self.set_local_pref)
        if self.set_med is not None:
            route = route.with_attributes(med=self.set_med)
        if self.prepend_asn is not None:
            route = route.prepended(self.prepend_asn, self.prepend_count)
        if self.clear_communities:
            route = route.with_communities(())
        removals = set(self.remove_communities)
        if removals:
            route = route.without_communities(*removals)
        additions = set(self.add_communities)
        if additions:
            route = route.add_communities(*additions)
        large = set(self.add_large_communities)
        if large:
            route = route.with_attributes(
                large_communities=route.attributes.large_communities | large
            )
        if self.strip_unknown_attributes:
            route = route.without_unknown_attributes()
        if self.custom is not None:
            route = self.custom(route)
        return route


@dataclass
class PolicyRule:
    """One route-map term: match → transform → accept/reject/continue."""

    match: Match = field(default_factory=Match)
    action: PolicyAction = field(default_factory=PolicyAction)
    result: PolicyResult = PolicyResult.ACCEPT
    name: str = ""


class RouteMap:
    """An ordered rule chain with a default disposition.

    ``apply`` returns the transformed route, or ``None`` when rejected —
    the universal filter signature across the reproduction.
    """

    def __init__(
        self,
        rules: Sequence[PolicyRule] = (),
        default: PolicyResult = PolicyResult.ACCEPT,
        name: str = "",
    ) -> None:
        if default == PolicyResult.CONTINUE:
            raise ValueError("route-map default must be ACCEPT or REJECT")
        self.rules = list(rules)
        self.default = default
        self.name = name
        self.evaluations = 0

    def apply(self, route: Route) -> Optional[Route]:
        self.evaluations += 1
        for rule in self.rules:
            if not rule.match.matches(route):
                continue
            route = rule.action.apply(route)
            if rule.result == PolicyResult.ACCEPT:
                return route
            if rule.result == PolicyResult.REJECT:
                return None
        return route if self.default == PolicyResult.ACCEPT else None

    @classmethod
    def accept_all(cls, name: str = "accept-all") -> "RouteMap":
        return cls(rules=(), default=PolicyResult.ACCEPT, name=name)

    @classmethod
    def reject_all(cls, name: str = "reject-all") -> "RouteMap":
        return cls(rules=(), default=PolicyResult.REJECT, name=name)


def chain(route: Route, *maps: Optional[RouteMap]) -> Optional[Route]:
    """Run a route through several maps, stopping at the first rejection."""
    current: Optional[Route] = route
    for route_map in maps:
        if current is None:
            return None
        if route_map is None:
            continue
        current = route_map.apply(current)
    return current
