"""The BGP session finite-state machine (RFC 4271 §8, simplified).

A :class:`BgpSession` owns one :class:`~repro.bgp.transport.Channel`, runs
the OPEN exchange, negotiates capabilities (ADD-PATH, 4-octet AS), maintains
hold/keepalive timers, frames and parses the byte stream, and delivers
UPDATEs to its owner. Malformed input produces a NOTIFICATION and a session
teardown — reproducing the failure mode discussed in §7.3 of the paper.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, fields as dataclass_fields
from typing import TYPE_CHECKING, Callable, Optional

from repro.bgp.errors import (
    CeaseSubcode,
    ErrorCode,
    NotificationError,
    OpenSubcode,
)
from repro.bgp.messages import (
    AddPathCapability,
    FourOctetAsCapability,
    GracefulRestartCapability,
    KeepaliveMessage,
    MessageDecoder,
    MultiprotocolCapability,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
)
from repro.bgp.transport import Channel
from repro.netsim.addr import IPv4Address
from repro.sim.scheduler import Scheduler
from repro.telemetry.station import (
    PeerDown,
    PeerUp,
    RouteMonitoring,
    StatsReport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub

# Fallback peer keys for sessions with neither description nor peer ASN.
_anonymous_peers = itertools.count(1)


class SessionState(enum.Enum):
    IDLE = "idle"
    OPEN_SENT = "open-sent"
    OPEN_CONFIRM = "open-confirm"
    ESTABLISHED = "established"
    CLOSED = "closed"


@dataclass
class SessionConfig:
    """Per-session configuration."""

    local_asn: int
    local_id: IPv4Address
    peer_asn: Optional[int] = None  # None: accept any (route-server style)
    hold_time: int = 90
    addpath: bool = False
    description: str = ""
    # Graceful Restart (RFC 4724): offer the capability; ``restart_time``
    # is how long we ask the peer to retain our routes after a drop.
    graceful_restart: bool = False
    restart_time: int = 120

    @property
    def keepalive_interval(self) -> float:
        return self.hold_time / 3


@dataclass
class SessionStats:
    updates_sent: int = 0
    updates_received: int = 0
    keepalives_sent: int = 0
    keepalives_received: int = 0
    notifications_sent: int = 0
    notifications_received: int = 0


class BgpSession:
    """One BGP session over a channel.

    Owner callbacks:

    * ``on_established(session)`` — OPEN/KEEPALIVE handshake done,
    * ``on_update(session, update)`` — a parsed, validated UPDATE,
    * ``on_end_of_rib(session)`` — the peer's End-of-RIB marker
      (RFC 4724) arrived; only fired when Graceful Restart negotiated,
    * ``on_close(session, reason)`` — session torn down (either side).

    After teardown, ``closed_admin`` tells the owner whether the close
    was administrative (local shutdown / CEASE) — Graceful Restart must
    not retain routes across a deliberate de-configuration.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        config: SessionConfig,
        channel: Channel,
        on_update: Callable[["BgpSession", UpdateMessage], None],
        on_established: Optional[Callable[["BgpSession"], None]] = None,
        on_close: Optional[Callable[["BgpSession", str], None]] = None,
        on_route_refresh: Optional[Callable[["BgpSession"], None]] = None,
        on_end_of_rib: Optional[Callable[["BgpSession"], None]] = None,
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.channel = channel
        self.state = SessionState.IDLE
        self.stats = SessionStats()
        self.telemetry = telemetry
        if config.description:
            self.peer_key = config.description
        elif config.peer_asn is not None:
            self.peer_key = f"as{config.peer_asn}"
        else:
            self.peer_key = f"session-{next(_anonymous_peers)}"
        self._m_updates_in = None
        self._m_updates_out = None
        self._m_transitions = None
        if telemetry is not None:
            updates = telemetry.registry.counter(
                "bgp_session_updates",
                "UPDATE messages per session and direction",
                labels=("peer", "direction"),
            )
            self._m_updates_in = updates.labels(self.peer_key, "in")
            self._m_updates_out = updates.labels(self.peer_key, "out")
            self._m_transitions = telemetry.registry.counter(
                "bgp_session_transitions",
                "BGP FSM transitions per session",
                labels=("peer", "state"),
            )
        self.peer_open: Optional[OpenMessage] = None
        self.negotiated_hold_time = config.hold_time
        self.addpath_active = False
        self.gr_negotiated = False
        self.peer_restart_time = 0
        self.closed_admin = False
        self._on_update = on_update
        self._on_established = on_established
        self._on_close = on_close
        self._on_route_refresh = on_route_refresh
        self._on_end_of_rib = on_end_of_rib
        self._decoder = MessageDecoder()
        self._hold_event = None
        self._keepalive_event = None
        # Optional bounded ingress queue (repro.overload, §6i): when set,
        # UPDATEs are admitted there instead of delivered inline.  None
        # (the default) keeps the pre-§6i byte-identical inline path.
        self._ingress_queue = None
        channel.on_data = self._data_received
        channel.on_close = lambda: self._teardown("peer closed connection")

    @property
    def established(self) -> bool:
        return self.state == SessionState.ESTABLISHED

    def _transition(self, state: SessionState) -> None:
        """Move the FSM; counts and traces the transition when telemetry
        is attached (the disabled path is one None test)."""
        self.state = state
        if self._m_transitions is not None:
            self._m_transitions.labels(self.peer_key, state.value).inc()
            self.telemetry.tracer.event(
                "bgp.session.fsm", peer=self.peer_key, state=state.value
            )

    @property
    def peer_asn(self) -> Optional[int]:
        if self.peer_open is not None:
            return self.peer_open.asn
        return self.config.peer_asn

    def start(self) -> None:
        """Send our OPEN (both sides start actively; collision handling is
        unnecessary because the simulation pairs channels explicitly)."""
        if self.state != SessionState.IDLE:
            return
        capabilities = [
            MultiprotocolCapability(),
            FourOctetAsCapability(asn=self.config.local_asn),
        ]
        if self.config.addpath:
            capabilities.append(AddPathCapability())
        if self.config.graceful_restart:
            capabilities.append(GracefulRestartCapability(
                restart_time=self.config.restart_time
            ))
        open_message = OpenMessage(
            asn=self.config.local_asn,
            hold_time=self.config.hold_time,
            bgp_id=self.config.local_id,
            capabilities=tuple(capabilities),
        )
        self.channel.send(open_message.encode())
        self._transition(SessionState.OPEN_SENT)
        self._arm_hold_timer()

    def send_update(self, update: UpdateMessage) -> None:
        if not self.established:
            raise NotificationError(
                ErrorCode.FSM_ERROR, message="session not established"
            )
        self.stats.updates_sent += 1
        if self._m_updates_out is not None:
            self._m_updates_out.inc()
        self.channel.send(update.encode(addpath=self.addpath_active))

    def send_wire(self, frame: bytes) -> None:
        """Transmit a pre-encoded UPDATE frame (real shard backends).

        Semantically identical to :meth:`send_update` — same liveness
        check, stats, and metric — for frames a parallel backend worker
        already encoded (DESIGN.md §6j).  The caller is responsible for
        having captured ``addpath_active`` at encode time.
        """
        if not self.established:
            raise NotificationError(
                ErrorCode.FSM_ERROR, message="session not established"
            )
        self.stats.updates_sent += 1
        if self._m_updates_out is not None:
            self._m_updates_out.inc()
        self.channel.send(frame)

    def send_route_refresh(self) -> None:
        """Ask the peer to resend its full Adj-RIB-Out (RFC 2918)."""
        if not self.established:
            raise NotificationError(
                ErrorCode.FSM_ERROR, message="session not established"
            )
        self.channel.send(RouteRefreshMessage().encode())

    def send_keepalive(self) -> None:
        self.stats.keepalives_sent += 1
        self.channel.send(KeepaliveMessage().encode())

    def notify_and_close(self, error: NotificationError) -> None:
        """Send a NOTIFICATION for ``error`` and tear the session down."""
        message = NotificationMessage(
            code=error.code, subcode=error.subcode, data=error.data
        )
        self.stats.notifications_sent += 1
        self.channel.send(message.encode())
        self._teardown(
            f"sent NOTIFICATION: {error}",
            admin=error.code == ErrorCode.CEASE,
        )

    def send_end_of_rib(self) -> None:
        """Send the End-of-RIB marker (RFC 4724): an empty UPDATE."""
        self.send_update(UpdateMessage.end_of_rib())

    def shutdown(self, subcode: CeaseSubcode = CeaseSubcode.ADMIN_SHUTDOWN) -> None:
        if self.state == SessionState.CLOSED:
            return
        if self.state == SessionState.IDLE:
            # Never started: no NOTIFICATION to send, but teardown must
            # still be uniform — close the channel and fire on_close so
            # the owner does not leak the transport.
            self._teardown("administrative shutdown", admin=True)
            return
        self.notify_and_close(
            NotificationError(ErrorCode.CEASE, subcode, message="shutdown")
        )

    # ------------------------------------------------------------------

    def _data_received(self, data: bytes) -> None:
        self._decoder.feed(data)
        try:
            while True:
                message = self._decoder.next_message()
                if message is None:
                    return
                self._dispatch(message)
                if self.state == SessionState.CLOSED:
                    return
        except NotificationError as error:
            self.notify_and_close(error)

    def _dispatch(self, message) -> None:
        self._arm_hold_timer()
        if isinstance(message, OpenMessage):
            self._handle_open(message)
        elif isinstance(message, KeepaliveMessage):
            self.stats.keepalives_received += 1
            self._handle_keepalive()
        elif isinstance(message, UpdateMessage):
            if not self.established:
                raise NotificationError(
                    ErrorCode.FSM_ERROR, message="UPDATE before ESTABLISHED"
                )
            self.stats.updates_received += 1
            tele = self.telemetry
            if tele is not None:
                self._m_updates_in.inc()
                tele.station.publish(RouteMonitoring(
                    peer=self.peer_key,
                    time=self.scheduler.now,
                    announced=tuple(message.routes()),
                    withdrawn=tuple(message.withdrawn),
                ))
            queue = self._ingress_queue
            if queue is not None:
                # Overload mode: bounded admission, scheduler-driven
                # delivery.  KEEPALIVE/NOTIFICATION/OPEN never reach the
                # queue — the FSM branches above handle them inline, so
                # liveness survives any ingress backlog.
                queue.offer(self, message)
                return
            self.deliver_update(message)
        elif isinstance(message, RouteRefreshMessage):
            if not self.established:
                raise NotificationError(
                    ErrorCode.FSM_ERROR,
                    message="ROUTE-REFRESH before ESTABLISHED",
                )
            if self._on_route_refresh is not None:
                self._on_route_refresh(self)
        elif isinstance(message, NotificationMessage):
            self.stats.notifications_received += 1
            self._teardown(
                f"received NOTIFICATION {message.code}/{message.subcode}",
                admin=message.code == ErrorCode.CEASE,
            )

    def set_ingress_queue(self, queue) -> None:
        """Route received UPDATEs through a bounded ingress queue
        (:class:`repro.overload.IngressQueue`); ``None`` restores the
        inline path."""
        self._ingress_queue = queue

    def deliver_update(self, message: UpdateMessage) -> None:
        """Deliver one admitted UPDATE to the owner (the tail of the
        dispatch path; also the ingress queue's drain target)."""
        if self.gr_negotiated and message.is_end_of_rib:
            # End-of-RIB marker (RFC 4724): not a routing change.
            if self._on_end_of_rib is not None:
                self._on_end_of_rib(self)
            return
        self._on_update(self, message)

    def _handle_open(self, message: OpenMessage) -> None:
        if self.state != SessionState.OPEN_SENT:
            raise NotificationError(
                ErrorCode.FSM_ERROR, message="unexpected OPEN"
            )
        if (
            self.config.peer_asn is not None
            and message.asn != self.config.peer_asn
        ):
            raise NotificationError(
                ErrorCode.OPEN_MESSAGE, OpenSubcode.BAD_PEER_AS,
                message=f"expected AS{self.config.peer_asn}, got AS{message.asn}",
            )
        self.peer_open = message
        # RFC 4271 §4.2: the session uses the smaller of the two offered
        # hold times, and zero means "disable the hold and keepalive
        # timers" — it must NOT fall back to the local value.
        self.negotiated_hold_time = min(
            self.config.hold_time, message.hold_time
        )
        peer_gr = message.find_graceful_restart()
        self.gr_negotiated = self.config.graceful_restart and (
            peer_gr is not None
        )
        if peer_gr is not None:
            self.peer_restart_time = peer_gr.restart_time
        peer_addpath = message.find_addpath()
        # Per RFC 7911 the capability is directional; the reproduction uses
        # it symmetrically (both directions active when both sides offer it).
        self.addpath_active = self.config.addpath and peer_addpath is not None
        self._decoder.addpath = self.addpath_active
        self._transition(SessionState.OPEN_CONFIRM)
        self.send_keepalive()

    def _handle_keepalive(self) -> None:
        if self.state == SessionState.OPEN_CONFIRM:
            self._transition(SessionState.ESTABLISHED)
            self._arm_keepalive_timer()
            tele = self.telemetry
            if tele is not None:
                tele.station.publish(PeerUp(
                    peer=self.peer_key,
                    time=self.scheduler.now,
                    local_asn=self.config.local_asn,
                    peer_asn=self.peer_asn,
                    local_id=str(self.config.local_id),
                    addpath=self.addpath_active,
                    hold_time=self.negotiated_hold_time,
                ))
            if self._on_established is not None:
                self._on_established(self)

    # -- timers -----------------------------------------------------------

    def _arm_hold_timer(self) -> None:
        if self._hold_event is not None:
            self._hold_event.cancel()
        if self.negotiated_hold_time == 0:
            return
        self._hold_event = self.scheduler.call_later(
            float(self.negotiated_hold_time), self._hold_expired
        )

    def _hold_expired(self) -> None:
        if self.state == SessionState.CLOSED:
            return
        self.notify_and_close(
            NotificationError(
                ErrorCode.HOLD_TIMER_EXPIRED, message="hold timer expired"
            )
        )

    def _arm_keepalive_timer(self) -> None:
        if self.negotiated_hold_time == 0:
            # Negotiated hold time 0 disables both timers (RFC 4271).
            return
        self._keepalive_event = self.scheduler.call_later(
            self.negotiated_hold_time / 3, self._keepalive_tick
        )

    def _keepalive_tick(self) -> None:
        if self.state != SessionState.ESTABLISHED:
            return
        self.send_keepalive()
        self._arm_keepalive_timer()

    def publish_stats(self) -> None:
        """Stream a BMP-style Stats Report for this session now."""
        tele = self.telemetry
        if tele is None:
            return
        tele.station.publish(StatsReport(
            peer=self.peer_key,
            time=self.scheduler.now,
            stats=tuple(
                (stat.name, getattr(self.stats, stat.name))
                for stat in dataclass_fields(self.stats)
            ),
        ))

    def _teardown(self, reason: str, admin: bool = False) -> None:
        if self.state == SessionState.CLOSED:
            return
        was_established = self.state == SessionState.ESTABLISHED
        self.closed_admin = admin
        self._transition(SessionState.CLOSED)
        tele = self.telemetry
        if tele is not None and was_established:
            # BMP ordering: final stats, then Peer Down.
            self.publish_stats()
            tele.station.publish(PeerDown(
                peer=self.peer_key, time=self.scheduler.now, reason=reason
            ))
        if self._hold_event is not None:
            self._hold_event.cancel()
        if self._keepalive_event is not None:
            self._keepalive_event.cancel()
        if self._ingress_queue is not None:
            # Queued updates for a dead session are moot: the successor
            # session re-learns everything from scratch over BGP.
            self._ingress_queue.flush_session(self)
        self.channel.close()
        if self._on_close is not None:
            self._on_close(self, reason)


def establish_pair(
    scheduler: Scheduler,
    config_a: SessionConfig,
    config_b: SessionConfig,
    on_update_a: Callable[[BgpSession, UpdateMessage], None],
    on_update_b: Callable[[BgpSession, UpdateMessage], None],
    rtt: float = 0.01,
    **session_kwargs,
) -> tuple[BgpSession, BgpSession]:
    """Convenience: create a channel pair and two sessions, both started."""
    from repro.bgp.transport import connect_pair

    channel_a, channel_b = connect_pair(scheduler, rtt=rtt)
    session_a = BgpSession(
        scheduler, config_a, channel_a, on_update=on_update_a, **session_kwargs
    )
    session_b = BgpSession(
        scheduler, config_b, channel_b, on_update=on_update_b, **session_kwargs
    )
    session_a.start()
    session_b.start()
    return session_a, session_b
