"""Reliable byte-stream transport for BGP sessions.

BGP runs over TCP; inside the reproduction, sessions exchange their encoded
bytes over a :class:`Channel` pair — an in-order, reliable duplex stream
with configurable one-way latency, scheduled on the shared simulator. (The
full simulated-TCP implementation in :mod:`repro.netsim.tcp` is reserved for
the data-plane throughput experiments, where congestion behaviour matters;
control-plane fidelity lives in the BGP codec itself, which sees real bytes
either way.)

The fleet runtime (§6k) adds a *real* transport behind the same seam:
:class:`SocketChannel` speaks the identical ``send``/``on_data``/``on_close``
protocol over a nonblocking TCP socket on loopback, driven by a
:class:`SocketPoller`.  ``BgpSession`` and ``SessionSupervisor`` cannot tell
the two apart, which is exactly what lets the fleet differential harness
diff an in-process world against a multi-process one byte-for-byte.
:class:`FrameReassembler` recovers BGP message frames from the arbitrary
chunk boundaries a TCP stream produces, for taps and federation readers
that want frames rather than a parsed message stream.

Every live socket object registers in a module-level weak set;
:func:`open_socket_count` / :func:`close_all_sockets` back the test-suite
FD leak guard and an ``atexit`` sweep, mirroring the worker-process
discipline in :mod:`repro.parallel.backends`.
"""

from __future__ import annotations

import atexit
import errno
import selectors
import socket
import struct
import weakref
from typing import Callable, List, Optional

from repro.bgp.messages import HEADER_SIZE, MARKER, MAX_MESSAGE_SIZE
from repro.sim.scheduler import Scheduler


class Channel:
    """One endpoint of a reliable duplex byte stream."""

    def __init__(self, scheduler: Scheduler, latency: float = 0.0) -> None:
        self.scheduler = scheduler
        self.latency = latency
        self.peer: Optional["Channel"] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.closed = False
        self.tx_bytes = 0
        self.rx_bytes = 0

    def send(self, data: bytes) -> None:
        """Queue bytes for in-order delivery to the peer."""
        if self.closed or self.peer is None or not data:
            return
        self.tx_bytes += len(data)
        peer = self.peer
        self.scheduler.call_later(
            self.latency, lambda: peer._deliver(data)
        )

    def _deliver(self, data: bytes) -> None:
        if self.closed:
            return
        self.rx_bytes += len(data)
        if self.on_data is not None:
            self.on_data(data)

    def close(self) -> None:
        """Close both directions; the peer is notified after the latency."""
        if self.closed:
            return
        self.closed = True
        peer = self.peer
        if peer is not None and not peer.closed:
            self.scheduler.call_later(self.latency, peer._peer_closed)

    def _peer_closed(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.on_close is not None:
            self.on_close()


def connect_pair(
    scheduler: Scheduler, rtt: float = 0.0
) -> tuple[Channel, Channel]:
    """Create a connected channel pair with the given round-trip time."""
    a = Channel(scheduler, latency=rtt / 2)
    b = Channel(scheduler, latency=rtt / 2)
    a.peer = b
    b.peer = a
    return a, b


class FramingError(ValueError):
    """A byte stream violated BGP message framing (bad marker/length)."""


class FrameReassembler:
    """Incremental BGP length-framing: arbitrary chunks in, frames out.

    TCP delivers a byte stream, not messages — a single ``recv`` may hold
    half a frame, three frames, or a frame boundary split mid-length-field.
    ``feed`` buffers bytes and returns every *complete* frame (header
    included) that the accumulated stream now contains, preserving order.
    The marker and length bounds are validated eagerly so a desynchronized
    stream fails at the first bad header instead of producing garbage
    frames downstream.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def pending(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer += data
        frames: List[bytes] = []
        while len(self._buffer) >= HEADER_SIZE:
            if self._buffer[:16] != MARKER:
                raise FramingError("connection not synchronized: bad marker")
            (length,) = struct.unpack_from("!H", self._buffer, 16)
            if not HEADER_SIZE <= length <= MAX_MESSAGE_SIZE:
                raise FramingError(f"bad message length {length}")
            if len(self._buffer) < length:
                break
            frames.append(bytes(self._buffer[:length]))
            del self._buffer[:length]
        return frames


_LIVE_SOCKETS: "weakref.WeakSet" = weakref.WeakSet()


def open_socket_count() -> int:
    """Number of live (not yet closed) fleet transport sockets."""
    return sum(1 for sock in _LIVE_SOCKETS if not sock.closed)


def close_all_sockets() -> int:
    """Close every live transport socket (leak guard / atexit path)."""
    closed = 0
    for sock in list(_LIVE_SOCKETS):
        if not sock.closed:
            sock.close()
            closed += 1
    return closed


atexit.register(close_all_sockets)


class SocketPoller:
    """Thin readiness loop over :mod:`selectors` for the socket transport.

    Single-threaded by design: :meth:`pump` dispatches every ready
    callback once and returns the event count, so callers (the pop
    process main loop, the differential driver) interleave socket I/O
    with simulator steps deterministically instead of running a
    background thread.
    """

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self.closed = False

    def register(self, sock: socket.socket, events: int,
                 handler: Callable[[int], None]) -> None:
        self._selector.register(sock, events, handler)

    def modify(self, sock: socket.socket, events: int,
               handler: Callable[[int], None]) -> None:
        self._selector.modify(sock, events, handler)

    def unregister(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except KeyError:
            pass

    def pump(self, timeout: float = 0.0) -> int:
        """Dispatch ready handlers once; returns the number of events."""
        if self.closed:
            return 0
        events = self._selector.select(timeout)
        for key, mask in events:
            key.data(mask)
        return len(events)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._selector.close()


class SocketChannel:
    """A real-TCP endpoint speaking the :class:`Channel` seam.

    Duck-types ``send`` / ``close`` / ``on_data`` / ``on_close`` /
    ``closed`` / ``tx_bytes`` / ``rx_bytes`` so :class:`~repro.bgp.session.
    BgpSession` runs over it unchanged.  Differences from the simulated
    channel are confined to the transport edge:

    * bytes received before a session attaches (``on_data`` still unset)
      are buffered and replayed the moment a handler is assigned, so the
      accept side never drops the peer's OPEN;
    * a failed nonblocking connect surfaces as ``on_close`` — exactly the
      signal :class:`~repro.bgp.supervisor.SessionSupervisor` uses to
      back off and re-dial;
    * writes short of the kernel buffer are queued and flushed on the
      next writable event.
    """

    def __init__(self, poller: SocketPoller, sock: socket.socket,
                 connecting: bool = False) -> None:
        self.poller = poller
        self.sock = sock
        self.closed = False
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.on_close: Optional[Callable[[], None]] = None
        self._on_data: Optional[Callable[[bytes], None]] = None
        self._rx_pending = bytearray()
        self._tx_pending = bytearray()
        self._connecting = connecting
        sock.setblocking(False)
        events = selectors.EVENT_READ
        if connecting:
            events |= selectors.EVENT_WRITE
        poller.register(sock, events, self._handle_events)
        _LIVE_SOCKETS.add(self)

    @classmethod
    def connect(cls, poller: SocketPoller, host: str,
                port: int) -> "SocketChannel":
        """Begin a nonblocking connect; failure is reported via on_close."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        code = sock.connect_ex((host, port))
        if code not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
            sock.close()
            raise OSError(code, f"connect to {host}:{port} failed")
        return cls(poller, sock, connecting=code != 0)

    @property
    def on_data(self) -> Optional[Callable[[bytes], None]]:
        return self._on_data

    @on_data.setter
    def on_data(self, handler: Optional[Callable[[bytes], None]]) -> None:
        self._on_data = handler
        if handler is not None and self._rx_pending:
            pending = bytes(self._rx_pending)
            self._rx_pending.clear()
            handler(pending)

    def send(self, data: bytes) -> None:
        """Queue bytes for in-order delivery over the socket."""
        if self.closed or not data:
            return
        self.tx_bytes += len(data)
        self._tx_pending += data
        if not self._connecting:
            self._flush()

    def _flush(self) -> None:
        while self._tx_pending:
            try:
                sent = self.sock.send(bytes(self._tx_pending))
            except BlockingIOError:
                break
            except OSError:
                self._peer_closed()
                return
            if sent <= 0:
                break
            del self._tx_pending[:sent]
        self._update_interest()

    def _update_interest(self) -> None:
        if self.closed:
            return
        events = selectors.EVENT_READ
        if self._tx_pending or self._connecting:
            events |= selectors.EVENT_WRITE
        self.poller.modify(self.sock, events, self._handle_events)

    def _handle_events(self, mask: int) -> None:
        if self.closed:
            return
        if mask & selectors.EVENT_WRITE:
            if self._connecting:
                error = self.sock.getsockopt(
                    socket.SOL_SOCKET, socket.SO_ERROR
                )
                if error:
                    self._peer_closed()
                    return
                self._connecting = False
            self._flush()
        if mask & selectors.EVENT_READ and not self.closed:
            self._read_ready()

    def _read_ready(self) -> None:
        while not self.closed:
            try:
                data = self.sock.recv(65536)
            except BlockingIOError:
                return
            except OSError:
                self._peer_closed()
                return
            if not data:
                self._peer_closed()
                return
            self.rx_bytes += len(data)
            if self._on_data is not None:
                self._on_data(data)
            else:
                self._rx_pending += data

    def close(self) -> None:
        """Close the socket; the peer observes EOF on its next read."""
        if self.closed:
            return
        self.closed = True
        self.poller.unregister(self.sock)
        try:
            self.sock.close()
        except OSError:
            pass

    def _peer_closed(self) -> None:
        """EOF / reset / failed connect: close and notify the session."""
        if self.closed:
            return
        self.close()
        if self.on_close is not None:
            self.on_close()


class SocketListener:
    """Accepting endpoint: every inbound TCP connection becomes a
    :class:`SocketChannel` handed to ``on_accept``.

    Binding port 0 picks an ephemeral port (exposed as ``.port``) — tests
    use that; the fleet compiler assigns deterministic ports from the
    spec digest instead.
    """

    def __init__(self, poller: SocketPoller, host: str = "127.0.0.1",
                 port: int = 0,
                 on_accept: Optional[
                     Callable[[SocketChannel], None]] = None) -> None:
        self.poller = poller
        self.on_accept = on_accept
        self.closed = False
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        sock.setblocking(False)
        self.sock = sock
        self.host, self.port = sock.getsockname()
        poller.register(sock, selectors.EVENT_READ, self._accept_ready)
        _LIVE_SOCKETS.add(self)

    def _accept_ready(self, mask: int) -> None:
        while not self.closed:
            try:
                conn, _addr = self.sock.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            channel = SocketChannel(self.poller, conn)
            if self.on_accept is not None:
                self.on_accept(channel)
            else:
                channel.close()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.poller.unregister(self.sock)
        try:
            self.sock.close()
        except OSError:
            pass
