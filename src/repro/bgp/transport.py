"""Reliable byte-stream transport for BGP sessions.

BGP runs over TCP; inside the reproduction, sessions exchange their encoded
bytes over a :class:`Channel` pair — an in-order, reliable duplex stream
with configurable one-way latency, scheduled on the shared simulator. (The
full simulated-TCP implementation in :mod:`repro.netsim.tcp` is reserved for
the data-plane throughput experiments, where congestion behaviour matters;
control-plane fidelity lives in the BGP codec itself, which sees real bytes
either way.)
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.scheduler import Scheduler


class Channel:
    """One endpoint of a reliable duplex byte stream."""

    def __init__(self, scheduler: Scheduler, latency: float = 0.0) -> None:
        self.scheduler = scheduler
        self.latency = latency
        self.peer: Optional["Channel"] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.closed = False
        self.tx_bytes = 0
        self.rx_bytes = 0

    def send(self, data: bytes) -> None:
        """Queue bytes for in-order delivery to the peer."""
        if self.closed or self.peer is None or not data:
            return
        self.tx_bytes += len(data)
        peer = self.peer
        self.scheduler.call_later(
            self.latency, lambda: peer._deliver(data)
        )

    def _deliver(self, data: bytes) -> None:
        if self.closed:
            return
        self.rx_bytes += len(data)
        if self.on_data is not None:
            self.on_data(data)

    def close(self) -> None:
        """Close both directions; the peer is notified after the latency."""
        if self.closed:
            return
        self.closed = True
        peer = self.peer
        if peer is not None and not peer.closed:
            self.scheduler.call_later(self.latency, peer._peer_closed)

    def _peer_closed(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.on_close is not None:
            self.on_close()


def connect_pair(
    scheduler: Scheduler, rtt: float = 0.0
) -> tuple[Channel, Channel]:
    """Create a connected channel pair with the given round-trip time."""
    a = Channel(scheduler, latency=rtt / 2)
    b = Channel(scheduler, latency=rtt / 2)
    a.peer = b
    b.peer = a
    return a, b
