"""BGP path attributes and the route model.

``Route`` is the unit that flows through the whole reproduction: RIBs,
policy engines, the vBGP rewriter, and the security enforcers all consume
and produce routes. Attributes are immutable; manipulation helpers return
new objects (``with_next_hop``, ``prepended`` …) so routes can be shared
safely between tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro import perf
from repro.netsim.addr import IPv4Address, Prefix


class Origin(enum.IntEnum):
    """The ORIGIN well-known mandatory attribute."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class SegmentType(enum.IntEnum):
    """AS_PATH segment types."""

    AS_SET = 1
    AS_SEQUENCE = 2


@dataclass(frozen=True)
class AsPathSegment:
    """One AS_PATH segment: an ordered sequence or an unordered set."""

    kind: SegmentType
    asns: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.asns:
            raise ValueError("empty AS_PATH segment")
        if len(self.asns) > 255:
            raise ValueError("AS_PATH segment exceeds 255 ASNs")
        for asn in self.asns:
            if not 0 < asn < (1 << 32):
                raise ValueError(f"ASN out of range: {asn}")

    @property
    def path_length(self) -> int:
        """RFC 4271 path length: an AS_SET counts as one hop."""
        return 1 if self.kind == SegmentType.AS_SET else len(self.asns)


@dataclass(frozen=True)
class AsPath:
    """An AS_PATH: a tuple of segments, empty for locally originated routes."""

    segments: tuple[AsPathSegment, ...] = ()

    def __hash__(self) -> int:
        # Cached: paths are hashed repeatedly (interning pools, attribute
        # hashing, wire-encode memo keys) and segment-tuple hashing chains
        # through every ASN.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.segments)
            object.__setattr__(self, "_hash", cached)
        return cached

    @classmethod
    def from_asns(cls, *asns: int) -> "AsPath":
        """Build a pure AS_SEQUENCE path (the overwhelmingly common case)."""
        if not asns:
            return cls()
        return cls((AsPathSegment(SegmentType.AS_SEQUENCE, tuple(asns)),))

    @property
    def length(self) -> int:
        return sum(segment.path_length for segment in self.segments)

    @property
    def asns(self) -> tuple[int, ...]:
        """All ASNs in order of appearance (sets flattened)."""
        result: list[int] = []
        for segment in self.segments:
            result.extend(segment.asns)
        return tuple(result)

    @property
    def origin_as(self) -> Optional[int]:
        """The rightmost ASN (the route's originator), if any."""
        flat = self.asns
        return flat[-1] if flat else None

    @property
    def first_as(self) -> Optional[int]:
        flat = self.asns
        return flat[0] if flat else None

    def contains(self, asn: int) -> bool:
        """Loop detection / poison check."""
        return asn in self.asns

    def prepended(self, asn: int, count: int = 1) -> "AsPath":
        """Return a path with ``asn`` prepended ``count`` times."""
        if count < 1:
            return self
        if (
            self.segments
            and self.segments[0].kind == SegmentType.AS_SEQUENCE
            and len(self.segments[0].asns) + count <= 255
        ):
            head = AsPathSegment(
                SegmentType.AS_SEQUENCE,
                (asn,) * count + self.segments[0].asns,
            )
            return AsPath((head,) + self.segments[1:])
        head = AsPathSegment(SegmentType.AS_SEQUENCE, (asn,) * count)
        return AsPath((head,) + self.segments)

    def __str__(self) -> str:
        parts = []
        for segment in self.segments:
            text = " ".join(str(asn) for asn in segment.asns)
            if segment.kind == SegmentType.AS_SET:
                parts.append("{" + text + "}")
            else:
                parts.append(text)
        return " ".join(parts)


@dataclass(frozen=True)
class Community:
    """RFC 1997 community ``asn:value`` (16 bits each)."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn < (1 << 16) or not 0 <= self.value < (1 << 16):
            raise ValueError(f"community out of range: {self.asn}:{self.value}")

    @classmethod
    def parse(cls, text: str) -> "Community":
        asn_text, _, value_text = text.partition(":")
        return cls(int(asn_text), int(value_text))

    def packed(self) -> int:
        return (self.asn << 16) | self.value

    @classmethod
    def from_packed(cls, packed: int) -> "Community":
        return cls(asn=packed >> 16, value=packed & 0xFFFF)

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


@dataclass(frozen=True)
class LargeCommunity:
    """RFC 8092 large community ``global:local1:local2`` (32 bits each)."""

    global_admin: int
    local1: int
    local2: int

    def __post_init__(self) -> None:
        for part in (self.global_admin, self.local1, self.local2):
            if not 0 <= part < (1 << 32):
                raise ValueError(f"large community part out of range: {part}")

    @classmethod
    def parse(cls, text: str) -> "LargeCommunity":
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"malformed large community: {text!r}")
        return cls(int(parts[0]), int(parts[1]), int(parts[2]))

    def __str__(self) -> str:
        return f"{self.global_admin}:{self.local1}:{self.local2}"


@dataclass(frozen=True)
class UnknownAttribute:
    """An attribute this implementation does not interpret.

    Optional transitive unknown attributes must be propagated with the
    partial bit set (RFC 4271 §5) — and are exactly what PEERING's
    capability framework gates (§4.7, "optional BGP transitive attributes").
    """

    type_code: int
    flags: int
    value: bytes

    FLAG_OPTIONAL = 0x80
    FLAG_TRANSITIVE = 0x40
    FLAG_PARTIAL = 0x20
    FLAG_EXTENDED = 0x10

    @property
    def is_optional(self) -> bool:
        return bool(self.flags & self.FLAG_OPTIONAL)

    @property
    def is_transitive(self) -> bool:
        return bool(self.flags & self.FLAG_TRANSITIVE)


@dataclass(frozen=True)
class PathAttributes:
    """The full attribute set carried by a route."""

    origin: Origin = Origin.IGP
    as_path: AsPath = field(default_factory=AsPath)
    next_hop: Optional[IPv4Address] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    atomic_aggregate: bool = False
    aggregator: Optional[tuple[int, IPv4Address]] = None
    communities: frozenset[Community] = frozenset()
    large_communities: frozenset[LargeCommunity] = frozenset()
    unknown: tuple[UnknownAttribute, ...] = ()

    def __hash__(self) -> int:
        # Cached: attribute sets key every hot dict on the control plane
        # (interning pool, wire-encode memo, fan-out batching groups), and
        # the generated hash walks the whole attribute tree each call.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.origin,
                self.as_path,
                self.next_hop,
                self.med,
                self.local_pref,
                self.atomic_aggregate,
                self.aggregator,
                self.communities,
                self.large_communities,
                self.unknown,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached

    def with_next_hop(self, next_hop: Optional[IPv4Address]) -> (
        "PathAttributes"
    ):
        """Fast next-hop rewrite (the datapath's dominant manipulation).

        Builds the copy via the constructor directly: ``dataclasses.replace``
        pays for generic kwargs plumbing on every fan-out.  With the
        ``encode_memo`` flag on, the rewrite is memoized per target next
        hop on this (frozen) instance, so repeated fan-outs of a pooled
        attribute set return the same object — which in turn keeps its
        cached hash and wire encoding warm downstream.
        """
        if perf.FLAGS.encode_memo:
            memo = self.__dict__.get("_nh_memo")
            if memo is None:
                memo = {}
                object.__setattr__(self, "_nh_memo", memo)
            rewritten = memo.get(next_hop)
            if rewritten is None:
                rewritten = self._with_next_hop_uncached(next_hop)
                memo[next_hop] = rewritten
            return rewritten
        return self._with_next_hop_uncached(next_hop)

    def _with_next_hop_uncached(
        self, next_hop: Optional[IPv4Address]
    ) -> "PathAttributes":
        return PathAttributes(
            origin=self.origin,
            as_path=self.as_path,
            next_hop=next_hop,
            med=self.med,
            local_pref=self.local_pref,
            atomic_aggregate=self.atomic_aggregate,
            aggregator=self.aggregator,
            communities=self.communities,
            large_communities=self.large_communities,
            unknown=self.unknown,
        )


# ---------------------------------------------------------------------------
# Interning pools (Fig. 6a memory): RIBs holding equal attribute sets share
# one object.  Real-world churn concentrates on a small set of attribute
# combinations (Krenc et al.), so the pools stay small and hot.
# ---------------------------------------------------------------------------

_INTERN_POOL_CAP = 16384
_AS_PATH_POOL: dict[AsPath, AsPath] = {}
_ATTRIBUTES_POOL: dict[PathAttributes, PathAttributes] = {}


def intern_as_path(path: AsPath) -> AsPath:
    """Return the canonical shared instance for an equal ``AsPath``."""
    if not perf.FLAGS.intern_attrs:
        return path
    pooled = _AS_PATH_POOL.get(path)
    if pooled is not None:
        return pooled
    if len(_AS_PATH_POOL) >= _INTERN_POOL_CAP:
        _AS_PATH_POOL.clear()
    _AS_PATH_POOL[path] = path
    return path


def intern_attributes(attributes: PathAttributes) -> PathAttributes:
    """Return the canonical shared instance for equal ``PathAttributes``."""
    if not perf.FLAGS.intern_attrs:
        return attributes
    pooled = _ATTRIBUTES_POOL.get(attributes)
    if pooled is not None:
        return pooled
    if len(_ATTRIBUTES_POOL) >= _INTERN_POOL_CAP:
        _ATTRIBUTES_POOL.clear()
    _ATTRIBUTES_POOL[attributes] = attributes
    return attributes


def _clear_intern_pools() -> None:
    _AS_PATH_POOL.clear()
    _ATTRIBUTES_POOL.clear()


perf.register_cache_clearer(_clear_intern_pools)


@dataclass(frozen=True)
class Route:
    """A BGP route: one prefix + one attribute set (+ ADD-PATH id).

    ``path_id`` distinguishes multiple routes for the same prefix announced
    over one ADD-PATH session — the mechanism vBGP uses to give experiments
    full visibility (§3.2.1).
    """

    prefix: Prefix
    attributes: PathAttributes
    path_id: Optional[int] = None

    # -- convenience accessors ------------------------------------------

    @property
    def as_path(self) -> AsPath:
        return self.attributes.as_path

    @property
    def next_hop(self) -> Optional[IPv4Address]:
        return self.attributes.next_hop

    @property
    def communities(self) -> frozenset[Community]:
        return self.attributes.communities

    @property
    def origin_as(self) -> Optional[int]:
        return self.attributes.as_path.origin_as

    # -- manipulation helpers (all return new Route objects) -------------

    def with_attributes(self, **changes) -> "Route":
        return replace(self, attributes=replace(self.attributes, **changes))

    def with_next_hop(self, next_hop: IPv4Address) -> "Route":
        return replace(self, attributes=self.attributes.with_next_hop(next_hop))

    def with_path_id(self, path_id: Optional[int]) -> "Route":
        return replace(self, path_id=path_id)

    def prepended(self, asn: int, count: int = 1) -> "Route":
        return self.with_attributes(
            as_path=self.attributes.as_path.prepended(asn, count)
        )

    def with_communities(self, communities: Iterable[Community]) -> "Route":
        return self.with_attributes(communities=frozenset(communities))

    def add_communities(self, *communities: Community) -> "Route":
        return self.with_attributes(
            communities=self.attributes.communities | set(communities)
        )

    def without_communities(self, *communities: Community) -> "Route":
        return self.with_attributes(
            communities=self.attributes.communities - set(communities)
        )

    def with_local_pref(self, local_pref: int) -> "Route":
        return self.with_attributes(local_pref=local_pref)

    def without_unknown_attributes(self) -> "Route":
        return self.with_attributes(unknown=())

    def __str__(self) -> str:
        path = str(self.as_path) or "(local)"
        suffix = f" id {self.path_id}" if self.path_id is not None else ""
        return f"{self.prefix} via {self.next_hop} path [{path}]{suffix}"


def originate(
    prefix: Prefix,
    origin_asn: int,
    next_hop: IPv4Address,
    communities: Iterable[Community] = (),
) -> Route:
    """Create a route as it would appear *received from* AS ``origin_asn``.

    Useful for injecting synthetic background routes. For a route a speaker
    originates itself, use :func:`local_route` — the speaker's export logic
    prepends its own ASN on eBGP sessions.
    """
    return Route(
        prefix=prefix,
        attributes=PathAttributes(
            origin=Origin.IGP,
            as_path=AsPath.from_asns(origin_asn),
            next_hop=next_hop,
            communities=frozenset(communities),
        ),
    )


def local_route(
    prefix: Prefix,
    next_hop: Optional[IPv4Address] = None,
    communities: Iterable[Community] = (),
) -> Route:
    """Create a locally originated route (empty AS path)."""
    return Route(
        prefix=prefix,
        attributes=PathAttributes(
            origin=Origin.IGP,
            next_hop=next_hop,
            communities=frozenset(communities),
        ),
    )
