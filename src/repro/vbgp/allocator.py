"""Virtual IP/MAC/table allocation for vBGP neighbors.

Each external BGP neighbor of the platform is assigned, platform-wide:

* a **global id** (from the :class:`GlobalNeighborRegistry`),
* a **global IP** in ``127.127.0.0/16`` used as the BGP next hop on the
  backbone (§4.4: "a common pool of IPs to assign a unique global (to
  Peering) IP to each external neighbor"),
* a **virtual MAC** in the locally-administered range, deterministic in the
  global id so the MAC-encoded routing decision survives backbone hops,
* a **kernel table id**, also deterministic in the global id.

Each vBGP node additionally assigns the neighbor a **local virtual IP** in
``127.65.0.0/16`` (Figure 2's ``127.65.0.1``/``127.65.0.2``) used as the
next hop in routes exported to experiments attached at that node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress

LOCAL_POOL = IPv4Prefix.parse("127.65.0.0/16")
GLOBAL_POOL = IPv4Prefix.parse("127.127.0.0/16")
VMAC_PREFIX = 0x027F_0000_0000  # locally administered, unicast
TABLE_BASE = 1000


def global_neighbor_ip(global_id: int) -> IPv4Address:
    """Backbone-wide next-hop IP for the neighbor (127.127.x.y)."""
    if not 0 < global_id < GLOBAL_POOL.num_addresses - 1:
        raise ValueError(f"global id out of range: {global_id}")
    return GLOBAL_POOL.address_at(global_id)


def global_neighbor_mac(global_id: int) -> MacAddress:
    """Deterministic virtual MAC encoding the neighbor's global id.

    Determinism across nodes is what lets a frame's destination MAC keep
    meaning after it crosses the backbone (§4.4).
    """
    if not 0 < global_id < (1 << 16):
        raise ValueError(f"global id out of range: {global_id}")
    return MacAddress(VMAC_PREFIX | global_id)


def neighbor_mac_global_id(mac: MacAddress) -> Optional[int]:
    """Reverse of :func:`global_neighbor_mac`; None for foreign MACs."""
    if mac.value & ~0xFFFF != VMAC_PREFIX:
        return None
    global_id = mac.value & 0xFFFF
    return global_id or None


def neighbor_table_id(global_id: int) -> int:
    """Kernel routing-table id for the neighbor (same on every node)."""
    return TABLE_BASE + global_id


@dataclass(frozen=True)
class VirtualNeighbor:
    """The full virtual identity of one platform neighbor at one node."""

    global_id: int
    local_ip: IPv4Address  # 127.65.0.x, node-local
    global_ip: IPv4Address  # 127.127.x.y, platform-wide
    mac: MacAddress  # deterministic in global_id
    table_id: int


class GlobalNeighborRegistry:
    """Platform-wide assignment of global ids to external neighbors.

    In the real platform this lives in the central configuration database
    (§5); keys are ``(pop_name, neighbor_name)``.
    """

    def __init__(self) -> None:
        self._ids: dict[tuple[str, str], int] = {}
        self._next = 1

    def register(self, pop: str, neighbor: str) -> int:
        key = (pop, neighbor)
        if key not in self._ids:
            self._ids[key] = self._next
            self._next += 1
        return self._ids[key]

    def preassign(self, pop: str, neighbor: str, global_id: int) -> int:
        """Pin a neighbor's global id ahead of :meth:`register`.

        The fleet compiler (DESIGN.md §6k) computes the whole fleet's id
        map once and pins it into every per-PoP artifact, so each PoP
        process — holding only its own registry instance — still agrees
        with every other process (and with the in-process reference) on
        the gid behind every virtual MAC / global IP / table id.
        Re-pinning the same value is idempotent; a conflicting value or
        an out-of-range id raises.
        """
        if not 0 < global_id < (1 << 16):
            raise ValueError(f"global id out of range: {global_id}")
        key = (pop, neighbor)
        existing = self._ids.get(key)
        if existing is not None and existing != global_id:
            raise ValueError(
                f"{key} already registered as gid {existing}, "
                f"cannot preassign {global_id}"
            )
        self._ids[key] = global_id
        self._next = max(self._next, global_id + 1)
        return global_id

    def lookup(self, pop: str, neighbor: str) -> Optional[int]:
        return self._ids.get((pop, neighbor))

    def owner(self, global_id: int) -> Optional[tuple[str, str]]:
        for key, value in self._ids.items():
            if value == global_id:
                return key
        return None

    def __len__(self) -> int:
        return len(self._ids)


class LocalVipAllocator:
    """Node-local allocation of 127.65.0.0/16 virtual IPs by global id."""

    def __init__(self) -> None:
        self._by_gid: dict[int, IPv4Address] = {}
        self._next = 1

    def vip_for(self, global_id: int) -> IPv4Address:
        if global_id not in self._by_gid:
            if self._next >= LOCAL_POOL.num_addresses - 1:
                raise RuntimeError("local virtual IP pool exhausted")
            self._by_gid[global_id] = LOCAL_POOL.address_at(self._next)
            self._next += 1
        return self._by_gid[global_id]

    def gid_for(self, vip: IPv4Address) -> Optional[int]:
        for gid, address in self._by_gid.items():
            if address == vip:
                return gid
        return None

    def virtual_neighbor(self, global_id: int) -> VirtualNeighbor:
        return VirtualNeighbor(
            global_id=global_id,
            local_ip=self.vip_for(global_id),
            global_ip=global_neighbor_ip(global_id),
            mac=global_neighbor_mac(global_id),
            table_id=neighbor_table_id(global_id),
        )
