"""The vBGP announcement-control community scheme (§3.2.1).

Experiments attach communities to steer which neighbors an announcement is
exported to:

* ``47065:<gid>`` — *whitelist*: announce only to the neighbor with global
  id ``gid`` (multiple whitelist communities union),
* ``47065:<10000+pop>`` — whitelist every neighbor at PoP number ``pop``,
* ``47064:<gid>`` — *blacklist*: do not announce to that neighbor,
* no control communities — announce to all neighbors (the default).

Control communities are consumed by vBGP and stripped before export; other
communities are subject to the experiment's capability grants (§4.7).
"""

from __future__ import annotations

from typing import Iterable

from repro.bgp.attributes import Community, Route

ANNOUNCE_ASN = 47065
BLOCK_ASN = 47064
POP_OFFSET = 10000


def announce_to_neighbor(global_id: int) -> Community:
    """Whitelist community: export only to this neighbor."""
    return Community(ANNOUNCE_ASN, global_id)


def announce_to_pop(pop_id: int) -> Community:
    """Whitelist community: export to every neighbor at this PoP."""
    return Community(ANNOUNCE_ASN, POP_OFFSET + pop_id)


def block_neighbor(global_id: int) -> Community:
    """Blacklist community: never export to this neighbor."""
    return Community(BLOCK_ASN, global_id)


def is_control(community: Community) -> bool:
    return community.asn in (ANNOUNCE_ASN, BLOCK_ASN)


def strip_control(route: Route) -> Route:
    """Remove vBGP control communities before exporting to the Internet."""
    control = {c for c in route.communities if is_control(c)}
    if not control:
        return route
    return route.without_communities(*control)


def select_targets(
    route: Route,
    neighbors: Iterable[tuple[int, int]],
) -> set[int]:
    """Choose export targets for a route.

    ``neighbors`` yields ``(global_id, pop_id)`` pairs for every candidate
    neighbor. Returns the selected global ids per the scheme above.
    """
    whitelist_gids: set[int] = set()
    whitelist_pops: set[int] = set()
    blacklist: set[int] = set()
    for community in route.communities:
        if community.asn == ANNOUNCE_ASN:
            if community.value >= POP_OFFSET:
                whitelist_pops.add(community.value - POP_OFFSET)
            else:
                whitelist_gids.add(community.value)
        elif community.asn == BLOCK_ASN:
            blacklist.add(community.value)
    selected: set[int] = set()
    restrict = bool(whitelist_gids or whitelist_pops)
    for global_id, pop_id in neighbors:
        if global_id in blacklist:
            continue
        if restrict and global_id not in whitelist_gids and (
            pop_id not in whitelist_pops
        ):
            continue
        selected.add(global_id)
    return selected
