"""The vBGP node: one virtualized BGP edge router (§3, §4.4).

A node terminates three kinds of BGP sessions:

* **upstream** — the PoP's real neighbors (transits, peers, route
  servers); their routes are installed into per-neighbor kernel tables and
  fanned out to experiments and backbone peers;
* **experiment** — ADD-PATH sessions carrying *all* known routes to each
  experiment with next hops rewritten to per-neighbor virtual IPs;
  announcements from experiments pass through the control-plane security
  enforcer and are exported to neighbors selected by control communities;
* **backbone** — an iBGP-style mesh with other vBGP nodes over which both
  neighbor routes (next hop = the neighbor's global 127.127/16 IP) and
  experiment routes (next hop = the announcing node's backbone address)
  propagate, extending per-packet neighbor selection platform-wide.

On the data plane the node (a) answers ARP for virtual IPs with the
deterministic per-neighbor virtual MACs, (b) demultiplexes ingress frames
by destination MAC into the matching per-neighbor table (a policy-routing
rule per neighbor), and (c) intercepts traffic destined to experiment
prefixes, rewriting the source MAC to the delivering neighbor's virtual
MAC before handing the frame to the experiment's tunnel (§3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

from repro import perf
from repro.bgp.attributes import PathAttributes, Route
from repro.bgp.messages import (
    HEADER_SIZE,
    MAX_MESSAGE_SIZE,
    UpdateMessage,
    attributes_wire_length,
)
from repro.bgp.session import BgpSession, SessionConfig
from repro.bgp.supervisor import SessionSupervisor, SupervisorConfig
from repro.bgp.transport import Channel
from repro.netsim.addr import IPv4Address, MacAddress, Prefix
from repro.netsim.frames import EtherType, EthernetFrame, IPv4Packet
from repro.netsim.lpm import LpmTable
from repro.netsim.stack import (
    Interface,
    KernelRoute,
    NetworkStack,
    RoutingRule,
)
from repro.shard.engine import DirectExecutor, ShardedFanout
from repro.shard.partition import make_partition
from repro.sim.scheduler import Scheduler
from repro.vbgp.allocator import (
    GLOBAL_POOL,
    GlobalNeighborRegistry,
    LocalVipAllocator,
    VirtualNeighbor,
    neighbor_mac_global_id,
)
from repro.vbgp.communities import select_targets, strip_control

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub

RULE_PRIORITY_VMAC = 100

_RIB_MISS = object()


class PathRib:
    """A per-neighbor Adj-RIB-In keyed by ``(prefix, path id)``.

    Drop-in for the plain dict it replaces, but additionally maintains a
    per-prefix reference count so "does any path for this prefix remain?"
    is O(1).  The previous ``any(key[0] == prefix for key in rib)`` scan
    made every withdrawal O(table size) — the dominant cost of withdrawal
    storms against full-table neighbors.
    """

    __slots__ = ("_routes", "_prefix_counts")

    def __init__(self) -> None:
        self._routes: dict[tuple[Prefix, Optional[int]], Route] = {}
        self._prefix_counts: dict[Prefix, int] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[tuple[Prefix, Optional[int]]]:
        return iter(self._routes)

    def __contains__(self, key: tuple[Prefix, Optional[int]]) -> bool:
        return key in self._routes

    def __getitem__(self, key: tuple[Prefix, Optional[int]]) -> Route:
        return self._routes[key]

    def __setitem__(self, key: tuple[Prefix, Optional[int]],
                    route: Route) -> None:
        if key not in self._routes:
            prefix = key[0]
            self._prefix_counts[prefix] = (
                self._prefix_counts.get(prefix, 0) + 1
            )
        self._routes[key] = route

    def __bool__(self) -> bool:
        return bool(self._routes)

    def get(self, key: tuple[Prefix, Optional[int]], default=None):
        return self._routes.get(key, default)

    def pop(self, key: tuple[Prefix, Optional[int]], default=None):
        route = self._routes.pop(key, _RIB_MISS)
        if route is _RIB_MISS:
            return default
        prefix = key[0]
        remaining = self._prefix_counts.get(prefix, 0) - 1
        if remaining <= 0:
            self._prefix_counts.pop(prefix, None)
        else:
            self._prefix_counts[prefix] = remaining
        return route

    def clear(self) -> None:
        self._routes.clear()
        self._prefix_counts.clear()

    def keys(self):
        return self._routes.keys()

    def values(self):
        return self._routes.values()

    def items(self):
        return self._routes.items()

    def has_prefix(self, prefix: Prefix) -> bool:
        """O(1): does at least one path for ``prefix`` remain?"""
        return prefix in self._prefix_counts


@dataclass
class UpstreamNeighbor:
    """A real BGP neighbor of this PoP."""

    name: str
    peer_asn: int
    peer_address: IPv4Address
    peer_mac: MacAddress
    kind: str  # "transit" | "peer" | "route-server"
    virtual: VirtualNeighbor
    session: Optional[BgpSession] = None
    # Routes received: (prefix, peer path id) -> route.
    rib: PathRib = field(default_factory=PathRib)
    # Session-rebuild parameters (supervisor re-dials reuse them).
    addpath: bool = False
    graceful_restart: bool = False
    restart_time: int = 120
    # GR receiver state: keys retained as stale after a non-admin close.
    stale_keys: set = field(default_factory=set)
    stale_event: object = None
    supervisor: Optional[SessionSupervisor] = None


@dataclass
class RemoteNeighbor:
    """A neighbor at another PoP, learned over the backbone."""

    global_id: int
    virtual: VirtualNeighbor
    rib: PathRib = field(default_factory=PathRib)


@dataclass
class ExperimentAttachment:
    """One experiment's presence at this node."""

    name: str
    asn: int
    prefixes: tuple[Prefix, ...]
    tunnel_ip: IPv4Address
    tunnel_mac: MacAddress
    session: Optional[BgpSession] = None
    # Announcements accepted from the experiment: (prefix, path id) -> route.
    announced: dict[tuple[Prefix, Optional[int]], Route] = field(
        default_factory=dict
    )
    # Fan-out path-id allocation: (gid, prefix, source path id) -> path id.
    path_ids: dict[tuple[int, Prefix, Optional[int]], int] = field(
        default_factory=dict
    )
    next_path_id: int = 1

    def path_id_for(self, gid: int, prefix: Prefix,
                    source_id: Optional[int]) -> int:
        path_id = self.path_ids.get((gid, prefix, source_id))
        if path_id is None:
            path_id = self.path_ids[(gid, prefix, source_id)] = (
                self.next_path_id
            )
            self.next_path_id += 1
        return path_id

    def release_path_id(self, gid: int, prefix: Prefix,
                        source_id: Optional[int]) -> Optional[int]:
        return self.path_ids.pop((gid, prefix, source_id), None)


ControlEnforcer = Callable[..., object]


class VbgpNode:
    """One vBGP instance (one PoP server)."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        pop_id: int,
        platform_asn: int,
        router_id: IPv4Address,
        stack: NetworkStack,
        registry: GlobalNeighborRegistry,
        upstream_iface: str = "ixp0",
        exp_iface: str = "exp0",
        backbone_iface: Optional[str] = None,
        backbone_address: Optional[IPv4Address] = None,
        control_enforcer: Optional[object] = None,
        data_enforcer: Optional[object] = None,
        telemetry: Optional["TelemetryHub"] = None,
        shards: Optional[int] = None,
        shard_partition: Optional[str] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.pop_id = pop_id
        self.platform_asn = platform_asn
        self.router_id = router_id
        self.stack = stack
        self.registry = registry
        self.upstream_iface = upstream_iface
        self.exp_iface = exp_iface
        self.backbone_iface = backbone_iface
        self.backbone_address = backbone_address
        self.control_enforcer = control_enforcer
        self.data_enforcer = data_enforcer

        self.vips = LocalVipAllocator()
        self.upstreams: dict[str, UpstreamNeighbor] = {}
        self.remote_neighbors: dict[int, RemoteNeighbor] = {}
        self.experiments: dict[str, ExperimentAttachment] = {}
        self.backbone_peers: dict[str, BgpSession] = {}
        # Experiment prefixes (local and remote) for data-plane intercept.
        self.exp_prefixes: LpmTable[dict] = LpmTable()
        # Remote experiments' routes learned over the backbone, by prefix.
        self.remote_exp_routes: dict[Prefix, Route] = {}
        # MAC -> upstream neighbor, to attribute ingress traffic.
        self._mac_to_gid: dict[MacAddress, int] = {}
        self.counters = {
            "updates_from_upstream": 0,
            "updates_from_experiments": 0,
            "updates_to_experiments": 0,
            "updates_to_neighbors": 0,
            "updates_to_backbone": 0,
            "routes_installed": 0,
            "routes_removed": 0,
            "announcements_blocked": 0,
            "frames_to_experiments": 0,
            "enforcer_failures": 0,
            "supervisor_reconnects": 0,
            "gr_routes_retained": 0,
            "gr_routes_flushed": 0,
        }
        self.telemetry = telemetry
        # Sharded fan-out (repro.shard): node-level overrides win over
        # the global ``perf.FLAGS.shards`` knob; the engine itself is
        # built lazily on the first sharded update.
        self._shards_override = shards
        self._shard_partition_override = shard_partition
        self._direct_exec = DirectExecutor(self)
        self._shard_engine: Optional[ShardedFanout] = None
        # Overload governor (repro.overload, §6i).  ``None`` (the
        # default) keeps the pre-§6i unbounded ingress path.
        self.overload = None
        self._m_frames_by_neighbor = None
        self._m_updates_by_neighbor = None
        if telemetry is not None:
            self._init_telemetry(telemetry)
        self.stack.ingress_hooks.append(self._intercept_inbound)
        if self.data_enforcer is not None:
            self.stack.ingress_hooks.append(self._data_enforce)

    def _init_telemetry(self, telemetry: "TelemetryHub") -> None:
        """Declare the node's metric families (disabled ⇒ never called)."""
        registry = telemetry.registry
        pipeline = registry.gauge(
            "vbgp_pipeline_counters",
            "vBGP pipeline counters, mirrored from VbgpNode.counters",
            labels=("node", "counter"),
        )
        for key in self.counters:
            pipeline.labels(self.name, key).set_function(
                lambda k=key: self.counters[k]
            )
        sizes = registry.gauge(
            "vbgp_node_size",
            "vBGP table/attachment sizes, evaluated at scrape time",
            labels=("node", "what"),
        )
        for what, fn in (
            ("fib_entries", self.fib_entry_count),
            ("known_routes", lambda: len(self.known_routes())),
            ("experiments", lambda: len(self.experiments)),
            ("upstreams", lambda: len(self.upstreams)),
            ("remote_neighbors", lambda: len(self.remote_neighbors)),
        ):
            sizes.labels(self.name, what).set_function(fn)
        self._m_frames_by_neighbor = registry.counter(
            "vbgp_frames_to_experiments",
            "Frames delivered to experiments, by delivering neighbor",
            labels=("node", "neighbor"),
        )
        self._m_updates_by_neighbor = registry.counter(
            "vbgp_updates_to_neighbors",
            "Experiment announcements exported, by upstream neighbor",
            labels=("node", "neighbor"),
        )

    # ==================================================================
    # Upstream neighbors
    # ==================================================================

    def enable_backbone(self, iface: str, address: IPv4Address) -> None:
        """Configure backbone attachment; retro-provisions the backbone
        side (proxy-ARP for global IPs, extra MACs) of existing neighbors."""
        self.backbone_iface = iface
        self.backbone_address = address
        backbone = self.stack.interfaces.get(iface)
        if backbone is None:
            return
        for neighbor in self.upstreams.values():
            backbone.extra_macs.add(neighbor.virtual.mac)
            self.stack.add_proxy_arp(
                iface, neighbor.virtual.global_ip, neighbor.virtual.mac
            )

    def attach_upstream(
        self,
        name: str,
        peer_asn: int,
        peer_address: IPv4Address,
        peer_mac: MacAddress,
        channel: Channel,
        kind: str = "peer",
        addpath: bool = False,
        graceful_restart: bool = False,
        restart_time: int = 120,
        channel_factory: Optional[Callable[[], Optional[Channel]]] = None,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> UpstreamNeighbor:
        """Register a real neighbor and start its BGP session.

        With ``channel_factory``, a :class:`SessionSupervisor` re-dials
        the neighbor after non-administrative session loss (exponential
        backoff, deterministic jitter, flap damping).  With
        ``graceful_restart``, the session offers RFC 4724 and a reset
        retains the neighbor's routes (marked stale) instead of storming
        withdrawals toward experiments and the backbone.
        """
        if name in self.upstreams:
            raise ValueError(f"duplicate upstream {name!r} at {self.name}")
        global_id = self.registry.register(self.name, name)
        virtual = self.vips.virtual_neighbor(global_id)
        neighbor = UpstreamNeighbor(
            name=name,
            peer_asn=peer_asn,
            peer_address=peer_address,
            peer_mac=peer_mac,
            kind=kind,
            virtual=virtual,
            addpath=addpath,
            graceful_restart=graceful_restart,
            restart_time=restart_time,
        )
        self._provision_virtual(virtual, next_hop=peer_address,
                                out_iface=self.upstream_iface)
        self._mac_to_gid[peer_mac] = global_id
        self.stack.add_static_arp(peer_address, peer_mac, self.upstream_iface)
        session = self._upstream_session(neighbor, channel)
        self.upstreams[name] = neighbor
        if channel_factory is not None:
            neighbor.supervisor = SessionSupervisor(
                self.scheduler,
                peer_key=name,
                channel_factory=channel_factory,
                session_factory=lambda ch, n=neighbor: (
                    self._upstream_session(n, ch)
                ),
                config=supervisor_config,
                telemetry=self.telemetry,
            )
            neighbor.supervisor.adopt(session)
        session.start()
        return neighbor

    def _upstream_session(self, neighbor: UpstreamNeighbor,
                          channel: Channel) -> BgpSession:
        """Build (or rebuild, on supervisor re-dial) an upstream session."""
        name = neighbor.name
        session = BgpSession(
            self.scheduler,
            SessionConfig(
                local_asn=self.platform_asn,
                local_id=self.router_id,
                peer_asn=neighbor.peer_asn,
                addpath=neighbor.addpath,
                description=name,
                graceful_restart=neighbor.graceful_restart,
                restart_time=neighbor.restart_time,
            ),
            channel,
            on_update=lambda _s, update, n=name: self._upstream_update(n, update),
            on_established=lambda _s, n=name: self._upstream_established(n),
            on_close=lambda _s, reason, n=name: self._upstream_closed(n, reason),
            on_end_of_rib=lambda _s, n=name: self._upstream_end_of_rib(n),
            telemetry=self.telemetry,
        )
        if neighbor.supervisor is not None:
            self.counters["supervisor_reconnects"] += 1
        neighbor.session = session
        if self.overload is not None:
            # The per-neighbor queue is owned by the governor, so it
            # (and its shed accounting) survives session rebuilds.
            session.set_ingress_queue(self.overload.queue_for(name))
        return session

    def _provision_virtual(self, virtual: VirtualNeighbor,
                           next_hop: IPv4Address, out_iface: str) -> None:
        """Install the data-plane plumbing for one (possibly remote)
        neighbor: extra MAC, proxy-ARP, and the dMAC-keyed table rule."""
        exp = self.stack.interfaces.get(self.exp_iface)
        if exp is not None:
            exp.extra_macs.add(virtual.mac)
            self.stack.add_proxy_arp(self.exp_iface, virtual.local_ip,
                                     virtual.mac)
        if self.backbone_iface is not None:
            backbone = self.stack.interfaces.get(self.backbone_iface)
            if backbone is not None:
                backbone.extra_macs.add(virtual.mac)
                self.stack.add_proxy_arp(
                    self.backbone_iface, virtual.global_ip, virtual.mac
                )
        self.stack.add_rule(
            RoutingRule(
                priority=RULE_PRIORITY_VMAC,
                table=virtual.table_id,
                match_dmac=virtual.mac,
            )
        )
        # Ensure the table exists even before routes arrive.
        self.stack.table(virtual.table_id)

    def _upstream_update(self, name: str, update: UpdateMessage) -> None:
        tele = self.telemetry
        if tele is None:
            self._apply_upstream_update(name, update)
            return
        token = tele.tracer.begin(
            "vbgp.upstream_update", node=self.name, neighbor=name
        )
        try:
            self._apply_upstream_update(name, update)
        finally:
            tele.tracer.end(token)

    def _apply_upstream_update(self, name: str,
                               update: UpdateMessage) -> None:
        neighbor = self.upstreams.get(name)
        if neighbor is None:
            return
        self.counters["updates_from_upstream"] += 1
        engine = self._shard_engine_if_enabled()
        if engine is not None:
            engine.submit(neighbor, update)
        else:
            self._process_upstream_changes(neighbor, update,
                                           self._direct_exec)

    def _process_upstream_changes(self, neighbor: UpstreamNeighbor,
                                  update, ex) -> None:
        """The fan-out pipeline body, unsharded and sharded alike.

        ``update`` is either a full :class:`UpdateMessage` or a
        prefix-partitioned slice of one (anything with ``withdrawn`` and
        ``routes()``).  Every stateful effect — kernel mutation, session
        send, counter bump — flows through the executor ``ex``:
        :class:`~repro.shard.engine.DirectExecutor` applies immediately
        (the ``shards=1`` reference), a shard emitter buffers the ops
        for the merge layer.
        """
        gid = neighbor.virtual.global_id
        removed: list[tuple[Prefix, Optional[int]]] = []
        for prefix, path_id in update.withdrawn:
            if neighbor.rib.pop((prefix, path_id), None) is not None:
                removed.append((prefix, path_id))
                if not neighbor.rib.has_prefix(prefix):
                    ex.remove_route(prefix,
                                    table_id=neighbor.virtual.table_id)
        announced = update.routes()
        for route in announced:
            neighbor.rib[(route.prefix, route.path_id)] = route
            # A refreshed route is no longer stale (RFC 4724 receiver).
            if neighbor.stale_keys:
                neighbor.stale_keys.discard((route.prefix, route.path_id))
            # Route servers are transparent (RFC 7947): the next hop is the
            # member router on the IXP LAN, not the server itself.
            next_hop = neighbor.peer_address
            if neighbor.kind == "route-server" and route.next_hop is not None:
                next_hop = route.next_hop
            ex.add_route(
                KernelRoute(
                    prefix=route.prefix,
                    out_iface=self.upstream_iface,
                    next_hop=next_hop,
                ),
                table_id=neighbor.virtual.table_id,
            )
        # Fan out to experiments with the local virtual IP as next hop.
        # The attribute grouping depends only on the announced routes, so
        # compute it once here instead of once per experiment.
        groups = (
            _group_by_attributes(announced)
            if announced and perf.FLAGS.fanout_batch and self.experiments
            else None
        )
        for exp in self.experiments.values():
            self._fanout(exp, gid, neighbor.virtual.local_ip, announced,
                         removed, ex=ex, groups=groups)
        # Propagate over the backbone with the neighbor's global IP.
        self._backbone_export(gid, announced, removed, ex=ex)

    def _upstream_established(self, name: str) -> None:
        """A (re-)established upstream: re-export experiment state to it."""
        neighbor = self.upstreams.get(name)
        if neighbor is None:
            return
        gid = neighbor.virtual.global_id
        for exp in self.experiments.values():
            for route in exp.announced.values():
                if gid in self._neighbor_targets(route):
                    self._export_to_neighbor(neighbor, route)
        for route in self.remote_exp_routes.values():
            if gid in self._remote_targets(route):
                self._export_to_neighbor(neighbor, route)
        session = neighbor.session
        if session is not None and session.gr_negotiated:
            # RFC 4724: close the (re-)transmission with End-of-RIB so
            # the restarted peer can flush anything still stale.
            session.send_end_of_rib()

    def _upstream_closed(self, name: str, _reason: str) -> None:
        neighbor = self.upstreams.get(name)
        if neighbor is None:
            return
        session = neighbor.session
        if (
            session is not None
            and session.gr_negotiated
            and not session.closed_admin
            and session.peer_restart_time > 0
            and len(neighbor.rib) > 0
        ):
            # Graceful Restart receiver mode: retain the neighbor's
            # routes (and its kernel table) marked stale — no withdraw
            # storm toward experiments or the backbone.  Flushed when
            # the restart timer expires or a refreshed RIB's End-of-RIB
            # arrives (§4.7 fail-closed: a peer that never returns does
            # not keep stale state forever).
            neighbor.stale_keys = set(neighbor.rib)
            self.counters["gr_routes_retained"] += len(neighbor.stale_keys)
            if neighbor.stale_event is not None:
                neighbor.stale_event.cancel()
            neighbor.stale_event = self.scheduler.call_later(
                float(session.peer_restart_time),
                lambda n=name: self._upstream_stale_expired(n),
            )
            self._resilience_event(
                name, "gr-stale",
                f"{len(neighbor.stale_keys)} routes retained for "
                f"{session.peer_restart_time}s",
            )
            return
        keys = list(neighbor.rib)
        neighbor.rib.clear()
        self._flush_upstream(neighbor, keys)
        neighbor.stale_keys = set()
        if neighbor.stale_event is not None:
            neighbor.stale_event.cancel()
            neighbor.stale_event = None

    def _upstream_end_of_rib(self, name: str) -> None:
        """Restarted peer finished re-sending: flush leftover stale keys."""
        neighbor = self.upstreams.get(name)
        if neighbor is None:
            return
        if neighbor.stale_event is not None:
            neighbor.stale_event.cancel()
            neighbor.stale_event = None
        self._flush_stale_upstream(neighbor, "gr-flush-eor")

    def _upstream_stale_expired(self, name: str) -> None:
        """Restart timer ran out without a refreshed RIB: fail closed."""
        neighbor = self.upstreams.get(name)
        if neighbor is None:
            return
        neighbor.stale_event = None
        self._flush_stale_upstream(neighbor, "gr-flush-expired")

    def _flush_stale_upstream(self, neighbor: UpstreamNeighbor,
                              event: str) -> None:
        remaining = neighbor.stale_keys
        neighbor.stale_keys = set()
        if not remaining:
            return
        keys = [key for key in remaining if neighbor.rib.pop(key, None)
                is not None]
        self.counters["gr_routes_flushed"] += len(keys)
        self._flush_upstream(neighbor, keys)
        self._resilience_event(
            neighbor.name, event, f"{len(keys)} stale routes flushed"
        )

    def _flush_upstream(self, neighbor: UpstreamNeighbor,
                        keys: list) -> None:
        """Remove kernel routes for ``keys`` and withdraw them everywhere."""
        if not keys:
            return
        for prefix, _path_id in keys:
            if neighbor.rib.has_prefix(prefix):
                continue  # another path for the prefix survives
            if self.stack.remove_route(prefix,
                                       table_id=neighbor.virtual.table_id):
                self.counters["routes_removed"] += 1
        gid = neighbor.virtual.global_id
        for exp in self.experiments.values():
            self._fanout(exp, gid, neighbor.virtual.local_ip, [], keys)
        self._backbone_export(gid, [], keys)

    def _resilience_event(self, peer: str, event: str, detail: str) -> None:
        tele = self.telemetry
        if tele is not None:
            from repro.telemetry.station import ResilienceEvent
            tele.station.publish(ResilienceEvent(
                peer=peer, time=self.scheduler.now,
                event=event, detail=detail,
            ))

    # ==================================================================
    # Overload resilience (repro.overload, DESIGN.md §6i)
    # ==================================================================

    def enable_overload(self, governor) -> None:
        """Install the overload governor on this node (opt-in).

        Existing upstream sessions get bounded ingress queues, the
        shard engine (if any) gets bounded inboxes, breaker trips
        quarantine the offending neighbor's supervisor, and shard-inbox
        saturation becomes backpressure that holds queue delivery at
        the edge.
        """
        self.overload = governor
        limit = governor.policy.shard_inbox_limit
        if limit is not None:
            governor.backpressure = (
                lambda: self.shard_pending() > limit
            )
        governor.on_breaker_open = self._overload_quarantine
        for neighbor in self.upstreams.values():
            if neighbor.session is not None:
                neighbor.session.set_ingress_queue(
                    governor.queue_for(neighbor.name)
                )
        if self._shard_engine is not None:
            self._configure_engine_overload(self._shard_engine)

    def _overload_quarantine(self, peer_key: str, open_time: float) -> None:
        """A breaker opened: keep that neighbor down for its open window."""
        neighbor = self.upstreams.get(peer_key)
        if neighbor is not None and neighbor.supervisor is not None:
            neighbor.supervisor.quarantine(open_time)

    def _configure_engine_overload(self, engine: ShardedFanout) -> None:
        governor = self.overload
        if governor is not None:
            engine.inbox_limit = governor.policy.shard_inbox_limit
            engine.on_shed = governor.record_shard_shed

    # ==================================================================
    # Experiments
    # ==================================================================

    def attach_experiment(
        self,
        name: str,
        asn: int,
        prefixes: Iterable[Prefix],
        tunnel_ip: IPv4Address,
        tunnel_mac: MacAddress,
        channel: Channel,
    ) -> ExperimentAttachment:
        """Attach an experiment over its (VPN) tunnel and start BGP."""
        if name in self.experiments:
            raise ValueError(f"experiment {name!r} already attached")
        attachment = ExperimentAttachment(
            name=name,
            asn=asn,
            prefixes=tuple(prefixes),
            tunnel_ip=tunnel_ip,
            tunnel_mac=tunnel_mac,
        )
        session = BgpSession(
            self.scheduler,
            SessionConfig(
                local_asn=self.platform_asn,
                local_id=self.router_id,
                peer_asn=asn,
                addpath=True,
                description=f"exp:{name}",
            ),
            channel,
            on_update=lambda _s, update, n=name: (
                self._experiment_update(n, update)
            ),
            on_established=lambda _s, n=name: self._experiment_up(n),
            on_close=lambda _s, reason, n=name: (
                self._experiment_closed(n, reason)
            ),
            # ROUTE-REFRESH (soft reset): resend the full table with the
            # same stable ADD-PATH ids.
            on_route_refresh=lambda _s, n=name: self._experiment_up(n),
            telemetry=self.telemetry,
        )
        attachment.session = session
        self.experiments[name] = attachment
        self.stack.add_static_arp(tunnel_ip, tunnel_mac, self.exp_iface)
        for prefix in attachment.prefixes:
            entry = self.exp_prefixes.get(prefix) or {}
            entry[name] = attachment
            self.exp_prefixes.insert(prefix, entry)
        session.start()
        return attachment

    def _experiment_up(self, name: str) -> None:
        """Send the full table (every neighbor's routes) to the experiment."""
        exp = self.experiments.get(name)
        if exp is None:
            return
        for neighbor in self.upstreams.values():
            routes = list(neighbor.rib.values())
            if routes:
                self._fanout(
                    exp, neighbor.virtual.global_id,
                    neighbor.virtual.local_ip, routes, [],
                )
        for remote in self.remote_neighbors.values():
            routes = list(remote.rib.values())
            if routes:
                self._fanout(
                    exp, remote.global_id, remote.virtual.local_ip,
                    routes, [],
                )

    def _experiment_closed(self, name: str, _reason: str) -> None:
        exp = self.experiments.pop(name, None)
        if exp is None:
            return
        for prefix in exp.prefixes:
            entry = self.exp_prefixes.get(prefix)
            if entry is not None:
                entry.pop(name, None)
                if not entry:
                    self.exp_prefixes.remove(prefix)
        # Withdraw everything the experiment had announced.
        for (prefix, path_id), route in list(exp.announced.items()):
            self._retract_experiment_route(exp, route)
        exp.announced.clear()

    def _fanout(
        self,
        exp: ExperimentAttachment,
        gid: int,
        local_vip: IPv4Address,
        announced: list[Route],
        removed: list[tuple[Prefix, Optional[int]]],
        ex=None,
        groups=None,
    ) -> None:
        """Send neighbor-route changes to one experiment (Figure 2a).

        With the ``fanout_batch`` perf flag on, announced routes sharing
        one attribute set are coalesced into multi-NLRI UPDATEs (one
        attribute encode + one message per batch instead of per route).
        Withdrawals carry no attributes and are always chunked to respect
        the 4096-byte message ceiling.  ``ex`` is the effect executor
        (direct by default; a shard emitter when the fan-out is sharded).
        ``groups`` lets a caller fanning out to many experiments pass the
        attribute grouping of ``announced`` computed once.
        """
        if ex is None:
            ex = self._direct_exec
        if exp.session is None or not exp.session.established:
            return
        withdrawals = []
        for prefix, source_id in removed:
            path_id = exp.release_path_id(gid, prefix, source_id)
            if path_id is not None:
                withdrawals.append(
                    Route(prefix=prefix, attributes=_EMPTY_ATTRS,
                          path_id=path_id)
                )
        for chunk in _chunk_routes(withdrawals, _MAX_WITHDRAW_PER_UPDATE):
            ex.send(exp.session, UpdateMessage.withdraw(chunk),
                    "updates_to_experiments")
        if not announced:
            return
        if perf.FLAGS.fanout_batch:
            if groups is None:
                groups = _group_by_attributes(announced)
            for attrs, group in groups.items():
                rewritten_attrs = attrs.with_next_hop(local_vip)
                batch = [
                    Route(
                        prefix=route.prefix,
                        attributes=rewritten_attrs,
                        path_id=exp.path_id_for(gid, route.prefix,
                                                route.path_id),
                    )
                    for route in group
                ]
                limit = _max_nlri_per_update(rewritten_attrs)
                for chunk in _chunk_routes(batch, limit):
                    ex.send(exp.session, UpdateMessage.announce(chunk),
                            "updates_to_experiments")
        else:
            for route in announced:
                rewritten = route.with_next_hop(local_vip).with_path_id(
                    exp.path_id_for(gid, route.prefix, route.path_id)
                )
                ex.send(exp.session, UpdateMessage.announce([rewritten]),
                        "updates_to_experiments")

    # -- announcements from experiments ---------------------------------

    def _experiment_update(self, name: str, update: UpdateMessage) -> None:
        tele = self.telemetry
        if tele is None:
            self._apply_experiment_update(name, update)
            return
        token = tele.tracer.begin(
            "vbgp.experiment_update", node=self.name, experiment=name
        )
        try:
            self._apply_experiment_update(name, update)
        finally:
            tele.tracer.end(token)

    def _apply_experiment_update(self, name: str,
                                 update: UpdateMessage) -> None:
        exp = self.experiments.get(name)
        if exp is None:
            return
        self.counters["updates_from_experiments"] += 1
        for prefix, path_id in update.withdrawn:
            route = exp.announced.pop((prefix, path_id), None)
            if route is not None:
                self._retract_experiment_route(exp, route)
        routes = update.routes()
        if not routes:
            return
        governor = self.overload
        breaker = None
        if governor is not None:
            breaker = governor.breaker_for(f"exp:{name}")
            if not breaker.allow():
                # Breaker open (sustained enforcer violations): refuse
                # announcements wholesale.  Withdrawals were already
                # processed above — retraction always goes through.
                self.counters["announcements_blocked"] += len(routes)
                return
        allowed = self._enforce_control(exp, routes)
        if breaker is not None:
            blocked = len(routes) - len(allowed)
            if blocked > 0:
                governor.record_violations(f"exp:{name}", blocked)
            elif allowed:
                breaker.record_success()
        for route in allowed:
            previous = exp.announced.get((route.prefix, route.path_id))
            exp.announced[(route.prefix, route.path_id)] = route
            if previous is not None:
                self._retract_experiment_route(exp, previous, keep_dataplane=True)
            self._propagate_experiment_route(exp, route)

    def _enforce_control(self, exp: ExperimentAttachment,
                         routes: list[Route]) -> list[Route]:
        """Run the control-plane security enforcer; fail closed (§4.7)."""
        if self.control_enforcer is None:
            return routes
        try:
            return self.control_enforcer.filter_routes(
                experiment=exp.name, routes=routes, pop=self.name,
            )
        except Exception:
            self.counters["enforcer_failures"] += 1
            self.counters["announcements_blocked"] += len(routes)
            return []

    def _propagate_experiment_route(self, exp: ExperimentAttachment,
                                    route: Route) -> None:
        # Data plane: make the prefix reachable through the tunnel.
        self.stack.add_route(
            KernelRoute(
                prefix=route.prefix,
                out_iface=self.exp_iface,
                next_hop=exp.tunnel_ip,
            )
        )
        # Control plane: export to selected neighbors, and to the backbone.
        targets = self._neighbor_targets(route)
        for neighbor in self.upstreams.values():
            if neighbor.virtual.global_id in targets:
                self._export_to_neighbor(neighbor, route)
        self._backbone_export_experiment(exp, route, withdraw=False)

    def _retract_experiment_route(self, exp: ExperimentAttachment,
                                  route: Route,
                                  keep_dataplane: bool = False) -> None:
        if not keep_dataplane:
            still_announced = any(
                r.prefix == route.prefix for r in exp.announced.values()
            )
            if not still_announced:
                self.stack.remove_route(route.prefix)
        targets = self._neighbor_targets(route)
        for neighbor in self.upstreams.values():
            if neighbor.virtual.global_id in targets and (
                neighbor.session is not None and neighbor.session.established
            ):
                neighbor.session.send_update(
                    UpdateMessage.withdraw(
                        [Route(prefix=route.prefix, attributes=_EMPTY_ATTRS)]
                    )
                )
                self.counters["updates_to_neighbors"] += 1
        self._backbone_export_experiment(exp, route, withdraw=True)

    def _neighbor_targets(self, route: Route) -> set[int]:
        candidates = [
            (n.virtual.global_id, self.pop_id)
            for n in self.upstreams.values()
        ]
        return select_targets(route, candidates)

    def export_transform(self, route: Route) -> Route:
        """The §3.2.1 export rewrite for an experiment announcement.

        Pure (no node state is mutated): control communities are
        consumed, the platform ASN is prepended, the next hop becomes
        this PoP's upstream address, and client-local ADD-PATH ids /
        iBGP local-pref never leave the platform.  The live export path
        and the intent layer's dry-run predictor share this one
        function, so a predicted export diff cannot drift from what the
        wire would carry.
        """
        export = strip_control(route)
        export = export.prepended(self.platform_asn)
        export = export.with_next_hop(self._upstream_address())
        export = export.with_path_id(None)
        return export.with_attributes(local_pref=None)

    def _export_to_neighbor(self, neighbor: UpstreamNeighbor,
                            route: Route) -> None:
        if neighbor.session is None or not neighbor.session.established:
            return
        export = self.export_transform(route)
        neighbor.session.send_update(UpdateMessage.announce([export]))
        self.counters["updates_to_neighbors"] += 1
        if self._m_updates_by_neighbor is not None:
            self._m_updates_by_neighbor.labels(self.name, neighbor.name).inc()

    def _upstream_address(self) -> IPv4Address:
        iface = self.stack.interfaces.get(self.upstream_iface)
        if iface is not None and iface.addresses:
            return iface.addresses[0].network
        return self.router_id

    # ==================================================================
    # Backbone (§4.4)
    # ==================================================================

    def attach_backbone_peer(self, node_name: str, channel: Channel) -> None:
        """Join the backbone BGP mesh with another vBGP node."""
        session = BgpSession(
            self.scheduler,
            SessionConfig(
                local_asn=self.platform_asn,
                local_id=self.router_id,
                peer_asn=self.platform_asn,
                addpath=True,
                description=f"bb:{node_name}",
            ),
            channel,
            on_update=lambda _s, update, n=node_name: (
                self._backbone_update(n, update)
            ),
            on_established=lambda _s, n=node_name: self._backbone_up(n),
            telemetry=self.telemetry,
        )
        self.backbone_peers[node_name] = session
        session.start()

    def _backbone_up(self, node_name: str) -> None:
        """Advertise all local state to a newly joined backbone peer."""
        session = self.backbone_peers.get(node_name)
        if session is None or not session.established:
            return
        batch = perf.FLAGS.fanout_batch
        for neighbor in self.upstreams.values():
            if batch:
                for group in _group_by_attributes(
                    neighbor.rib.values()
                ).values():
                    carried = self._backbone_batch(neighbor.virtual, group)
                    limit = _max_nlri_per_update(carried[0].attributes)
                    for chunk in _chunk_routes(carried, limit):
                        session.send_update(UpdateMessage.announce(chunk))
                        self.counters["updates_to_backbone"] += 1
                continue
            for route in neighbor.rib.values():
                session.send_update(UpdateMessage.announce([
                    self._backbone_route(neighbor.virtual, route)
                ]))
                self.counters["updates_to_backbone"] += 1
        for exp in self.experiments.values():
            for route in exp.announced.values():
                session.send_update(UpdateMessage.announce([
                    self._backbone_experiment_route(route)
                ]))
                self.counters["updates_to_backbone"] += 1

    def _backbone_route(self, virtual: VirtualNeighbor, route: Route) -> Route:
        """A neighbor route as carried on the mesh: global-IP next hop."""
        return route.with_next_hop(virtual.global_ip).with_path_id(
            virtual.global_id * _GID_PATH_ID_BASE + _stable_id(route)
        )

    def _backbone_batch(self, virtual: VirtualNeighbor,
                        group: list[Route]) -> list[Route]:
        """Batched ``_backbone_route``: rewrite the shared attribute set
        once, keep the per-route stable path ids."""
        carried_attrs = group[0].attributes.with_next_hop(virtual.global_ip)
        base = virtual.global_id * _GID_PATH_ID_BASE
        return [
            Route(
                prefix=route.prefix,
                attributes=carried_attrs,
                path_id=base + _stable_id(route),
            )
            for route in group
        ]

    def _backbone_experiment_route(self, route: Route) -> Route:
        assert self.backbone_address is not None
        return route.with_next_hop(self.backbone_address).with_path_id(
            _stable_id(route)
        )

    def _backbone_export(self, gid: int, announced: list[Route],
                         removed: list[tuple[Prefix, Optional[int]]],
                         ex=None) -> None:
        if ex is None:
            ex = self._direct_exec
        if not self.backbone_peers:
            return
        neighbor = next(
            (n for n in self.upstreams.values()
             if n.virtual.global_id == gid), None,
        )
        if neighbor is None:
            return
        batch = perf.FLAGS.fanout_batch
        for session in self.backbone_peers.values():
            if not session.established:
                continue
            if batch:
                fakes = []
                for prefix, source_id in removed:
                    fake = Route(prefix=prefix, attributes=_EMPTY_ATTRS)
                    fakes.append(fake.with_path_id(
                        gid * _GID_PATH_ID_BASE + _stable_id(fake)
                    ))
                for chunk in _chunk_routes(fakes, _MAX_WITHDRAW_PER_UPDATE):
                    ex.send(session, UpdateMessage.withdraw(chunk),
                            "updates_to_backbone")
                for group in _group_by_attributes(announced).values():
                    carried = self._backbone_batch(neighbor.virtual, group)
                    limit = _max_nlri_per_update(carried[0].attributes)
                    for chunk in _chunk_routes(carried, limit):
                        ex.send(session, UpdateMessage.announce(chunk),
                                "updates_to_backbone")
                continue
            for prefix, source_id in removed:
                fake = Route(prefix=prefix, attributes=_EMPTY_ATTRS)
                ex.send(session, UpdateMessage.withdraw([
                    fake.with_path_id(
                        gid * _GID_PATH_ID_BASE + _stable_id(fake)
                    )
                ]), "updates_to_backbone")
            for route in announced:
                ex.send(session, UpdateMessage.announce([
                    self._backbone_route(neighbor.virtual, route)
                ]), "updates_to_backbone")

    def _backbone_export_experiment(self, exp: ExperimentAttachment,
                                    route: Route, withdraw: bool) -> None:
        if not self.backbone_peers or self.backbone_address is None:
            return
        carried = self._backbone_experiment_route(route)
        for session in self.backbone_peers.values():
            if not session.established:
                continue
            if withdraw:
                session.send_update(UpdateMessage.withdraw([carried]))
            else:
                session.send_update(UpdateMessage.announce([carried]))
            self.counters["updates_to_backbone"] += 1

    def _backbone_update(self, node_name: str, update: UpdateMessage) -> None:
        """Process mesh routes: remote-neighbor or remote-experiment."""
        for prefix, path_id in update.withdrawn:
            gid = (path_id or 0) // _GID_PATH_ID_BASE
            if gid:
                remote = self.remote_neighbors.get(gid)
                if remote is None:
                    continue
                remote.rib.pop((prefix, path_id), None)
                if not remote.rib.has_prefix(prefix):
                    self.stack.remove_route(prefix,
                                            table_id=remote.virtual.table_id)
                for exp in self.experiments.values():
                    self._fanout(exp, gid, remote.virtual.local_ip, [],
                                 [(prefix, path_id)])
            else:
                self._remote_experiment_withdraw(prefix)
        for route in update.routes():
            next_hop = route.next_hop
            if next_hop is not None and GLOBAL_POOL.contains_address(next_hop):
                self._remote_neighbor_route(route)
            else:
                self._remote_experiment_route(route)

    def _remote_neighbor_route(self, route: Route) -> None:
        gid = (route.path_id or 0) // _GID_PATH_ID_BASE
        if not gid:
            return
        remote = self.remote_neighbors.get(gid)
        if remote is None:
            virtual = self.vips.virtual_neighbor(gid)
            remote = RemoteNeighbor(global_id=gid, virtual=virtual)
            self.remote_neighbors[gid] = remote
            assert self.backbone_iface is not None
            self._provision_virtual(
                virtual, next_hop=virtual.global_ip,
                out_iface=self.backbone_iface,
            )
        remote.rib[(route.prefix, route.path_id)] = route
        self.stack.add_route(
            KernelRoute(
                prefix=route.prefix,
                out_iface=self.backbone_iface or self.upstream_iface,
                next_hop=remote.virtual.global_ip,
            ),
            table_id=remote.virtual.table_id,
        )
        self.counters["routes_installed"] += 1
        for exp in self.experiments.values():
            self._fanout(exp, gid, remote.virtual.local_ip, [route], [])

    def _remote_experiment_route(self, route: Route) -> None:
        """A remote experiment's prefix: route it across the backbone."""
        if route.next_hop is None or self.backbone_iface is None:
            return
        self.stack.add_route(
            KernelRoute(
                prefix=route.prefix,
                out_iface=self.backbone_iface,
                next_hop=route.next_hop,
            )
        )
        self.remote_exp_routes[route.prefix] = route
        marker = self.exp_prefixes.get(route.prefix) or {}
        marker["__remote__"] = route.next_hop
        self.exp_prefixes.insert(route.prefix, marker)
        # A remote experiment announcement only exits via *this* PoP's
        # neighbors when whitelist communities direct it here (§4.4:
        # experiments "direct announcements … across the backbone to BGP
        # neighbors at any of the PoPs"); a plain announcement stays at
        # the PoP where it was made.
        for neighbor in self.upstreams.values():
            if neighbor.virtual.global_id in self._remote_targets(route):
                self._export_to_neighbor(neighbor, route)

    def _remote_targets(self, route: Route) -> set[int]:
        """Local neighbors a backbone-learned experiment route may exit
        through: only those its whitelist communities name."""
        from repro.vbgp.communities import ANNOUNCE_ASN

        if not any(c.asn == ANNOUNCE_ASN for c in route.communities):
            return set()
        return self._neighbor_targets(route)

    def _remote_experiment_withdraw(self, prefix: Prefix) -> None:
        route = self.remote_exp_routes.pop(prefix, None)
        if route is None:
            return
        self.stack.remove_route(prefix)
        marker = self.exp_prefixes.get(prefix)
        if marker is not None:
            marker.pop("__remote__", None)
            if not marker:
                self.exp_prefixes.remove(prefix)
        targets = self._remote_targets(route)
        for neighbor in self.upstreams.values():
            if neighbor.virtual.global_id in targets and (
                neighbor.session is not None and neighbor.session.established
            ):
                neighbor.session.send_update(
                    UpdateMessage.withdraw(
                        [Route(prefix=prefix, attributes=_EMPTY_ATTRS)]
                    )
                )
                self.counters["updates_to_neighbors"] += 1

    # ==================================================================
    # Data plane interposition
    # ==================================================================

    def _data_enforce(self, frame: EthernetFrame,
                      iface: Interface) -> Optional[EthernetFrame]:
        """Run the data-plane enforcement engine on experiment traffic."""
        if iface.name != self.exp_iface or self.data_enforcer is None:
            return frame
        try:
            return self.data_enforcer.ingress(frame, iface.name, self)
        except Exception:
            self.counters["enforcer_failures"] += 1
            return None  # fail closed

    def _intercept_inbound(self, frame: EthernetFrame,
                           iface: Interface) -> Optional[EthernetFrame]:
        """Deliver Internet traffic to experiments with source-MAC
        attribution (§3.2.2, "Routing traffic to experiments")."""
        if iface.name not in (self.upstream_iface, self.backbone_iface):
            return frame
        if frame.ethertype != EtherType.IPV4 or not isinstance(
            frame.payload, IPv4Packet
        ):
            return frame
        # Frames addressed to a virtual MAC are experiment egress relayed
        # over the backbone; let the policy-routing rules handle them.
        if neighbor_mac_global_id(frame.dst) is not None:
            return frame
        packet = frame.payload
        entry = self.exp_prefixes.lookup(packet.dst)
        if entry is None:
            return frame
        gid = self._delivering_gid(frame.src)
        owners = entry.value
        local = [
            attachment for name, attachment in owners.items()
            if name != "__remote__"
        ]
        if local:
            self._deliver_to_experiment(local[0], packet, gid)
            return None
        remote_hop = owners.get("__remote__")
        if remote_hop is not None and iface.name == self.upstream_iface:
            self._relay_over_backbone(packet, gid, remote_hop)
            return None
        return frame

    def _delivering_gid(self, src_mac: MacAddress) -> Optional[int]:
        gid = neighbor_mac_global_id(src_mac)
        if gid is not None:
            return gid
        return self._mac_to_gid.get(src_mac)

    def _deliver_to_experiment(self, attachment: ExperimentAttachment,
                               packet: IPv4Packet,
                               gid: Optional[int]) -> None:
        if packet.ttl <= 1:
            return
        exp_iface = self.stack.interfaces.get(self.exp_iface)
        if exp_iface is None:
            return
        source_mac = exp_iface.mac
        if gid is not None:
            # The rewrite that tells the experiment *which* neighbor
            # delivered this traffic.
            source_mac = self.vips.virtual_neighbor(gid).mac
        self.counters["frames_to_experiments"] += 1
        if self._m_frames_by_neighbor is not None:
            label = f"gid{gid}" if gid is not None else "unknown"
            self._m_frames_by_neighbor.labels(self.name, label).inc()
        exp_iface.send_frame(
            EthernetFrame(
                src=source_mac,
                dst=attachment.tunnel_mac,
                ethertype=EtherType.IPV4,
                payload=packet.decrement_ttl(),
            )
        )

    def _relay_over_backbone(self, packet: IPv4Packet, gid: Optional[int],
                             next_hop: IPv4Address) -> None:
        """Carry neighbor-delivered traffic toward a remote experiment,
        preserving the delivering neighbor's identity in the source MAC."""
        if packet.ttl <= 1 or self.backbone_iface is None:
            return
        backbone = self.stack.interfaces.get(self.backbone_iface)
        if backbone is None:
            return
        cached = self.stack.arp_table.get(next_hop)
        if cached is None:
            # Resolve the remote node's MAC and retry shortly.
            self.stack._send_arp_request(next_hop, backbone)
            retry = packet
            self.scheduler.call_later(
                0.002, lambda: self._relay_over_backbone(retry, gid, next_hop)
            )
            return
        source_mac = backbone.mac
        if gid is not None:
            source_mac = self.vips.virtual_neighbor(gid).mac
        backbone.send_frame(
            EthernetFrame(
                src=source_mac,
                dst=cached[0],
                ethertype=EtherType.IPV4,
                payload=packet.decrement_ttl(),
            )
        )

    # ==================================================================
    # Sharded fan-out (repro.shard, DESIGN.md §6f)
    # ==================================================================

    def _shard_config(self) -> tuple[int, str, int, str]:
        """Effective (count, strategy, seed, backend): node overrides
        win over the global ``perf.FLAGS`` knobs."""
        flags = perf.FLAGS
        count = (self._shards_override if self._shards_override is not None
                 else flags.shards)
        strategy = (self._shard_partition_override
                    if self._shard_partition_override is not None
                    else flags.shard_partition)
        return count, strategy, flags.shard_seed, flags.shard_backend

    def _shard_engine_if_enabled(self) -> Optional[ShardedFanout]:
        """The live shard engine, or ``None`` for the direct path.

        An engine holding queued backlog (a killed shard) is *never*
        abandoned on a flag flip — its items would be lost; it keeps
        receiving work until the backlog drains.  The engine engages
        when ``shards > 1`` *or* a real backend is selected; the
        ``model`` backend at ``shards=1`` stays the direct (sync
        reference) path.  A replaced engine is closed so a real
        backend's workers are reaped.
        """
        engine = self._shard_engine
        if engine is not None and engine.pending:
            return engine
        count, strategy, seed, backend = self._shard_config()
        if count <= 1 and backend == "model":
            if engine is not None:
                engine.close()
                self._shard_engine = None
            return None
        if (
            engine is not None
            and engine.shard_count == count
            and engine.partition.strategy == strategy
            and engine.partition.seed == seed
            and engine.backend_name == backend
        ):
            return engine
        if engine is not None:
            engine.close()
        engine = ShardedFanout(
            self,
            count,
            make_partition(strategy, count, seed=seed),
            telemetry=self.telemetry,
            backend=backend,
        )
        self._configure_engine_overload(engine)
        self._shard_engine = engine
        return engine

    @property
    def shard_engine(self) -> Optional[ShardedFanout]:
        return self._shard_engine

    def shard_pending(self) -> int:
        """Work items queued on shard inboxes (0 when unsharded)."""
        engine = self._shard_engine
        return engine.pending if engine is not None else 0

    def shard_status(self) -> list[dict]:
        """Per-shard status rows (``[]`` when the fan-out is unsharded)."""
        engine = self._shard_engine
        return engine.status() if engine is not None else []

    def close_shard_engine(self) -> None:
        """Release the shard engine's backend resources, if any.

        Safe to call repeatedly; harness/teardown hook so real-backend
        worker processes never outlive the platform that spawned them.
        """
        engine = self._shard_engine
        if engine is not None:
            engine.close()
            self._shard_engine = None

    # ==================================================================
    # Introspection (used by benches and the CLI)
    # ==================================================================

    def known_routes(self) -> list[Route]:
        """All routes currently known across per-neighbor RIBs."""
        routes: list[Route] = []
        for neighbor in self.upstreams.values():
            routes.extend(neighbor.rib.values())
        for remote in self.remote_neighbors.values():
            routes.extend(remote.rib.values())
        return routes

    def fib_entry_count(self) -> int:
        return sum(len(table) for table in self.stack.tables.values())


# A placeholder attribute set used in withdrawals (attributes are ignored).
_EMPTY_ATTRS = PathAttributes()

# Backbone path ids pack ``(neighbor gid, per-route stable id)`` into one
# integer.  ``_stable_id`` is 20 bits (1..0xFFFFF), so the base must be
# 2**20: the previous base of 1_000_000 (< 2**20) let large stable ids
# bleed into the next gid's range, making the receiving node decode a
# phantom neighbor with the wrong gid — caught by the chaos shard-kill
# scenario's full-catalog vmac_bijectivity check.
_GID_PATH_ID_BASE = 1 << 20

# An ADD-PATH IPv4 NLRI is at most 4 (path id) + 1 (length) + 4 (prefix)
# bytes; a withdrawal-only UPDATE has 4 bytes of fixed body overhead.
_NLRI_MAX_BYTES = 9
_MAX_WITHDRAW_PER_UPDATE = (
    (MAX_MESSAGE_SIZE - HEADER_SIZE - 4) // _NLRI_MAX_BYTES
)


def _max_nlri_per_update(attributes: PathAttributes) -> int:
    """How many NLRI fit in one UPDATE carrying ``attributes``."""
    budget = (
        MAX_MESSAGE_SIZE - HEADER_SIZE - 4
        - attributes_wire_length(attributes)
    )
    return max(1, budget // _NLRI_MAX_BYTES)


def _chunk_routes(routes: list[Route], size: int) -> Iterator[list[Route]]:
    for start in range(0, len(routes), size):
        yield routes[start:start + size]


def _group_by_attributes(
    routes: Iterable[Route],
) -> dict[PathAttributes, list[Route]]:
    """Group routes by their (hashable) attribute set, preserving order."""
    groups: dict[PathAttributes, list[Route]] = {}
    for route in routes:
        groups.setdefault(route.attributes, []).append(route)
    return groups


def _stable_id(route: Route) -> int:
    """A deterministic per-route id usable as an ADD-PATH path id.

    Mixed explicitly rather than via ``hash()``: on Python < 3.12
    ``hash(None)`` is id-based, which made the "stable" id vary between
    runs (and its 20-bit truncation collide run-dependently) for routes
    without a source path id.
    """
    network, length = route.prefix.key()
    source = -1 if route.path_id is None else route.path_id
    mixed = (
        network * 0x9E3779B1 + length * 0x85EBCA77 + source * 0xC2B2AE3D
    )
    mixed ^= mixed >> 17
    return (mixed & 0xFFFFF) or 1
