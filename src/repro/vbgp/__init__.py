"""vBGP: virtualization of a BGP edge router's data and control planes.

The paper's core contribution (§3). A :class:`~repro.vbgp.node.VbgpNode`
multiplexes one edge router across parallel experiments:

* **control plane in** — every route from every neighbor is fanned out to
  every experiment over ADD-PATH sessions, with the BGP next hop rewritten
  to a per-neighbor virtual IP (§3.2.1, Figure 2a);
* **control plane out** — experiments steer announcement propagation per
  neighbor with whitelist/blacklist communities; the security enforcer
  interposes on everything they send (§3.2.1, §3.3);
* **data plane out** — the node answers ARP for each virtual IP with a
  per-neighbor virtual MAC and demultiplexes ingress frames by destination
  MAC into per-neighbor kernel routing tables (§3.2.2, Figure 2b);
* **data plane in** — traffic delivered by a neighbor is forwarded to the
  owning experiment with the *source* MAC rewritten to that neighbor's
  virtual MAC, preserving attribution;
* **backbone** — next-hop-based control extends hop-by-hop across the
  backbone using a global pool of per-neighbor IPs (§4.4, Figure 5).
"""

from repro.vbgp.allocator import (
    GlobalNeighborRegistry,
    VirtualNeighbor,
    global_neighbor_ip,
    global_neighbor_mac,
    neighbor_table_id,
)
from repro.vbgp.node import (
    ExperimentAttachment,
    UpstreamNeighbor,
    VbgpNode,
)
from repro.vbgp.communities import (
    ANNOUNCE_ASN,
    BLOCK_ASN,
    announce_to_neighbor,
    announce_to_pop,
    block_neighbor,
    select_targets,
)

__all__ = [
    "ANNOUNCE_ASN",
    "BLOCK_ASN",
    "ExperimentAttachment",
    "GlobalNeighborRegistry",
    "UpstreamNeighbor",
    "VbgpNode",
    "VirtualNeighbor",
    "announce_to_neighbor",
    "announce_to_pop",
    "block_neighbor",
    "global_neighbor_ip",
    "global_neighbor_mac",
    "neighbor_table_id",
    "select_targets",
]
