"""Intent-based configuration management (§5).

The three engineering pillars of PEERING's operation:

* **intent-based configuration** — a central database of desired state,
  rendered into service configuration files (BIRD-style router configs,
  tunnel configs, enforcement policies) by a templating engine, versioned
  and canary-deployed,
* **network configuration with transactional semantics** — a controller
  that diffs desired against actual kernel state over the netlink-like
  API, applies the minimal change set, rolls back on failure, and fixes
  primary-address ordering (which the kernel only expresses as insertion
  order),
* **standardization and isolation** — containerized services deployed by
  an Ansible-like runner with canarying and drift correction.
"""

from repro.mgmt.configdb import ConfigDatabase, Document
from repro.mgmt.templating import TemplateError, render
from repro.mgmt.controller import (
    NetworkController,
    NetworkIntent,
    TransactionError,
)
from repro.mgmt.deploy import (
    Container,
    DeployResult,
    Deployer,
    Server,
    VersionStore,
)
from repro.mgmt.render import render_bird_config

__all__ = [
    "ConfigDatabase",
    "Container",
    "DeployResult",
    "Deployer",
    "Document",
    "NetworkController",
    "NetworkIntent",
    "Server",
    "TemplateError",
    "TransactionError",
    "VersionStore",
    "render",
    "render_bird_config",
]
