"""The centralized configuration database (§5).

"The desired configuration is stored on a centralized database accessible
through a web service" — experiments and capabilities, per-PoP network
configuration, and interconnection data. Documents are dicts keyed by
path; every write creates a new version so deployments can be inspected
and rolled back.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class Document:
    """One immutable version of a configuration document."""

    path: str
    version: int
    data: dict[str, Any]

    def canonical(self) -> str:
        return json.dumps(self.data, sort_keys=True, default=str)


class ConfigDatabase:
    """Versioned document store with a web-service-like API."""

    def __init__(self) -> None:
        self._versions: dict[str, list[Document]] = {}
        self.writes = 0

    # -- web-service surface -------------------------------------------

    def put(self, path: str, data: dict[str, Any]) -> Document:
        """Write a new version of a document (deep-copied)."""
        history = self._versions.setdefault(path, [])
        document = Document(
            path=path, version=len(history) + 1, data=copy.deepcopy(data)
        )
        history.append(document)
        self.writes += 1
        return document

    def get(self, path: str,
            version: Optional[int] = None) -> Optional[Document]:
        history = self._versions.get(path)
        if not history:
            return None
        if version is None:
            return history[-1]
        if 1 <= version <= len(history):
            return history[version - 1]
        return None

    def update(self, path: str, **changes: Any) -> Document:
        """Read-modify-write convenience."""
        current = self.get(path)
        data = copy.deepcopy(current.data) if current is not None else {}
        data.update(changes)
        return self.put(path, data)

    def history(self, path: str) -> list[Document]:
        return list(self._versions.get(path, []))

    def rollback(self, path: str) -> Optional[Document]:
        """Make the previous version current (by re-putting it)."""
        history = self._versions.get(path)
        if not history or len(history) < 2:
            return None
        return self.put(path, history[-2].data)

    def list_paths(self, prefix: str = "") -> list[str]:
        return sorted(
            path for path in self._versions if path.startswith(prefix)
        )

    # -- domain helpers used by the platform tooling ---------------------

    def record_experiment(self, name: str, *, prefixes: list[str],
                          asn: int, capabilities: list[str]) -> Document:
        return self.put(
            f"experiments/{name}",
            {
                "name": name,
                "prefixes": prefixes,
                "asn": asn,
                "capabilities": capabilities,
            },
        )

    def record_pop(self, name: str, *, pop_id: int, kind: str,
                   neighbors: list[dict]) -> Document:
        return self.put(
            f"pops/{name}",
            {
                "name": name,
                "pop_id": pop_id,
                "kind": kind,
                "neighbors": neighbors,
            },
        )
