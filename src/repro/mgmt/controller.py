"""The transactional network controller (§5).

Netlink has no notion of intent: only query/add/remove. The controller
reconciles a declarative :class:`NetworkIntent` against live kernel state:

* removes configuration incompatible with the intent,
* keeps compatible configuration (so BGP sessions and traffic are not
  disturbed — resetting everything would reset tunnels and sessions),
* adds what is missing,
* enforces **primary-address ordering**: Linux's primary address is simply
  the first one added and sources ICMP errors (traceroute attribution!),
  so when the order is wrong the controller removes and re-adds the
  interface's addresses in the intended order,
* is **transactional**: if any operation fails, every applied operation
  is rolled back and the kernel is left exactly as found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.addr import IPv4Address
from repro.netsim.netlink import Netlink, NetlinkError, RouteRecord, RuleRecord


class TransactionError(RuntimeError):
    """Raised when an apply failed and was rolled back."""


@dataclass
class NetworkIntent:
    """Desired network configuration for one server.

    ``addresses`` maps interface → ordered address list (index 0 is the
    intended primary); ``routes`` and ``rules`` are the full desired sets.
    """

    addresses: dict[str, list[tuple[IPv4Address, int]]] = field(
        default_factory=dict
    )
    routes: list[RouteRecord] = field(default_factory=list)
    rules: list[RuleRecord] = field(default_factory=list)


@dataclass
class AppliedOp:
    """One applied operation and its inverse (for rollback)."""

    description: str
    undo: Callable[[], None]


@dataclass
class ApplyReport:
    added: int = 0
    removed: int = 0
    kept: int = 0
    reordered_interfaces: list[str] = field(default_factory=list)

    @property
    def changes(self) -> int:
        return self.added + self.removed


class NetworkController:
    """Reconciles intent against one server's kernel state."""

    def __init__(self, netlink: Netlink) -> None:
        self.netlink = netlink
        self.applies = 0
        self.rollbacks = 0

    def apply(self, intent: NetworkIntent,
              fail_on: Optional[Callable[[str], bool]] = None) -> ApplyReport:
        """Apply the intent with transactional semantics.

        ``fail_on`` is a test hook: a predicate over operation
        descriptions that forces a mid-transaction failure.
        """
        self.applies += 1
        report = ApplyReport()
        applied: list[AppliedOp] = []
        try:
            self._apply_addresses(intent, report, applied, fail_on)
            self._apply_routes(intent, report, applied, fail_on)
            self._apply_rules(intent, report, applied, fail_on)
        except Exception as exc:
            self.rollbacks += 1
            for op in reversed(applied):
                op.undo()
            raise TransactionError(
                f"apply failed ({exc}); rolled back {len(applied)} operations"
            ) from exc
        return report

    # -- primitives -------------------------------------------------------

    def _do(
        self,
        applied: list[AppliedOp],
        description: str,
        forward: Callable[[], None],
        undo: Callable[[], None],
        fail_on: Optional[Callable[[str], bool]],
    ) -> None:
        if fail_on is not None and fail_on(description):
            raise NetlinkError(f"injected failure at: {description}")
        forward()
        applied.append(AppliedOp(description=description, undo=undo))

    # -- addresses ----------------------------------------------------------

    def _apply_addresses(
        self,
        intent: NetworkIntent,
        report: ApplyReport,
        applied: list[AppliedOp],
        fail_on,
    ) -> None:
        for iface, desired in intent.addresses.items():
            current = self.netlink.dump_addresses(iface)
            current_addrs = [record.address for record in current]
            desired_addrs = [address for address, _length in desired]
            # Remove addresses not in the intent.
            for record in current:
                if record.address not in desired_addrs:
                    self._do(
                        applied,
                        f"del addr {record.address} on {iface}",
                        lambda r=record: self.netlink.del_address(
                            iface, r.address
                        ),
                        lambda r=record: self.netlink.add_address(
                            iface, r.address, r.length
                        ),
                        fail_on,
                    )
                    report.removed += 1
                else:
                    report.kept += 1
            remaining = [a for a in current_addrs if a in desired_addrs]
            # If the surviving order disagrees with the intent's order (in
            # particular the primary), rebuild the interface's addresses.
            if remaining != desired_addrs[:len(remaining)] or (
                remaining and remaining[0] != desired_addrs[0]
            ):
                report.reordered_interfaces.append(iface)
                for address in remaining:
                    length = next(
                        length for a, length in desired if a == address
                    )
                    self._do(
                        applied,
                        f"del addr {address} on {iface} (reorder)",
                        lambda a=address: self.netlink.del_address(iface, a),
                        lambda a=address, l=length: self.netlink.add_address(
                            iface, a, l
                        ),
                        fail_on,
                    )
                remaining = []
            # Add missing addresses in intent order.
            for address, length in desired:
                if address in remaining:
                    continue
                self._do(
                    applied,
                    f"add addr {address}/{length} on {iface}",
                    lambda a=address, l=length: self.netlink.add_address(
                        iface, a, l
                    ),
                    lambda a=address: self.netlink.del_address(iface, a),
                    fail_on,
                )
                report.added += 1

    # -- routes ---------------------------------------------------------------

    def _apply_routes(
        self,
        intent: NetworkIntent,
        report: ApplyReport,
        applied: list[AppliedOp],
        fail_on,
    ) -> None:
        desired_by_table: dict[int, dict] = {}
        for record in intent.routes:
            desired_by_table.setdefault(record.table, {})[
                record.prefix.key()
            ] = record
        tables = set(self.netlink.list_tables()) | set(desired_by_table)
        for table in sorted(tables):
            desired = desired_by_table.get(table, {})
            current = {
                record.prefix.key(): record
                for record in self.netlink.dump_routes(table)
            }
            for key, record in current.items():
                want = desired.get(key)
                if want == record:
                    report.kept += 1
                    continue
                if table == 254 and record.next_hop is None and (
                    want is None
                ):
                    # Connected routes in the main table are created by the
                    # kernel when addresses are assigned — never ours to
                    # delete.
                    report.kept += 1
                    continue
                self._do(
                    applied,
                    f"del route {record.prefix} table {table}",
                    lambda r=record: self.netlink.del_route(
                        r.table, r.prefix
                    ),
                    lambda r=record: self.netlink.add_route(r),
                    fail_on,
                )
                report.removed += 1
            for key, record in desired.items():
                existing = current.get(key)
                if existing == record:
                    continue
                self._do(
                    applied,
                    f"add route {record.prefix} table {table}",
                    lambda r=record: self.netlink.add_route(r),
                    lambda r=record: self.netlink.del_route(
                        r.table, r.prefix
                    ),
                    fail_on,
                )
                report.added += 1

    # -- rules ---------------------------------------------------------------

    def _apply_rules(
        self,
        intent: NetworkIntent,
        report: ApplyReport,
        applied: list[AppliedOp],
        fail_on,
    ) -> None:
        current = self.netlink.dump_rules()
        desired = list(intent.rules)
        for record in current:
            if record in desired:
                report.kept += 1
                continue
            if record.priority == 32766 and record.table == 254:
                report.kept += 1
                continue  # never touch the default main-table rule
            self._do(
                applied,
                f"del rule prio {record.priority} table {record.table}",
                lambda r=record: self.netlink.del_rule(r),
                lambda r=record: self.netlink.add_rule(r),
                fail_on,
            )
            report.removed += 1
        for record in desired:
            if record in current:
                continue
            self._do(
                applied,
                f"add rule prio {record.priority} table {record.table}",
                lambda r=record: self.netlink.add_rule(r),
                lambda r=record: self.netlink.del_rule(r),
                fail_on,
            )
            report.added += 1
