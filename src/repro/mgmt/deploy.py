"""Standardized deployment: containers, version control, Ansible-like runs.

§5's third pillar: PEERING servers run stripped-down operating systems
with every service (BIRD, OpenVPN, the network controller, enforcement
engines) packaged into containers; Ansible periodically converges every
server to the desired state, canarying configuration changes on a subset
first. Configuration files live in version control and can be rolled
back; reloading configs does not reset BGP sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


class VersionStore:
    """Version-controlled configuration file store."""

    def __init__(self) -> None:
        self._files: dict[str, list[str]] = {}
        self.commits = 0

    def commit(self, path: str, content: str) -> int:
        history = self._files.setdefault(path, [])
        if history and history[-1] == content:
            return len(history)  # no-op commit
        history.append(content)
        self.commits += 1
        return len(history)

    def head(self, path: str) -> Optional[str]:
        history = self._files.get(path)
        return history[-1] if history else None

    def revision(self, path: str, version: int) -> Optional[str]:
        history = self._files.get(path, [])
        if 1 <= version <= len(history):
            return history[version - 1]
        return None

    def revert(self, path: str) -> Optional[str]:
        """Commit the previous revision as the new head."""
        history = self._files.get(path)
        if not history or len(history) < 2:
            return None
        self.commit(path, history[-2])
        return self.head(path)


@dataclass
class Container:
    """One isolated service (own namespaces, pinned image version)."""

    name: str
    image: str
    version: int = 1
    config: dict[str, str] = field(default_factory=dict)
    running: bool = True
    restarts: int = 0

    def upgrade(self, version: int) -> None:
        if version != self.version:
            self.version = version
            self.restarts += 1

    def load_config(self, files: dict[str, str]) -> bool:
        """Reload configuration; returns True when anything changed.

        Config reloads do NOT restart the container (BGP sessions and
        tunnels survive — the §5 requirement).
        """
        changed = False
        for path, content in files.items():
            if self.config.get(path) != content:
                self.config[path] = content
                changed = True
        return changed


@dataclass
class Server:
    """One PEERING server: a host OS plus service containers."""

    name: str
    containers: dict[str, Container] = field(default_factory=dict)
    os_resets: int = 0

    def ensure_container(self, name: str, image: str,
                         version: int) -> Container:
        container = self.containers.get(name)
        if container is None:
            container = Container(name=name, image=image, version=version)
            self.containers[name] = container
        else:
            container.upgrade(version)
        return container

    def reset_os(self) -> None:
        """Reset the host to the known desired state (§5 Ansible runs)."""
        self.os_resets += 1


@dataclass
class DeployResult:
    """Outcome of one deployment run."""

    servers_converged: list[str] = field(default_factory=list)
    servers_failed: list[str] = field(default_factory=list)
    configs_changed: int = 0
    canary_only: bool = False

    @property
    def ok(self) -> bool:
        return not self.servers_failed


class Deployer:
    """Ansible-like convergence with canarying."""

    def __init__(self, store: VersionStore,
                 canary_fraction: float = 0.25) -> None:
        self.store = store
        self.canary_fraction = canary_fraction
        self.servers: dict[str, Server] = {}
        self.runs = 0

    def add_server(self, name: str) -> Server:
        server = Server(name=name)
        self.servers[name] = server
        return server

    def deploy(
        self,
        service: str,
        image: str,
        version: int,
        config_paths: dict[str, str],
        verify: Optional[Callable[[Server], bool]] = None,
        canary: bool = True,
    ) -> DeployResult:
        """Converge all servers to (image version, config heads).

        With ``canary=True`` the change first lands on a subset; if
        ``verify`` rejects any canary, the run stops there and the
        remaining fleet is untouched.
        """
        self.runs += 1
        result = DeployResult()
        names = sorted(self.servers)
        canary_count = max(1, int(len(names) * self.canary_fraction)) if (
            canary and names
        ) else len(names)
        waves = [names[:canary_count], names[canary_count:]]
        for wave_index, wave in enumerate(waves):
            for name in wave:
                server = self.servers[name]
                server.reset_os()
                container = server.ensure_container(service, image, version)
                files = {
                    path: self.store.head(store_path) or ""
                    for path, store_path in config_paths.items()
                }
                if container.load_config(files):
                    result.configs_changed += 1
                if verify is not None and not verify(server):
                    result.servers_failed.append(name)
                else:
                    result.servers_converged.append(name)
            if wave_index == 0 and result.servers_failed:
                result.canary_only = True
                return result
        return result
