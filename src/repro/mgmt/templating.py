"""A small, dependency-free template engine.

Supports the constructs PEERING's configuration templates need:

* ``{{ expr }}`` — substitution of dotted paths (``pop.name``,
  ``neighbor.asn``) resolved against dicts and attributes,
* ``{% for item in expr %} … {% endfor %}`` — iteration,
* ``{% if expr %} … {% endif %}`` — truthiness conditionals.

Deterministic output: rendering the same model twice yields identical
text, which is what makes canarying and configuration diffing meaningful.
"""

from __future__ import annotations

import re
from typing import Any


class TemplateError(ValueError):
    """Raised for malformed templates or unresolvable expressions."""


_TAG_RE = re.compile(
    r"\{\{\s*(?P<subst>[^}]+?)\s*\}\}"
    r"|\{%\s*(?P<stmt>[^%]+?)\s*%\}"
)


def _resolve(expression: str, context: dict[str, Any]) -> Any:
    """Resolve a dotted path against the context."""
    parts = expression.strip().split(".")
    if not parts or not parts[0]:
        raise TemplateError(f"empty expression: {expression!r}")
    try:
        value: Any = context[parts[0]]
    except KeyError as exc:
        raise TemplateError(f"undefined name {parts[0]!r}") from exc
    for part in parts[1:]:
        if isinstance(value, dict):
            if part not in value:
                raise TemplateError(
                    f"no key {part!r} in {expression!r}"
                )
            value = value[part]
        elif hasattr(value, part):
            value = getattr(value, part)
        else:
            raise TemplateError(
                f"cannot resolve {part!r} in {expression!r}"
            )
    return value


def _tokenize(template: str) -> list[tuple[str, str]]:
    """Split into (kind, payload) tokens: text / subst / stmt."""
    tokens: list[tuple[str, str]] = []
    position = 0
    for match in _TAG_RE.finditer(template):
        if match.start() > position:
            tokens.append(("text", template[position:match.start()]))
        if match.group("subst") is not None:
            tokens.append(("subst", match.group("subst")))
        else:
            tokens.append(("stmt", match.group("stmt")))
        position = match.end()
    if position < len(template):
        tokens.append(("text", template[position:]))
    return tokens


def render(template: str, context: dict[str, Any]) -> str:
    """Render a template against a context model."""
    tokens = _tokenize(template)
    output, consumed = _render_block(tokens, 0, context, end=None)
    if consumed != len(tokens):
        raise TemplateError("unexpected endfor/endif")
    return output


def _render_block(
    tokens: list[tuple[str, str]],
    index: int,
    context: dict[str, Any],
    end: str | None,
) -> tuple[str, int]:
    parts: list[str] = []
    while index < len(tokens):
        kind, payload = tokens[index]
        if kind == "text":
            parts.append(payload)
            index += 1
        elif kind == "subst":
            parts.append(str(_resolve(payload, context)))
            index += 1
        else:
            statement = payload.strip()
            if statement == end:
                return "".join(parts), index + 1
            if statement.startswith("for "):
                match = re.fullmatch(
                    r"for\s+(\w+)\s+in\s+(.+)", statement
                )
                if match is None:
                    raise TemplateError(f"malformed for: {statement!r}")
                var, expr = match.group(1), match.group(2)
                iterable = _resolve(expr, context)
                # Find the block once, then render per item.
                body_start = index + 1
                rendered_any = False
                end_index = None
                for item in iterable:
                    child = dict(context)
                    child[var] = item
                    body, end_index = _render_block(
                        tokens, body_start, child, end="endfor"
                    )
                    parts.append(body)
                    rendered_any = True
                if not rendered_any:
                    _, end_index = _skip_block(tokens, body_start, "endfor")
                assert end_index is not None
                index = end_index
            elif statement.startswith("if "):
                condition = statement[3:]
                body_start = index + 1
                try:
                    truthy = bool(_resolve(condition, context))
                except TemplateError:
                    truthy = False
                if truthy:
                    body, index = _render_block(
                        tokens, body_start, context, end="endif"
                    )
                    parts.append(body)
                else:
                    _, index = _skip_block(tokens, body_start, "endif")
            else:
                raise TemplateError(f"unknown statement {statement!r}")
    if end is not None:
        raise TemplateError(f"missing {{% {end} %}}")
    return "".join(parts), index


def _skip_block(tokens: list[tuple[str, str]], index: int,
                end: str) -> tuple[str, int]:
    """Advance past a block without rendering (handles nesting)."""
    depth = 0
    while index < len(tokens):
        kind, payload = tokens[index]
        if kind == "stmt":
            statement = payload.strip()
            if statement.startswith(("for ", "if ")):
                depth += 1
            elif statement in ("endfor", "endif"):
                if depth == 0:
                    if statement != end:
                        raise TemplateError(
                            f"expected {end}, found {statement}"
                        )
                    return "", index + 1
                depth -= 1
        index += 1
    raise TemplateError(f"missing {{% {end} %}}")
