"""The ``peering`` command-line interface over :class:`ExperimentClient`.

Accepts the command strings experimenters type (mirroring the real
toolkit's ``peering <component> <action> …``) and returns printable
output. Exercised end-to-end by the Table 1 benchmark.

Exit codes: every command reports a status through
:meth:`ToolkitCli.run_with_status` (and leaves it on
:attr:`ToolkitCli.exit_code` after a plain :meth:`ToolkitCli.run`).
``peering verify``, ``peering chaos``, and ``peering intent`` share one
convention:

====  =====================================================
code  meaning
====  =====================================================
0     clean — checks passed / intent committed
1     breach — an invariant, verification, chaos scenario,
      or intent transaction failed (plan not clean, apply
      reverted or rejected, revert left residue)
2     usage or operational error
====  =====================================================
"""

from __future__ import annotations

from typing import Optional

from repro.bgp.attributes import Community
from repro.netsim.addr import IPv4Prefix
from repro.toolkit.client import ExperimentClient


class ToolkitCli:
    """String-command front end (``peering …``)."""

    def __init__(self, client: ExperimentClient) -> None:
        self.client = client
        self.exit_code = 0
        # ``peering intent``: the pending ChangeSet under construction
        # and the transactional controller (created on first use).
        self._intent_ops: list = []
        self._intent_controller = None
        self._intent_plan = None
        # ``peering fleet``: live controllers keyed by compiled directory
        # (``up`` in one command, ``status``/``down`` in later ones).
        self._fleet_controllers: dict = {}

    def run(self, command: str) -> str:
        output, self.exit_code = self.run_with_status(command)
        return output

    def run_with_status(self, command: str) -> tuple[str, int]:
        """Run one command; returns ``(output, exit_code)``.

        The exit-code convention (shared by ``verify``, ``chaos``, and
        ``intent``) is documented in the module docstring and in
        ``--help``: 0 clean, 1 breach, 2 usage error.
        """
        self.exit_code = 0
        words = command.strip().split()
        if words and words[0] == "peering":
            words = words[1:]
        if not words:
            return self._usage(), 2
        component, *rest = words
        handler = getattr(self, f"_cmd_{component}", None)
        if handler is None:
            return self._usage(), 2
        try:
            output = handler(rest)
        except (KeyError, ValueError, RuntimeError) as exc:
            return f"error: {exc}", 2
        if output == self._usage() or output.startswith("error:"):
            return output, 2
        return output, self.exit_code

    @staticmethod
    def _usage() -> str:
        return (
            "usage: peering openvpn up|down|status [pop]\n"
            "       peering bgp start|stop|status [pop]\n"
            "       peering bird <pop> <command...>\n"
            "       peering prefix announce <prefix> [-m pop] [-c asn:val]\n"
            "                               [-p prepend] [-x poison-asn]\n"
            "       peering prefix withdraw <prefix> [-m pop]\n"
            "       peering telemetry summary\n"
            "       peering telemetry metrics [prom|json]\n"
            "       peering telemetry peers\n"
            "       peering telemetry rib <peer>\n"
            "       peering telemetry events [n]\n"
            "       peering health [pop]\n"
            "       peering chaos list\n"
            "       peering chaos <scenario>|all [--seed n]\n"
            "       peering verify invariants [name...]\n"
            "       peering verify codec [--frames n] [--seed n]\n"
            "       peering verify differential [--updates n]\n"
            "                                   [--shards n[,n...]]\n"
            "                                   [--backend async|mp[,...]]\n"
            "                                   [--partition neighbor|prefix]\n"
            "                                   [--workload churn|fulltable]\n"
            "                                   [--prefixes n]\n"
            "                                   [--subsample n] (0 = full\n"
            "                                    flag lattice)\n"
            "       peering verify all\n"
            "       peering intent op announce <prefix> [-m pop]\n"
            "                      [-c asn:val] [-p prepend] [-x poison]\n"
            "       peering intent op withdraw <prefix> [-m pop]\n"
            "       peering intent op connect|disconnect <pop>\n"
            "       peering intent show|clear\n"
            "       peering intent plan\n"
            "       peering intent diff\n"
            "       peering intent apply [--force]\n"
            "       peering intent revert <intent-id>\n"
            "       peering intent history\n"
            "       peering fleet compile --dir <path> [--pops n]\n"
            "                             [--port-base n]\n"
            "       peering fleet up|status|down --dir <path>\n"
            "       peering fleet run-pop <pop-artifact.json>\n"
            "       peering fleet differential [--pops n] [--updates n]\n"
            "                                  [--seed n] [--port-base n]\n"
            "       peering fleet crash [--seed n] [--port-base n]\n"
            "\n"
            "exit codes (verify, chaos, and intent share one convention):\n"
            "  0  clean   checks passed / intent committed\n"
            "  1  breach  invariant violated, verification or scenario\n"
            "             failed, or intent not committed cleanly\n"
            "  2  usage or operational error\n"
            "\n"
            "peering health exits with the worst PoP state:\n"
            "  0 healthy, 1 degraded, 2 critical"
        )

    # -- openvpn -----------------------------------------------------------

    def _cmd_openvpn(self, args: list[str]) -> str:
        if not args:
            return self._usage()
        action = args[0]
        if action == "up":
            view = self.client.openvpn_up(args[1])
            return f"tunnel to {view.pop} up ({view.connection.tunnel.client_ip})"
        if action == "down":
            self.client.openvpn_down(args[1])
            return f"tunnel to {args[1]} down"
        if action == "status":
            lines = []
            for pop, status in sorted(self.client.openvpn_status().items()):
                state = "up" if status["up"] else "down"
                lines.append(f"{pop}: {state} {status['client_ip']}")
            return "\n".join(lines) or "no tunnels"
        return self._usage()

    # -- bgp / bird ----------------------------------------------------------

    def _cmd_bgp(self, args: list[str]) -> str:
        if not args:
            return self._usage()
        action = args[0]
        if action == "start":
            session = self.client.bird_start(args[1])
            return f"bgp to {args[1]}: {session.state.value}"
        if action == "stop":
            self.client.bird_stop(args[1])
            return f"bgp to {args[1]}: stopped"
        if action == "status":
            lines = [
                f"{pop}: {state}"
                for pop, state in sorted(self.client.bird_status().items())
            ]
            return "\n".join(lines) or "no sessions"
        if action == "refresh":
            self.client.bird_refresh(args[1])
            return f"route refresh sent to {args[1]}"
        return self._usage()

    def _cmd_bird(self, args: list[str]) -> str:
        if len(args) < 2:
            return self._usage()
        return self.client.bird_cli(args[0], " ".join(args[1:]))

    # -- prefix --------------------------------------------------------------

    def _cmd_prefix(self, args: list[str]) -> str:
        if not args:
            return self._usage()
        action, *rest = args
        if action == "announce":
            return self._announce(rest)
        if action == "withdraw":
            return self._withdraw(rest)
        return self._usage()

    def _announce(self, args: list[str]) -> str:
        prefix, options = self._parse_options(args)
        if prefix is None:
            return "error: missing prefix"
        sent = self.client.announce(
            prefix,
            pops=options["pops"] or None,
            communities=options["communities"],
            prepend=options["prepend"],
            poison=options["poisons"],
        )
        targets = ", ".join(options["pops"]) if options["pops"] else "all PoPs"
        return f"announced {prefix} to {targets} ({len(sent)} update(s))"

    def _withdraw(self, args: list[str]) -> str:
        prefix, options = self._parse_options(args)
        if prefix is None:
            return "error: missing prefix"
        self.client.withdraw(prefix, pops=options["pops"] or None)
        targets = ", ".join(options["pops"]) if options["pops"] else "all PoPs"
        return f"withdrew {prefix} from {targets}"

    # -- telemetry -----------------------------------------------------------

    def _cmd_telemetry(self, args: list[str]) -> str:
        hub = getattr(self.client.platform, "telemetry", None)
        if hub is None:
            return "telemetry disabled (platform built without a hub)"
        action = args[0] if args else "summary"
        if action == "summary":
            parts = [f"{key}={value}"
                     for key, value in sorted(hub.station.summary().items())]
            parts.append(f"trace_events={len(hub.tracer)}")
            parts.append(f"trace_dropped={hub.tracer.dropped}")
            parts.append(f"metric_families={len(hub.registry.families())}")
            return "\n".join(parts)
        if action == "metrics":
            fmt = args[1] if len(args) > 1 else "prom"
            if fmt == "json":
                return hub.render_json()
            if fmt == "prom":
                return hub.render_prometheus()
            return f"error: unknown metrics format {fmt!r}"
        if action == "peers":
            lines = []
            for peer in hub.station.peer_names():
                record = hub.station.peers[peer]
                lines.append(
                    f"{peer}: {record.state} ups={record.ups} "
                    f"downs={record.downs} "
                    f"routes={hub.station.rib_in_size(peer)}"
                )
            return "\n".join(lines) or "no peers observed"
        if action == "rib":
            if len(args) < 2:
                return "error: usage: peering telemetry rib <peer>"
            routes = hub.station.rib_in(args[1])
            if not routes:
                return f"no routes mirrored for {args[1]}"
            return "\n".join(str(route) for route in routes)
        if action == "events":
            count = int(args[1]) if len(args) > 1 else 20
            events = hub.tracer.tail(count)
            if not events:
                return "no trace events"
            return "\n".join(event.format() for event in events)
        return self._usage()

    # -- health --------------------------------------------------------------

    def _cmd_health(self, args: list[str]) -> str:
        """Per-PoP overload health (DESIGN.md §6i).

        One block per PoP: the watchdog's verdict and evidence, then a
        line per ingress source (queue depth against capacity, delivery
        and shed accounting, breaker state).  The exit code is the
        worst state observed — 0 healthy, 1 degraded, 2 critical — so
        ``peering health`` drops straight into scripts and pre-flight
        checks.  PoPs without the overload layer report as such and do
        not affect the exit code.
        """
        from repro.overload.watchdog import HEALTH_LEVEL

        pops = dict(self.client.platform.pops)
        if args:
            name = args[0]
            if name not in pops:
                return f"error: unknown pop {name!r}"
            pops = {name: pops[name]}
        lines: list[str] = []
        worst = 0
        for name in sorted(pops):
            pop = pops[name]
            watchdog = getattr(pop, "watchdog", None)
            governor = getattr(pop, "overload", None)
            if watchdog is None or governor is None:
                lines.append(f"{name}: overload layer not enabled")
                continue
            snap = watchdog.snapshot()
            worst = max(worst, HEALTH_LEVEL[snap["state"]])
            lines.append(
                f"{name}: {snap['state'].upper()} "
                f"(transitions {snap['transitions']})"
            )
            lines.append(f"  {snap['detail']}")
            for peer, entry in sorted(governor.snapshot().items()):
                parts = []
                if "depth" in entry:
                    parts.append(
                        f"queue {entry['announce_depth']}"
                        f"/{entry['capacity']}"
                    )
                    parts.append(f"delivered {entry['delivered']}")
                    parts.append(f"shed {entry['shed']}")
                    parts.append(f"rejected {entry['rejected']}")
                if "breaker" in entry:
                    parts.append(
                        f"breaker {entry['breaker']} "
                        f"(trips {entry['trips']})"
                    )
                lines.append(f"  {peer}: " + ", ".join(parts))
        self.exit_code = worst
        return "\n".join(lines) or "no PoPs"

    # -- chaos ---------------------------------------------------------------

    def _cmd_chaos(self, args: list[str]) -> str:
        """Run a named chaos scenario against a self-contained world.

        The drill builds its own small deployment (fresh simulator, two
        PoPs, resilient transits, two experiments) so it cannot disturb
        the session's live platform; it reports the scenario verdicts.
        """
        from repro.chaos import ChaosRunner, build_chaos_world

        if not args:
            return self._usage()
        seed = 0
        rest = []
        index = 0
        while index < len(args):
            if args[index] == "--seed":
                index += 1
                seed = int(args[index])
            else:
                rest.append(args[index])
            index += 1
        if rest and rest[0] == "list":
            return "\n".join(ChaosRunner.SCENARIOS)
        world = build_chaos_world(seed=seed)
        runner = ChaosRunner(world)
        if rest and rest[0] == "all":
            results = runner.run_all()
        else:
            results = [runner.run(name) for name in rest]
        if any(not result.ok for result in results):
            self.exit_code = 1
        return "\n".join(result.format() for result in results)

    # -- fleet ---------------------------------------------------------------

    def _cmd_fleet(self, args: list[str]) -> str:
        """Compile and operate a PoP fleet (DESIGN.md §6k).

        ``compile`` turns the demo WorldSpec into per-PoP artifacts;
        ``up``/``status``/``down`` drive them as one OS process per PoP
        over loopback TCP; ``differential`` runs the in-process vs
        real-fleet byte-identity proof; ``crash`` the fleet-pop-crash
        chaos scenario.  Exit 1 when a differential or crash run fails,
        2 on usage errors — the shared convention.
        """
        if not args:
            return self._usage()
        action, *rest = args
        options = self._parse_fleet_options(rest)
        if action == "compile":
            return self._fleet_compile(options)
        if action in ("up", "status", "down"):
            return self._fleet_lifecycle(action, options)
        if action == "run-pop":
            from repro.fleet import runpop

            if len(options["rest"]) != 1:
                return "error: usage: peering fleet run-pop <artifact>"
            status = runpop.main(options["rest"])
            self.exit_code = status
            return f"pop exited with status {status}"
        if action == "differential":
            from repro.fleet.differential import run_fleet_differential

            report = run_fleet_differential(
                pops=options["pops"], updates=options["updates"],
                seed=options["seed"], port_base=options["port_base"],
            )
            if not report.ok:
                self.exit_code = 1
            return report.format()
        if action == "crash":
            from repro.fleet.crash import run_fleet_pop_crash

            result = run_fleet_pop_crash(
                seed=options["seed"], port_base=options["port_base"],
            )
            if not result.ok:
                self.exit_code = 1
            return result.format()
        return self._usage()

    def _fleet_compile(self, options: dict) -> str:
        from repro.fleet import compile_world, demo_world_spec

        if options["dir"] is None:
            return "error: peering fleet compile requires --dir"
        spec = demo_world_spec(
            pops=options["pops"], port_base=options["port_base"]
        )
        fleet = compile_world(spec, options["dir"])
        lines = [f"compiled world {spec.name} (digest {fleet.digest}) "
                 f"into {fleet.directory}"]
        lines += [f"  {name}: {fleet.artifact_path(name)}"
                  for name in fleet.pop_names()]
        return "\n".join(lines)

    def _fleet_lifecycle(self, action: str, options: dict) -> str:
        from repro.fleet import FleetController, load_fleet
        from repro.fleet.controller import fleet_down, fleet_status

        if options["dir"] is None:
            return f"error: peering fleet {action} requires --dir"
        fleet = load_fleet(options["dir"])
        if action == "up":
            controller = FleetController(fleet)
            controller.up()
            self._fleet_controllers[str(fleet.directory)] = controller
            return "\n".join(
                f"{name}: up (pid {proc.pid})"
                for name, proc in sorted(controller.processes.items())
            )
        controller = self._fleet_controllers.get(str(fleet.directory))
        if action == "status":
            rows = (controller.status() if controller is not None
                    else fleet_status(fleet))
            lines = []
            for name, row in sorted(rows.items()):
                state = "running" if row["running"] else "down"
                line = f"{name}: {state} (pid {row['pid']})"
                summary = row.get("summary")
                if summary:
                    line += (f" routes={summary['routes']} upstreams="
                             + ",".join(
                                 f"{up}:{'up' if ok else 'down'}"
                                 for up, ok in
                                 sorted(summary["upstreams"].items())))
                lines.append(line)
            return "\n".join(lines)
        if controller is not None:
            controller.down()
            del self._fleet_controllers[str(fleet.directory)]
            return "\n".join(f"{name}: stopped"
                             for name in sorted(fleet.pop_names()))
        outcome = fleet_down(fleet)
        return "\n".join(f"{name}: {state}"
                         for name, state in sorted(outcome.items()))

    @staticmethod
    def _parse_fleet_options(args: list[str]) -> dict:
        options = {
            "pops": 3,
            "updates": 18,
            "seed": 0,
            "port_base": None,
            "dir": None,
            "rest": [],
        }
        index = 0
        while index < len(args):
            token = args[index]
            if token in ("--pops", "--updates", "--seed", "--port-base",
                         "--dir"):
                if index + 1 >= len(args):
                    raise ValueError(f"{token} requires a value")
                index += 1
                key = token.lstrip("-").replace("-", "_")
                options[key] = (args[index] if token == "--dir"
                                else int(args[index]))
            else:
                options["rest"].append(token)
            index += 1
        return options

    # -- intent --------------------------------------------------------------

    def _controller(self):
        if self._intent_controller is None:
            from repro.intent import IntentController

            self._intent_controller = IntentController(
                self.client.scheduler,
                self.client.platform,
                {self.client.name: self.client},
                telemetry=getattr(self.client.platform, "telemetry", None),
            )
        return self._intent_controller

    def _pending_changeset(self):
        from repro.intent import ChangeSet

        return ChangeSet(
            name=f"{self.client.name}-pending",
            ops=tuple(self._intent_ops),
        )

    def _cmd_intent(self, args: list[str]) -> str:
        """Transactional configuration changes (DESIGN.md §6h).

        ``op …`` accumulates a pending ChangeSet; ``plan`` dry-runs it
        (predicted per-neighbor export diffs plus the invariant
        catalog, live platform untouched); ``apply`` stages the last
        plan, re-verifies, and commits — or auto-reverts on breach.
        Exit code 1 on a not-clean plan, non-committed apply, or dirty
        revert.
        """
        if not args:
            return self._usage()
        action, *rest = args
        if action == "op":
            return self._intent_add_op(rest)
        if action == "show":
            return self._pending_changeset().describe()
        if action == "clear":
            count = len(self._intent_ops)
            self._intent_ops.clear()
            return f"cleared {count} pending op(s)"
        if action == "plan":
            plan = self._controller().plan(self._pending_changeset())
            self._intent_plan = plan
            if not plan.report.ok:
                self.exit_code = 1
            return f"{plan.intent_id}\n{plan.report.format()}"
        if action == "diff":
            report = self._controller().evaluator.evaluate(
                self._pending_changeset()
            )
            if not report.ok:
                self.exit_code = 1
            return report.format()
        if action == "apply":
            return self._intent_apply(rest)
        if action == "revert":
            if not rest:
                return "error: usage: peering intent revert <intent-id>"
            record = self._controller().revert(rest[0])
            if record.revert_clean is False:
                self.exit_code = 1
            return record.format()
        if action == "history":
            return self._controller().history_text()
        return self._usage()

    def _intent_add_op(self, args: list[str]) -> str:
        from repro.intent import (
            announce_op,
            connect_op,
            disconnect_op,
            withdraw_op,
        )

        if not args:
            return self._usage()
        kind, *rest = args
        if kind in ("connect", "disconnect"):
            if not rest:
                return f"error: usage: peering intent op {kind} <pop>"
            maker = connect_op if kind == "connect" else disconnect_op
            op = maker(self.client.name, rest[0])
        elif kind in ("announce", "withdraw"):
            prefix, options = self._parse_options(rest)
            if prefix is None:
                return "error: missing prefix"
            if kind == "withdraw":
                op = withdraw_op(
                    self.client.name, str(prefix), pops=options["pops"]
                )
            else:
                op = announce_op(
                    self.client.name,
                    str(prefix),
                    pops=options["pops"],
                    communities=tuple(
                        str(c) for c in options["communities"]
                    ),
                    prepend=options["prepend"],
                    poison=options["poisons"],
                )
        else:
            return self._usage()
        self._intent_ops.append(op)
        return (
            f"op {len(self._intent_ops)}: {op.describe()} "
            f"(digest {self._pending_changeset().digest()})"
        )

    def _intent_apply(self, args: list[str]) -> str:
        force = "--force" in args
        plan = self._intent_plan
        if plan is None:
            plan = self._controller().plan(self._pending_changeset())
            self._intent_plan = plan
        record = self._controller().apply(plan, force=force)
        self._intent_plan = None
        self._intent_ops.clear()
        if record.phase != "committed" or record.revert_clean is False:
            self.exit_code = 1
        return record.format()

    # -- verify --------------------------------------------------------------

    def _cmd_verify(self, args: list[str]) -> str:
        """Run the conformance checkers (DESIGN.md §6e).

        ``invariants`` evaluates the platform invariant catalog against
        the *live* platform this CLI is attached to; ``codec`` fuzzes
        the wire decoder (corpus replayed first); ``differential``
        replays a churn workload through every perf-toggle combination;
        ``all`` runs everything with CLI-sized budgets.
        """
        action = args[0] if args else "invariants"
        rest, options = self._parse_verify_options(args[1:])
        if action == "invariants":
            return self._verify_invariants(rest)
        if action == "codec":
            return self._verify_codec(options)
        if action == "differential":
            return self._verify_differential(options)
        if action == "all":
            return "\n".join((
                self._verify_invariants([]),
                self._verify_codec(options),
                self._verify_differential(options),
            ))
        return self._usage()

    def _verify_invariants(self, names: list[str]) -> str:
        from repro.conformance.invariants import (
            ConformanceContext,
            run_invariants,
        )

        context = ConformanceContext.from_platform(
            self.client.platform,
            clients={self.client.name: self.client},
        )
        reports = run_invariants(context, names=names or None)
        if any(not report.ok for report in reports.values()):
            self.exit_code = 1
        return "\n".join(report.format() for report in reports.values())

    def _verify_codec(self, options: dict) -> str:
        from repro.conformance.fuzzer import DecoderFuzzer

        fuzzer = DecoderFuzzer(seed=options["seed"])
        result = fuzzer.run(iterations=options["frames"])
        if not result.ok:
            self.exit_code = 1
        return result.format()

    def _verify_differential(self, options: dict) -> str:
        from repro.conformance.differential import DifferentialHarness

        prefixes = options["prefixes"]
        if prefixes is None:
            # The fulltable default keeps the CLI interactive: a DFZ-shaped
            # table at reduced scale (benchmarks run the real 900k).
            prefixes = 4000 if options["workload"] == "fulltable" else 5000
        harness = DifferentialHarness(
            update_count=options["updates"],
            seed=options["seed"] or 20260806,
            prefix_count=prefixes,
            workload=options["workload"],
        )
        if options["backend"] is not None:
            # Real-backend sweep (DESIGN.md §6j): prove every requested
            # execution backend byte-identical to the sync reference,
            # composed with the requested shard counts.
            from repro.conformance.differential import SHARD_COUNTS

            result = harness.run_backends(
                backends=options["backend"],
                counts=options["shards"] or SHARD_COUNTS,
                partition=options["partition"],
            )
        elif options["shards"] is not None:
            # Shard-count sweep (DESIGN.md §6f): prove the fan-out is
            # byte-identical at every requested shard count instead of
            # sweeping the perf-flag lattice.
            result = harness.run_shards(
                counts=options["shards"],
                partition=options["partition"],
            )
        else:
            # With eight toggles the full lattice is 256 runs; the CLI
            # defaults to the curated 16-combination subsample.
            # ``--subsample 0`` requests the full lattice.
            subsample = options["subsample"]
            result = harness.run(
                subsample=None if subsample == 0 else subsample
            )
        if not result.ok:
            self.exit_code = 1
        return result.format()

    @staticmethod
    def _parse_verify_options(args: list[str]):
        options = {
            "frames": 2000,
            "updates": 300,
            "seed": 0,
            "shards": None,
            "backend": None,
            "partition": "neighbor",
            "workload": "churn",
            "prefixes": None,
            "subsample": 16,
        }
        takes_value = ("--frames", "--updates", "--seed", "--prefixes",
                       "--subsample", "--shards", "--backend",
                       "--partition", "--workload")
        rest: list[str] = []
        index = 0
        while index < len(args):
            token = args[index]
            if token in takes_value and index + 1 >= len(args):
                raise ValueError(f"{token} requires a value")
            if token in ("--frames", "--updates", "--seed", "--prefixes",
                         "--subsample"):
                index += 1
                options[token.lstrip("-")] = int(args[index])
            elif token == "--shards":
                index += 1
                options["shards"] = tuple(
                    int(part)
                    for part in args[index].split(",")
                    if part.strip()
                )
            elif token == "--backend":
                index += 1
                options["backend"] = tuple(
                    part.strip()
                    for part in args[index].split(",")
                    if part.strip()
                )
            elif token == "--partition":
                index += 1
                options["partition"] = args[index]
            elif token == "--workload":
                index += 1
                options["workload"] = args[index]
            else:
                rest.append(token)
            index += 1
        return rest, options

    @staticmethod
    def _parse_options(args: list[str]):
        prefix: Optional[IPv4Prefix] = None
        options = {
            "pops": [],
            "communities": [],
            "prepend": 0,
            "poisons": [],
        }
        index = 0
        while index < len(args):
            token = args[index]
            if token == "-m":
                index += 1
                options["pops"].append(args[index])
            elif token == "-c":
                index += 1
                options["communities"].append(Community.parse(args[index]))
            elif token == "-p":
                index += 1
                options["prepend"] = int(args[index])
            elif token == "-x":
                index += 1
                options["poisons"].append(int(args[index]))
            else:
                prefix = IPv4Prefix.parse(token)
            index += 1
        return prefix, options
