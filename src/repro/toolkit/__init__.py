"""The experiment toolkit (§4.5, Table 1).

Client-side wrappers giving experimenters a turn-key interface: tunnel
management (OpenVPN), BGP session management (BIRD), and prefix control
(announce/withdraw with community, AS-path-prepend, and poisoning
manipulation) — plus the per-packet egress selection that advanced
experiments configure themselves (§3.2.2).
"""

from repro.toolkit.client import ExperimentClient, PopView
from repro.toolkit.cli import ToolkitCli

__all__ = ["ExperimentClient", "PopView", "ToolkitCli"]
