"""The experiment-side controller (the ``peering`` scripts + client BIRD).

An :class:`ExperimentClient` owns the experiment's network stack, opens
tunnels to PoPs, runs a BIRD-like BGP endpoint per PoP (ADD-PATH), and
exposes the Table 1 surface:

=================  =====================================================
Category           Functionality
=================  =====================================================
OpenVPN            Open/close/check status of tunnels
BGP/BIRD           Start/stop sessions; status; CLI access
Prefix management  Announce/withdraw; communities; AS-path manipulation
=================  =====================================================

It also implements the data-plane side of §3.2.2: looking up the routes
vBGP exported (next hop = per-neighbor virtual IP) and sending packets via
a chosen neighbor, exactly as a router or an Espresso-style controller
would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.bgp.attributes import (
    AsPath,
    Community,
    PathAttributes,
    Origin,
    Route,
)
from repro.bgp.messages import UpdateMessage
from repro.bgp.session import BgpSession, SessionConfig
from repro.netsim.addr import IPv4Address, Prefix
from repro.netsim.frames import IcmpMessage, IcmpType, IpProto, IPv4Packet
from repro.netsim.stack import NetworkStack
from repro.platform.peering import ExperimentConnection, PeeringPlatform
from repro.sim.scheduler import Scheduler


def build_announcement(
    prefix: Prefix,
    origin: int,
    platform_asn: int,
    communities: Iterable[Community] = (),
    prepend: int = 0,
    poison: Sequence[int] = (),
) -> Route:
    """The client-side route for one announcement, before localization.

    Pure: given the same arguments it always builds the same route (the
    next hop is a placeholder; :meth:`ExperimentClient.announce` swaps
    in the per-PoP tunnel address).  Shared by the live announce path
    and the intent layer's dry-run evaluator so a planned ChangeSet
    stages exactly the route the plan predicted.
    """
    asns: list[int] = []
    if poison:
        # Classic poisoning: sandwich the poisoned ASNs in our own.
        asns = [origin] + list(poison) + [origin]
    elif origin != platform_asn:
        asns = [origin]
    if prepend:
        # ``prepend`` counts the copies of our ASN in the client-side
        # path (the mux prepends the platform ASN again on export).
        pad = max(prepend - (1 if asns and asns[0] == origin else 0), 0)
        asns = [origin] * pad + asns
    return Route(
        prefix=prefix,
        attributes=PathAttributes(
            origin=Origin.IGP,
            as_path=AsPath.from_asns(*asns),
            next_hop=IPv4Address(0),  # placeholder, localized per PoP
            communities=frozenset(communities),
        ),
    )


@dataclass
class PopView:
    """Everything the client tracks about one connected PoP."""

    pop: str
    connection: ExperimentConnection
    session: Optional[BgpSession] = None
    # Routes received over ADD-PATH: path id -> route.
    routes: dict[int, Route] = field(default_factory=dict)
    announced: dict[Prefix, Route] = field(default_factory=dict)

    @property
    def iface(self) -> str:
        return self.connection.tunnel.client_iface

    def routes_for(self, prefix: Prefix) -> list[Route]:
        return [r for r in self.routes.values() if r.prefix == prefix]

    def all_routes(self) -> list[Route]:
        return list(self.routes.values())


class ExperimentClient:
    """A connected experiment."""

    def __init__(self, scheduler: Scheduler, name: str,
                 platform: PeeringPlatform) -> None:
        self.scheduler = scheduler
        self.name = name
        self.platform = platform
        self.stack = NetworkStack(scheduler, name=f"exp-{name}")
        self.pops: dict[str, PopView] = {}
        experiment = platform.experiments.get(name)
        if experiment is None:
            raise KeyError(f"experiment {name!r} is not approved")
        self.profile = experiment.profile
        lease = platform.resources.lease_for(name)
        self.asn = lease.asn if lease is not None else platform.platform_asn
        self._received_packets: list[IPv4Packet] = []
        self._received_icmp: list[tuple[IPv4Packet, IcmpMessage]] = []
        # (packet, delivering source MAC, iface) — the source MAC is the
        # virtual MAC of the neighbor that delivered the traffic (§3.2.2).
        self.delivered: list[tuple[IPv4Packet, object, str]] = []
        self.echo_responder = True
        # Listeners called as fn(packet, icmp, now) on inbound ICMP — used
        # by controllers that need arrival timestamps (RTT measurement).
        self.icmp_listeners: list = []
        self.stack.ingress_hooks.append(self._experiment_ingress)

    def _experiment_ingress(self, frame, iface):
        """Terminate traffic addressed to the experiment's prefixes.

        A real experiment assigns allocation addresses to an interface (or
        runs a server); the client does the equivalent in one hook, and
        additionally records the delivering neighbor's virtual MAC.
        """
        from repro.netsim.frames import EtherType

        if frame.ethertype != EtherType.IPV4 or not isinstance(
            frame.payload, IPv4Packet
        ):
            return frame
        packet = frame.payload
        if not any(
            p.contains_address(packet.dst) for p in self.profile.prefixes
        ):
            return frame
        self.delivered.append((packet, frame.src, iface.name))
        if packet.proto == IpProto.ICMP and isinstance(
            packet.payload, IcmpMessage
        ):
            icmp = packet.payload
            if (
                icmp.icmp_type == IcmpType.ECHO_REQUEST
                and self.echo_responder
            ):
                self._auto_reply(packet, icmp, iface.name)
            else:
                self._received_icmp.append((packet, icmp))
                for listener in self.icmp_listeners:
                    listener(packet, icmp, self.scheduler.now)
        else:
            self._received_packets.append(packet)
        return None

    def _auto_reply(self, packet: IPv4Packet, icmp: IcmpMessage,
                    iface_name: str) -> None:
        """Answer an inbound echo request via a vBGP route (services are
        reachable from the Internet — §2.1's hosting goal)."""
        reply = IPv4Packet(
            src=packet.dst,
            dst=packet.src,
            proto=IpProto.ICMP,
            payload=IcmpMessage(
                icmp_type=IcmpType.ECHO_REPLY,
                identifier=icmp.identifier,
                sequence=icmp.sequence,
                payload=icmp.payload,
            ),
        )
        pop_name = self._pop_for_iface(iface_name)
        candidates = self.lookup(reply.dst, pop_name)
        if not candidates and pop_name is not None:
            candidates = self.lookup(reply.dst)
        if candidates:
            target_pop = pop_name or next(iter(self.pops))
            for pop, view in self.pops.items():
                if candidates[0] in view.routes.values():
                    target_pop = pop
                    break
            self.send_via(target_pop, candidates[0], reply)

    def _pop_for_iface(self, iface_name: str) -> Optional[str]:
        for pop, view in self.pops.items():
            if view.iface == iface_name:
                return pop
        return None

    # ------------------------------------------------------------------
    # OpenVPN category
    # ------------------------------------------------------------------

    # One-way latency when the experiment runs in a container directly on
    # the PEERING server (the §7.4 extension) instead of over OpenVPN.
    CONTAINER_LATENCY = 0.00005

    def openvpn_up(self, pop_name: str,
                   latency: Optional[float] = None,
                   container: bool = False) -> PopView:
        """Open the tunnel to a PoP (``peering openvpn up <pop>``).

        ``container=True`` models the paper's §7.4 extension — a
        lightweight experiment container running *on* the PEERING server,
        attached over the local bridge instead of an Internet VPN tunnel
        (for latency-sensitive experiments).
        """
        if pop_name in self.pops:
            raise ValueError(f"tunnel to {pop_name} already up")
        if container:
            latency = self.CONTAINER_LATENCY
        connection = self.platform.connect_experiment(
            self.name, pop_name, self.stack, tunnel_latency=latency
        )
        view = PopView(pop=pop_name, connection=connection)
        self.pops[pop_name] = view
        return view

    def openvpn_down(self, pop_name: str) -> None:
        view = self.pops.pop(pop_name, None)
        if view is None:
            return
        if view.session is not None:
            view.session.shutdown()
        self.platform.disconnect_experiment(self.name, pop_name)

    def openvpn_status(self) -> dict[str, dict]:
        return {
            pop: view.connection.tunnel.status()
            for pop, view in self.pops.items()
        }

    # ------------------------------------------------------------------
    # BGP/BIRD category
    # ------------------------------------------------------------------

    def bird_start(self, pop_name: str) -> BgpSession:
        """Start the BGP session with a PoP (``peering bgp start``)."""
        view = self.pops[pop_name]
        if view.session is not None and view.session.established:
            return view.session
        if view.connection.channel.closed:
            # BIRD restart: new transport over the existing tunnel.
            view.connection.channel = self.platform.reconnect_bgp(
                self.name, pop_name
            )
        session = BgpSession(
            self.scheduler,
            SessionConfig(
                local_asn=self.asn,
                local_id=view.connection.tunnel.client_ip,
                peer_asn=self.platform.platform_asn,
                addpath=True,
                description=f"client:{self.name}:{pop_name}",
            ),
            view.connection.channel,
            on_update=lambda _s, update, pop=pop_name: (
                self._update_received(pop, update)
            ),
            telemetry=getattr(self.platform, "telemetry", None),
        )
        view.session = session
        session.start()
        return session

    def bird_refresh(self, pop_name: str) -> None:
        """Soft reset: ask vBGP to resend the full table (RFC 2918)."""
        view = self.pops[pop_name]
        if view.session is None or not view.session.established:
            raise RuntimeError(f"BGP session to {pop_name} is not up")
        view.session.send_route_refresh()

    def bird_stop(self, pop_name: str) -> None:
        view = self.pops.get(pop_name)
        if view is not None and view.session is not None:
            view.session.shutdown()
            view.session = None
            view.routes.clear()

    def bird_status(self) -> dict[str, str]:
        return {
            pop: (view.session.state.value if view.session else "down")
            for pop, view in self.pops.items()
        }

    def bird_cli(self, pop_name: str, command: str) -> str:
        """A birdc-flavoured read-only CLI over the client's RIB."""
        view = self.pops.get(pop_name)
        if view is None:
            return f"no such PoP: {pop_name}"
        words = command.strip().split()
        if words[:2] == ["show", "route"]:
            lines = []
            for path_id, route in sorted(view.routes.items()):
                lines.append(f"{route} [pop {pop_name}]")
            return "\n".join(lines) or "Network is empty"
        if words[:2] == ["show", "protocols"]:
            state = view.session.state.value if view.session else "down"
            return f"{pop_name} bgp {state}"
        return f"unknown command: {command}"

    def _update_received(self, pop_name: str, update: UpdateMessage) -> None:
        view = self.pops.get(pop_name)
        if view is None:
            return
        for prefix, path_id in update.withdrawn:
            if path_id is not None:
                view.routes.pop(path_id, None)
        for route in update.routes():
            if route.path_id is not None:
                view.routes[route.path_id] = route

    # ------------------------------------------------------------------
    # Prefix management category
    # ------------------------------------------------------------------

    def announce(
        self,
        prefix: Prefix,
        pops: Optional[Sequence[str]] = None,
        communities: Iterable[Community] = (),
        prepend: int = 0,
        poison: Sequence[int] = (),
        origin_asn: Optional[int] = None,
    ) -> list[Route]:
        """Announce a prefix (``peering prefix announce``).

        ``prepend`` adds copies of the experiment ASN; ``poison`` inserts
        foreign ASNs sandwiched by the experiment ASN (requires the
        poisoning capability to clear the security enforcer).
        """
        origin = origin_asn if origin_asn is not None else self.asn
        route = build_announcement(
            prefix,
            origin=origin,
            platform_asn=self.platform.platform_asn,
            communities=communities,
            prepend=prepend,
            poison=poison,
        )
        sent = []
        for pop_name in pops if pops is not None else list(self.pops):
            view = self.pops[pop_name]
            if view.session is None or not view.session.established:
                raise RuntimeError(f"BGP session to {pop_name} is not up")
            localized = route.with_next_hop(view.connection.tunnel.client_ip)
            view.session.send_update(UpdateMessage.announce([localized]))
            view.announced[prefix] = localized
            sent.append(localized)
        return sent

    def replay_route(self, pop_name: str, route: Route) -> None:
        """Re-send one previously announced route verbatim.

        The intent layer's auto-revert uses this to restore a recorded
        snapshot exactly: the route (next hop already localized) is
        replayed without rebuilding it, so the restored state is
        byte-identical to what the snapshot captured.
        """
        view = self.pops[pop_name]
        if view.session is None or not view.session.established:
            raise RuntimeError(f"BGP session to {pop_name} is not up")
        view.session.send_update(UpdateMessage.announce([route]))
        view.announced[route.prefix] = route

    def withdraw(self, prefix: Prefix,
                 pops: Optional[Sequence[str]] = None) -> None:
        """Withdraw a prefix (``peering prefix withdraw``)."""
        for pop_name in pops if pops is not None else list(self.pops):
            view = self.pops[pop_name]
            if view.session is None or not view.session.established:
                continue
            route = view.announced.pop(prefix, None)
            if route is None:
                route = Route(prefix=prefix, attributes=PathAttributes())
            view.session.send_update(UpdateMessage.withdraw([route]))

    # ------------------------------------------------------------------
    # Data plane: per-packet egress selection (§3.2.2)
    # ------------------------------------------------------------------

    def routes(self, prefix: Prefix,
               pop_name: Optional[str] = None) -> list[Route]:
        """All routes vBGP exported for ``prefix`` (ADD-PATH visibility)."""
        views = (
            [self.pops[pop_name]] if pop_name is not None
            else list(self.pops.values())
        )
        result = []
        for view in views:
            result.extend(
                route for route in view.routes.values()
                if route.prefix.contains_address(prefix.network)
                or route.prefix == prefix
            )
        return result

    def lookup(self, destination: IPv4Address,
               pop_name: Optional[str] = None) -> list[Route]:
        """Candidate routes for a destination address."""
        views = (
            [self.pops[pop_name]] if pop_name is not None
            else list(self.pops.values())
        )
        result = []
        for view in views:
            best_len = -1
            matches: list[Route] = []
            for route in view.routes.values():
                if route.prefix.contains_address(destination):
                    if route.prefix.length > best_len:
                        best_len = route.prefix.length
                        matches = [route]
                    elif route.prefix.length == best_len:
                        matches.append(route)
            result.extend(matches)
        return result

    def send_via(self, pop_name: str, route: Route,
                 packet: IPv4Packet) -> None:
        """Send a packet using a specific vBGP route.

        Resolves the route's (virtual) next hop over the tunnel — exactly
        the ARP-then-frame sequence of Figure 2b — so the destination MAC
        encodes the chosen neighbor.
        """
        view = self.pops[pop_name]
        if route.next_hop is None:
            raise ValueError("route has no next hop")
        self.stack.send_ip_via(packet, route.next_hop, view.iface)

    def ping(self, pop_name: str, route: Route, dst: IPv4Address,
             src: Optional[IPv4Address] = None,
             sequence: int = 1) -> None:
        source = src if src is not None else self._default_source()
        packet = IPv4Packet(
            src=source,
            dst=dst,
            proto=IpProto.ICMP,
            payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST,
                                sequence=sequence),
        )
        self.send_via(pop_name, route, packet)

    def received_packets(self) -> list[IPv4Packet]:
        return list(self._received_packets)

    def received_icmp(self) -> list[tuple[IPv4Packet, IcmpMessage]]:
        return list(self._received_icmp)

    def _default_source(self) -> IPv4Address:
        if self.profile.prefixes:
            return self.profile.prefixes[0].address_at(1)
        raise RuntimeError("experiment has no allocated prefixes")
