"""Event tracing: nestable spans over a bounded ring buffer.

The :class:`Tracer` records *simulation-time* events — its clock is the
shared :class:`~repro.sim.scheduler.Scheduler`, so traces line up exactly
with BGP timers, MRAI batching, and churn replay.  Storage is a
``deque(maxlen=capacity)``: old events are evicted silently (the count is
kept in :attr:`Tracer.dropped`) so an always-on tracer cannot grow without
bound during an 18-hour AMS-IX replay.

Two API shapes:

* ``with tracer.span("router.reconfigure", router="r1"): ...`` for cold
  paths (context-manager convenience), and
* ``token = tracer.begin(...) … tracer.end(token)`` for hot paths, where
  the caller already guards on telemetry being enabled and a generator
  frame per update would be measurable.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = ["SpanToken", "TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One entry in the ring buffer."""

    time: float
    name: str
    kind: str  # "event" | "span-start" | "span-end"
    span_id: int = 0
    parent_id: int = 0
    duration: Optional[float] = None  # span-end only
    data: dict = field(default_factory=dict)

    def format(self) -> str:
        parts = [f"{self.time:.6f}", self.kind, self.name]
        if self.kind == "span-end" and self.duration is not None:
            parts.append(f"dur={self.duration:.6f}")
        if self.data:
            parts.append(
                " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
            )
        return "  ".join(parts)


@dataclass(frozen=True)
class SpanToken:
    """Handle returned by :meth:`Tracer.begin`, consumed by ``end``."""

    span_id: int
    parent_id: int
    name: str
    start: float


class Tracer:
    """Bounded, clock-driven event log with span nesting."""

    def __init__(self, clock: Callable[[], float],
                 capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.clock = clock
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0
        self._ids = itertools.count(1)
        self._active: list[int] = []  # span-id stack (nesting)

    # -- recording ---------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        self.recorded += 1

    def event(self, name: str, **data: object) -> None:
        """Record an instantaneous event under the current span."""
        parent = self._active[-1] if self._active else 0
        self._append(TraceEvent(
            time=self.clock(), name=name, kind="event",
            parent_id=parent, data=dict(data) if data else {},
        ))

    def begin(self, name: str, **data: object) -> SpanToken:
        """Open a span; pair with :meth:`end`."""
        parent = self._active[-1] if self._active else 0
        span_id = next(self._ids)
        now = self.clock()
        self._append(TraceEvent(
            time=now, name=name, kind="span-start", span_id=span_id,
            parent_id=parent, data=dict(data) if data else {},
        ))
        self._active.append(span_id)
        return SpanToken(span_id=span_id, parent_id=parent, name=name,
                         start=now)

    def end(self, token: SpanToken, **data: object) -> float:
        """Close a span; returns its simulated duration."""
        # Tolerate out-of-order ends (a teardown racing a span) by
        # unwinding the stack to the closed span.
        while self._active and self._active[-1] != token.span_id:
            self._active.pop()
        if self._active:
            self._active.pop()
        now = self.clock()
        duration = now - token.start
        self._append(TraceEvent(
            time=now, name=token.name, kind="span-end",
            span_id=token.span_id, parent_id=token.parent_id,
            duration=duration, data=dict(data) if data else {},
        ))
        return duration

    @contextmanager
    def span(self, name: str, **data: object) -> Iterator[SpanToken]:
        token = self.begin(name, **data)
        try:
            yield token
        finally:
            self.end(token)

    # -- reading -----------------------------------------------------------

    def tail(self, n: int = 20) -> list[TraceEvent]:
        if n <= 0:
            return []
        return list(self.events)[-n:]

    def named(self, name: str) -> list[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def depth(self) -> int:
        """Current span-nesting depth (0 outside any span)."""
        return len(self._active)

    def clear(self) -> None:
        self.events.clear()
        self._active.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
