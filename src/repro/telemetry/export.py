"""Exporters: Prometheus text exposition format and JSON.

Both walk a :class:`~repro.telemetry.metrics.MetricsRegistry` at call time
(function gauges are evaluated here), emit families in sorted-name order
and samples in insertion order, and are deterministic for a deterministic
simulation — which is what makes the golden-output tests possible.
"""

from __future__ import annotations

import json
import math

from repro.telemetry.metrics import (
    CounterFamily,
    HistogramFamily,
    MetricsRegistry,
)

__all__ = ["prometheus_text", "registry_to_dict", "json_text"]


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels_fragment(names: tuple[str, ...], values: tuple[str, ...],
                     extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{_escape(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    prefix = registry.namespace
    for family in registry.families():
        name = f"{prefix}_{family.name}" if prefix else family.name
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        if isinstance(family, HistogramFamily):
            for values, histogram in family.samples():
                for bound, cumulative in histogram.cumulative():
                    fragment = _labels_fragment(
                        family.label_names, values,
                        extra=(("le", _format_number(bound)),),
                    )
                    lines.append(f"{name}_bucket{fragment} {cumulative}")
                fragment = _labels_fragment(family.label_names, values)
                lines.append(
                    f"{name}_sum{fragment} {_format_number(histogram.sum)}"
                )
                lines.append(f"{name}_count{fragment} {histogram.count}")
        else:
            suffix = "_total" if isinstance(family, CounterFamily) else ""
            for values, child in family.samples():
                fragment = _labels_fragment(family.label_names, values)
                lines.append(
                    f"{name}{suffix}{fragment} "
                    f"{_format_number(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def registry_to_dict(registry: MetricsRegistry) -> dict:
    """A JSON-ready snapshot of every family and sample."""
    families = []
    for family in registry.families():
        samples = []
        for values, child in family.samples():
            labels = dict(zip(family.label_names, values))
            if isinstance(family, HistogramFamily):
                samples.append({
                    "labels": labels,
                    "sum": child.sum,
                    "count": child.count,
                    "buckets": [
                        {"le": ("+Inf" if bound == math.inf else bound),
                         "count": cumulative}
                        for bound, cumulative in child.cumulative()
                    ],
                })
            else:
                samples.append({"labels": labels, "value": child.value})
        families.append({
            "name": family.name,
            "type": family.kind,
            "help": family.help,
            "samples": samples,
        })
    return {"namespace": registry.namespace, "families": families}


def json_text(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(registry_to_dict(registry), indent=indent,
                      sort_keys=True)
