"""repro.telemetry — runtime observability for the virtualized BGP edge.

The paper's operators run PEERING as a shared production platform:
approving experiments, attributing announcements and traffic to clients,
debugging muxes.  That requires *seeing* the platform while it runs.  This
package is the observability plane:

* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of labeled
  ``Counter`` / ``Gauge`` / ``Histogram`` families,
* :mod:`repro.telemetry.export` — Prometheus-text and JSON exporters,
* :mod:`repro.telemetry.trace` — a :class:`Tracer` with nestable spans
  over a bounded ring buffer, clocked by the simulation scheduler,
* :mod:`repro.telemetry.station` — a BMP-style (RFC 7854)
  :class:`MonitoringStation` that sessions stream ``PeerUp`` /
  ``RouteMonitoring`` / ``StatsReport`` / ``PeerDown`` messages to, with
  per-peer Adj-RIB-In mirrors and subscriber fan-out.

The :class:`TelemetryHub` bundles one of each.  Instrumented components
(`bgp.session`, `bgp.speaker`, `router.engine`, `security.*`,
`vbgp.node`) all take ``telemetry: Optional[TelemetryHub] = None`` and
**default to None**: the disabled path is a single attribute-is-None test
per instrumentation point, keeping the fast path within noise of the
un-instrumented PR-1 baseline (enforced by a tier-1 overhead test).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.scheduler import Scheduler
from repro.telemetry.export import json_text, prometheus_text, registry_to_dict
from repro.telemetry.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
)
from repro.telemetry.station import (
    BmpMessage,
    IntentEvent,
    MonitoringStation,
    PeerDown,
    PeerRecord,
    PeerUp,
    ResilienceEvent,
    RouteMonitoring,
    StatsReport,
)
from repro.telemetry.trace import SpanToken, TraceEvent, Tracer

__all__ = [
    "BmpMessage",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "IntentEvent",
    "MetricsRegistry",
    "MonitoringStation",
    "PeerDown",
    "PeerRecord",
    "PeerUp",
    "ResilienceEvent",
    "RouteMonitoring",
    "SpanToken",
    "StatsReport",
    "TelemetryHub",
    "TraceEvent",
    "Tracer",
    "json_text",
    "prometheus_text",
    "registry_to_dict",
]


class TelemetryHub:
    """One registry + tracer + station, shared by a deployment.

    Pass one hub into :class:`~repro.platform.peering.PeeringPlatform`
    (or any individual component) to light up the whole observability
    plane; pass ``None`` (the default everywhere) to run dark at
    near-zero cost.
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        name: str = "platform",
        trace_capacity: int = 4096,
        station_history: int = 8192,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if clock is None:
            if scheduler is not None:
                clock = lambda: scheduler.now  # noqa: E731
            else:
                clock = lambda: 0.0  # noqa: E731
        self.name = name
        self.clock = clock
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, capacity=trace_capacity)
        self.station = MonitoringStation(
            name=f"{name}-station", history=station_history
        )

    @property
    def now(self) -> float:
        return self.clock()

    def render_prometheus(self) -> str:
        return prometheus_text(self.registry)

    def render_json(self) -> str:
        return json_text(self.registry)
