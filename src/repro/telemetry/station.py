"""A BMP-style monitoring station (RFC 7854, simulated).

Real deployments watch a BGP edge with the BGP Monitoring Protocol: the
router streams *Peer Up*, *Peer Down*, *Route Monitoring* (a copy of each
received UPDATE, pre-policy), and periodic *Stats Report* messages to a
passive station, which reconstructs per-peer Adj-RIB-In state without
sitting in the routing path.  :class:`MonitoringStation` is that station
for the reproduction: every instrumented
:class:`~repro.bgp.session.BgpSession` publishes its lifecycle and route
feed here, and consumers — the ``peering telemetry`` CLI, the looking
glass, route-leak/community studies — subscribe or read the mirrors.

The station is strictly an observer: publishing never mutates routing
state, and a subscriber exception is contained (counted, not propagated)
so a broken consumer cannot take down the datapath.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Runtime imports would be circular: repro.bgp.session publishes here.
    from repro.bgp.attributes import Route
    from repro.netsim.addr import Prefix

__all__ = [
    "BmpMessage",
    "HealthEvent",
    "IntentEvent",
    "MonitoringStation",
    "PeerDown",
    "PeerRecord",
    "PeerUp",
    "ResilienceEvent",
    "RouteMonitoring",
    "StatsReport",
]


@dataclass(frozen=True)
class BmpMessage:
    """Common envelope: which peer, at what simulated time."""

    peer: str
    time: float

    kind = "bmp"


@dataclass(frozen=True)
class PeerUp(BmpMessage):
    """The session with ``peer`` reached ESTABLISHED."""

    local_asn: int = 0
    peer_asn: Optional[int] = None
    local_id: str = ""
    addpath: bool = False
    hold_time: int = 0

    kind = "peer-up"


@dataclass(frozen=True)
class PeerDown(BmpMessage):
    """The session with ``peer`` was torn down."""

    reason: str = ""

    kind = "peer-down"


@dataclass(frozen=True)
class RouteMonitoring(BmpMessage):
    """One received UPDATE, pre-policy (the Adj-RIB-In feed)."""

    announced: tuple[Route, ...] = ()
    withdrawn: tuple[tuple[Prefix, Optional[int]], ...] = ()

    kind = "route-monitoring"


@dataclass(frozen=True)
class ResilienceEvent(BmpMessage):
    """A resilience-subsystem event (no BMP equivalent; local extension).

    Streamed by the session supervisor (``reconnect``/``suppress``), the
    Graceful Restart machinery (``gr-stale``/``gr-flush-eor``/
    ``gr-flush-expired``), and the chaos harness (``fault-inject``/
    ``fault-heal``), so one station feed shows faults next to the peer
    lifecycle they perturb.
    """

    event: str = ""
    detail: str = ""

    kind = "resilience"


@dataclass(frozen=True)
class IntentEvent(BmpMessage):
    """An intent-transaction lifecycle event (local extension).

    Streamed by the :class:`~repro.intent.controller.IntentController`
    as a ChangeSet moves through the transaction state machine
    (``planned`` → ``applied`` → ``committed`` | ``reverted``, or
    ``rejected`` straight from planning), so the station feed shows
    configuration changes next to the session churn they cause.  The
    ``peer`` field carries ``intent:<id>``.
    """

    phase: str = ""
    digest: str = ""
    detail: str = ""

    kind = "intent"


@dataclass(frozen=True)
class HealthEvent(BmpMessage):
    """A PoP health-state transition (local extension, DESIGN.md §6i).

    Streamed by the overload watchdog whenever a PoP moves between
    ``healthy``/``degraded``/``critical``, with the evidence (queue
    depth, shed rate, breaker states) in ``detail``.  The ``peer``
    field carries ``pop:<name>``.
    """

    state: str = ""
    previous: str = ""
    detail: str = ""

    kind = "health"


@dataclass(frozen=True)
class StatsReport(BmpMessage):
    """Point-in-time session statistics (BMP §4.8 flavored)."""

    stats: tuple[tuple[str, int], ...] = ()

    kind = "stats-report"

    def as_dict(self) -> dict[str, int]:
        return dict(self.stats)


@dataclass
class PeerRecord:
    """What the station knows about one monitored peer."""

    name: str
    state: str = "down"  # "up" | "down"
    peer_asn: Optional[int] = None
    ups: int = 0
    downs: int = 0
    route_messages: int = 0
    last_change: float = 0.0
    last_reason: str = ""
    last_stats: dict[str, int] = field(default_factory=dict)


Subscriber = Callable[[BmpMessage], None]


class MonitoringStation:
    """Collects the BMP feed; maintains mirrors; fans out to subscribers."""

    def __init__(self, name: str = "station", history: int = 8192,
                 mirror_ribs: bool = True) -> None:
        self.name = name
        self.history: deque[BmpMessage] = deque(maxlen=history)
        self.mirror_ribs = mirror_ribs
        self.peers: dict[str, PeerRecord] = {}
        # Per-peer Adj-RIB-In mirror: (prefix, path id) -> route.
        self._mirrors: dict[str, dict[tuple[Prefix, Optional[int]], Route]] = {}
        self.subscribers: list[Subscriber] = []
        self.messages_seen = 0
        self.subscriber_errors = 0

    # -- publishing (called by instrumented sessions) ----------------------

    def publish(self, message: BmpMessage) -> None:
        self.messages_seen += 1
        self.history.append(message)
        record = self.peers.get(message.peer)
        if record is None:
            record = PeerRecord(name=message.peer)
            self.peers[message.peer] = record
        if isinstance(message, PeerUp):
            record.state = "up"
            record.ups += 1
            record.peer_asn = message.peer_asn
            record.last_change = message.time
            if self.mirror_ribs:
                self._mirrors.setdefault(message.peer, {})
        elif isinstance(message, PeerDown):
            record.state = "down"
            record.downs += 1
            record.last_change = message.time
            record.last_reason = message.reason
            # BMP peers flush the mirrored RIB on Peer Down.
            self._mirrors.pop(message.peer, None)
        elif isinstance(message, RouteMonitoring):
            record.route_messages += 1
            if self.mirror_ribs:
                mirror = self._mirrors.setdefault(message.peer, {})
                for prefix, path_id in message.withdrawn:
                    mirror.pop((prefix, path_id), None)
                for route in message.announced:
                    mirror[(route.prefix, route.path_id)] = route
        elif isinstance(message, StatsReport):
            record.last_stats = message.as_dict()
        for subscriber in self.subscribers:
            try:
                subscriber(message)
            except Exception:
                self.subscriber_errors += 1

    # -- consuming ---------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        try:
            self.subscribers.remove(subscriber)
        except ValueError:
            pass

    def rib_in(self, peer: str) -> list[Route]:
        """The mirrored Adj-RIB-In of one peer."""
        return list(self._mirrors.get(peer, {}).values())

    def rib_in_size(self, peer: str) -> int:
        return len(self._mirrors.get(peer, {}))

    def routes_for(self, prefix: Prefix,
                   peer: Optional[str] = None) -> list[tuple[str, Route]]:
        """All mirrored routes for ``prefix``, tagged with their peer."""
        peers = [peer] if peer is not None else list(self._mirrors)
        found: list[tuple[str, Route]] = []
        for name in peers:
            for (mirror_prefix, _path_id), route in (
                self._mirrors.get(name, {}).items()
            ):
                if mirror_prefix == prefix:
                    found.append((name, route))
        return found

    def peer_names(self) -> list[str]:
        return sorted(self.peers)

    def up_peers(self) -> list[str]:
        return sorted(
            name for name, record in self.peers.items()
            if record.state == "up"
        )

    def messages_for(self, peer: str) -> list[BmpMessage]:
        return [m for m in self.history if m.peer == peer]

    def summary(self) -> dict[str, int]:
        kinds: dict[str, int] = {}
        for message in self.history:
            kinds[message.kind] = kinds.get(message.kind, 0) + 1
        return {
            "messages_seen": self.messages_seen,
            "peers": len(self.peers),
            "peers_up": len(self.up_peers()),
            **{f"history_{kind}": count for kind, count in sorted(
                kinds.items()
            )},
        }
