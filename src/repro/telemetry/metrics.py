"""Labeled metric primitives and the registry they live in.

The runtime observability counterpart to :mod:`repro.metrics` (which
measures *paper figures* offline): a Prometheus-shaped data model —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` families with string
labels — kept deliberately allocation-light so instrumented hot paths pay
one cached-child ``inc()`` (an attribute load plus an integer add).

Design points:

* **Families are idempotent.** ``registry.counter("x", ...)`` returns the
  existing family when called twice with the same name, so every
  :class:`~repro.bgp.speaker.BgpSpeaker` attached to one shared
  :class:`~repro.telemetry.TelemetryHub` can declare its instruments
  without coordination.  Re-declaring a name as a different metric type
  raises.
* **Children are cached.** ``family.labels("ams", "in")`` interns the
  child per label-value tuple; instrumented components resolve their
  children once at attach time and keep direct references.
* **Gauges can be functions.** ``gauge.labels(...).set_function(fn)``
  defers evaluation to collection time — RIB sizes and queue depths cost
  *zero* on the datapath and are exact when scraped.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Optional, Sequence

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

# Powers-of-four seconds-ish spread: micro-events to whole-sim spans.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3,
    1.6384e-2, 6.5536e-2, 0.262144, 1.048576, 4.194304,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up, down, or be computed at collection time."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` lazily at collection time (zero datapath cost)."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs including +Inf."""
        total = 0
        out: list[tuple[float, int]] = []
        for bound, bucket_count in zip(self.buckets, self.counts):
            total += bucket_count
            out.append((bound, total))
        out.append((math.inf, total + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for bound, cumulative in self.cumulative():
            if cumulative >= rank:
                return bound
        return math.inf


class _Family:
    """Shared family behavior: label handling + child interning."""

    kind = "untyped"
    _child_factory: Callable[[], object]

    def __init__(self, name: str, help: str,
                 label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, *values: object, **kwargs: object):
        """Resolve (and intern) the child for one label-value tuple."""
        if kwargs:
            if values:
                raise ValueError("pass labels positionally or by name")
            try:
                values = tuple(kwargs[name] for name in self.label_names)
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for {self.name}")
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        raise NotImplementedError

    def samples(self) -> Iterator[tuple[tuple[str, ...], object]]:
        yield from self._children.items()


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def total(self) -> float:
        return sum(child.value for child in self._children.values())


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...],
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        self.buckets = tuple(sorted(buckets))

    def _make_child(self) -> Histogram:
        return Histogram(self.buckets)


class MetricsRegistry:
    """All metric families known to one telemetry hub."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._families: dict[str, _Family] = {}

    def _declare(self, factory, name: str, help: str,
                 labels: Sequence[str], **kwargs) -> _Family:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, factory):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} re-declared with different labels"
                )
            return existing
        family = factory(name, help, tuple(labels), **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> CounterFamily:
        return self._declare(CounterFamily, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> GaugeFamily:
        return self._declare(GaugeFamily, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> HistogramFamily:
        return self._declare(HistogramFamily, name, help, labels,
                             buckets=buckets)

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def families(self) -> list[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)
