"""A BIRD-like software router.

Wraps a :class:`~repro.bgp.speaker.BgpSpeaker` with the operational surface
PEERING automates: a declarative configuration (with a BIRD-style config
language produced by the §5 templating pipeline), kernel-FIB
synchronization, non-disruptive reconfiguration (sessions survive config
pushes), and a ``birdc``-style CLI.
"""

from repro.router.config import (
    BgpProtocol,
    FilterDef,
    KernelProtocol,
    RouterConfig,
)
from repro.router.configlang import ConfigSyntaxError, parse_config
from repro.router.engine import Router
from repro.router.cli import birdc

__all__ = [
    "BgpProtocol",
    "ConfigSyntaxError",
    "FilterDef",
    "KernelProtocol",
    "Router",
    "RouterConfig",
    "birdc",
    "parse_config",
]
