"""Declarative router configuration model.

A :class:`RouterConfig` is produced either programmatically or by parsing
BIRD-style config text (:mod:`repro.router.configlang`, which PEERING's
templating emits). The engine diffs successive configs so reconfiguration
does not reset unchanged BGP sessions (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bgp.policy import RouteMap
from repro.netsim.addr import IPv4Address


@dataclass
class FilterDef:
    """A named filter compiled to a RouteMap."""

    name: str
    route_map: RouteMap


@dataclass
class KernelProtocol:
    """Kernel synchronization: export best routes to a kernel table."""

    name: str
    table: int = 254
    export: bool = True


@dataclass
class BgpProtocol:
    """One BGP neighbor definition."""

    name: str
    peer_asn: Optional[int]
    neighbor_address: IPv4Address = IPv4Address(0)
    local_address: IPv4Address = IPv4Address(0)
    addpath: bool = False
    is_ibgp: bool = False
    transparent: bool = False
    next_hop_self: bool = True
    import_filter: Optional[str] = None  # None: accept all
    export_filter: Optional[str] = None
    reject_import: bool = False  # "import none"
    reject_export: bool = False  # "export none"
    max_prefixes: Optional[int] = None

    def session_identity(self) -> tuple:
        """Fields whose change requires a session reset."""
        return (
            self.peer_asn,
            self.neighbor_address,
            self.addpath,
            self.is_ibgp,
        )


@dataclass
class RouterConfig:
    """Complete configuration for one router instance."""

    router_id: IPv4Address
    asn: int
    hold_time: int = 90
    mrai: float = 0.0
    filters: dict[str, FilterDef] = field(default_factory=dict)
    kernel_protocols: dict[str, KernelProtocol] = field(default_factory=dict)
    bgp_protocols: dict[str, BgpProtocol] = field(default_factory=dict)

    def filter_map(self, name: Optional[str]) -> Optional[RouteMap]:
        """Resolve a filter reference to its RouteMap (None: accept all)."""
        if name is None:
            return None
        definition = self.filters.get(name)
        if definition is None:
            raise KeyError(f"undefined filter {name!r}")
        return definition.route_map
