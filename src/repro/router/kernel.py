"""Kernel protocol: synchronize best routes from the Loc-RIB to a FIB.

Equivalent to BIRD's ``protocol kernel`` (which programs Linux via
netlink): whenever the speaker's best path for a prefix changes, the
corresponding :class:`~repro.netsim.stack.KernelRoute` is installed into or
removed from the configured kernel table.
"""

from __future__ import annotations

from typing import Optional

from repro.bgp.rib import RibEntry
from repro.netsim.addr import IPv4Address, Prefix
from repro.netsim.stack import KernelRoute, NetworkStack
from repro.router.config import KernelProtocol


class KernelSync:
    """Runtime for one kernel protocol instance."""

    def __init__(self, config: KernelProtocol, stack: NetworkStack) -> None:
        self.config = config
        self.stack = stack
        self.installed = 0
        self.removed = 0
        self.sync_failures = 0

    def best_changed(self, prefix: Prefix, best: Optional[RibEntry]) -> None:
        """Callback registered on the speaker's best-change hook."""
        if not self.config.export:
            return
        if best is None or best.route.next_hop is None:
            if self.stack.remove_route(prefix, table_id=self.config.table):
                self.removed += 1
            return
        out_iface = self.resolve_interface(best.route.next_hop)
        if out_iface is None:
            self.sync_failures += 1
            return
        self.stack.add_route(
            KernelRoute(
                prefix=prefix,
                out_iface=out_iface,
                next_hop=best.route.next_hop,
            ),
            table_id=self.config.table,
        )
        self.installed += 1

    def resolve_interface(self, next_hop: IPv4Address) -> Optional[str]:
        """Find the interface whose connected subnet covers the next hop.

        Connected subnets are installed into the main table by
        ``NetworkStack.add_address``, so a direct-route LPM hit identifies
        the egress interface.
        """
        entry = self.stack.tables.get(254)
        if entry is not None:
            match = entry.lookup(next_hop)
            if match is not None and match.value.is_direct:
                return match.value.out_iface
        # Fall back to any single-interface stack (point-to-point hosts).
        if len(self.stack.interfaces) == 1:
            return next(iter(self.stack.interfaces))
        return None
