"""A ``birdc``-style command-line interface for the router.

The experiment toolkit (Table 1: "Access BIRD CLI") shells out to this,
and tests use it to assert on human-readable state.
"""

from __future__ import annotations

from repro.metrics.memory import rib_memory
from repro.netsim.addr import IPv4Prefix
from repro.router.engine import Router


def birdc(router: Router, command: str) -> str:
    """Execute one CLI command and return its output text."""
    words = command.strip().split()
    if not words:
        return "syntax error"
    if words[:2] == ["show", "protocols"]:
        return _show_protocols(router)
    if words[:2] == ["show", "route"]:
        return _show_route(router, words[2:])
    if words[:2] == ["show", "memory"]:
        return _show_memory(router)
    if words[:2] == ["show", "status"]:
        return _show_status(router)
    return f"unknown command: {command}"


def _show_status(router: Router) -> str:
    return (
        f"BIRD-like router {router.name}\n"
        f"Router ID is {router.config.router_id}\n"
        f"Local AS is {router.config.asn}\n"
        f"Reconfigurations: {router.reconfigurations}\n"
        "Daemon is up and running"
    )


def _show_protocols(router: Router) -> str:
    lines = ["Name       Proto    State      Info"]
    for name, sync in router.kernel_syncs.items():
        lines.append(
            f"{name:<10} kernel   up         "
            f"installed {sync.installed}, removed {sync.removed}"
        )
    for name, neighbor in router.speaker.neighbors.items():
        state = (
            neighbor.session.state.value if neighbor.session else "down"
        )
        info = f"AS{neighbor.config.peer_asn or '?'}"
        if neighbor.config.addpath and neighbor.session is not None and (
            neighbor.session.addpath_active
        ):
            info += " add-path"
        lines.append(f"{name:<10} bgp      {state:<10} {info}")
    return "\n".join(lines)


def _show_route(router: Router, args: list[str]) -> str:
    show_all = bool(args) and args[0] == "all"
    if show_all:
        args = args[1:]
    target = None
    if args and args[0] == "for":
        target = IPv4Prefix.parse(args[1])
    lines = []
    prefixes = (
        [target] if target is not None
        else sorted(router.speaker.loc_rib.prefixes(), key=lambda p: p.key())
    )
    for prefix in prefixes:
        entries = router.speaker.loc_rib.candidates(prefix)
        best = router.speaker.loc_rib.best(prefix)
        if not entries:
            continue
        shown = entries if show_all else ([best] if best else [])
        for entry in shown:
            if entry is None:
                continue
            star = "*" if best is not None and entry.route == best.route else " "
            route = entry.route
            lines.append(
                f"{route.prefix} {star} via {route.next_hop} "
                f"[{entry.peer}] path: {route.as_path or '(local)'}"
            )
    if not lines:
        return "Network not found"
    return "\n".join(lines)


def _show_memory(router: Router) -> str:
    routes = [
        entry.route
        for prefix in router.speaker.loc_rib.prefixes()
        for entry in router.speaker.loc_rib.candidates(prefix)
    ]
    rib_bytes = rib_memory(routes)
    lines = [
        "BIRD-like memory usage",
        f"Routing tables: {rib_bytes} B ({len(routes)} routes)",
    ]
    for name, sync in router.kernel_syncs.items():
        table = sync.stack.tables.get(sync.config.table)
        count = len(table) if table is not None else 0
        lines.append(f"Kernel table {sync.config.table} ({name}): {count} routes")
    return "\n".join(lines)
